//! Integration tests for the beyond-the-paper extensions, exercised
//! together through the public facade.

use qjo::anneal::hardware::{pegasus_like, zephyr_like};
use qjo::anneal::pegasus_clique_embedding;
use qjo::core::classical::dp_optimal;
use qjo::core::costmodel::{dp_optimal_with, CostModel};
use qjo::core::prelude::*;
use qjo::core::presets::imdb_chain_query;
use qjo::gatesim::{qaoa_circuit, to_qasm, QaoaParams, ReadoutMitigator};
use qjo::qubo::io::{from_text, to_text};
use qjo::qubo::{fix_variables, solve::ExactSolver};
use qjo::transpile::{respects_topology, Device, Strategy, Transpiler};

#[test]
fn sabre_transpiles_jo_circuits_onto_real_devices() {
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let query = gen.with_predicate_count(0, 1);
    let encoded = JoEncoder::default().encode(&query);
    let circuit =
        qaoa_circuit(&encoded.qubo.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });
    let device = Device::ibm_auckland();
    let result = Transpiler::new(Strategy::Sabre, 0)
        .transpile(&circuit, &device.topology, device.gate_set)
        .expect("device is connected");
    assert!(respects_topology(&result.circuit, &device.topology));
    assert!(result.circuit.gates().iter().all(|g| device.gate_set.is_native(g)));

    // The compiled circuit exports to QASM with one line per gate.
    let qasm = to_qasm(&result.circuit);
    assert!(qasm.contains("OPENQASM 2.0;"));
    assert!(qasm.lines().count() > result.circuit.len());
}

#[test]
fn qubo_serialization_round_trips_a_full_encoding() {
    let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(5);
    let encoded = JoEncoder::default().encode(&query);
    let text = to_text(&encoded.qubo);
    let back = from_text(&text).expect("own output parses");
    assert_eq!(back.num_vars(), encoded.num_qubits());
    // Energies agree on a few assignments.
    for seed in 0..5u64 {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<bool> = (0..back.num_vars()).map(|_| rng.random_bool(0.5)).collect();
        assert_eq!(encoded.qubo.energy(&x).unwrap(), back.energy(&x).unwrap());
    }
}

#[test]
fn preprocessing_composes_with_exact_solving_and_decoding() {
    let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(2);
    let encoded = JoEncoder::default().encode(&query);
    let pre = fix_variables(&encoded.qubo);
    // Solve the reduced model (or read the offset if fully fixed).
    let lifted = if pre.reduced.num_vars() == 0 {
        pre.lift(&[])
    } else if pre.reduced.num_vars() <= 26 {
        let sol = ExactSolver::new().solve(&pre.reduced).expect("fits");
        pre.lift(&sol.assignment)
    } else {
        return; // out of exact-solver budget for this seed
    };
    // The lifted solution matches the direct ground state's energy.
    let direct = ExactSolver::new().min_energy(&encoded.qubo).expect("fits");
    let lifted_energy = encoded.qubo.energy(&lifted).expect("length");
    assert!((lifted_energy - direct).abs() < 1e-9);
    // And decodes to a valid join order.
    assert!(decode_assignment(&lifted, &encoded.registry, &query).is_some());
}

#[test]
fn clique_template_supports_the_annealing_pipeline() {
    // Use the deterministic template as the embedding for a full annealing
    // run — bypassing the heuristic entirely.
    use qjo::anneal::AnnealerSampler;
    let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(0);
    let encoded = JoEncoder::default().encode(&query);
    let m = 8;
    let template = pegasus_clique_embedding(encoded.num_qubits(), m).expect("template capacity");
    let sampler = AnnealerSampler { num_reads: 100, ..AnnealerSampler::new(pegasus_like(m)) };
    let outcome = sampler.sample_qubo_with_embedding(&encoded.qubo, template);
    assert_eq!(outcome.samples.total_reads(), 100);
    let (_, optimal) = dp_optimal(&query);
    let quality = assess_samples(&outcome.samples, &encoded.registry, &query, optimal);
    // The template's long uniform chains hurt quality, but the pipeline
    // must run and produce in-range fractions.
    assert!((0.0..=1.0).contains(&quality.valid_fraction));
}

#[test]
fn zephyr_serves_as_an_annealer_target() {
    use qjo::anneal::AnnealerSampler;
    let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(1);
    let encoded = JoEncoder::default().encode(&query);
    let sampler = AnnealerSampler { num_reads: 80, ..AnnealerSampler::new(zephyr_like(6)) };
    let outcome = sampler.sample_qubo(&encoded.qubo).expect("dense lattice embeds easily");
    let (_, optimal) = dp_optimal(&query);
    let quality = assess_samples(&outcome.samples, &encoded.registry, &query, optimal);
    assert!(quality.valid_fraction > 0.0, "zephyr run produced no valid reads");
}

#[test]
fn cost_models_rank_job_like_plans_consistently() {
    let (query, _) = imdb_chain_query(7, -5.0);
    let (out_order, out_cost) = dp_optimal(&query);
    let (hash_order, hash_cost) = dp_optimal_with(&query, CostModel::HashJoin);
    // Sanity: each optimum re-evaluates to its cost and C_out's optimum is
    // a lower bound for its own metric on the hash-optimal plan.
    assert!((CostModel::Out.order_cost(&out_order, &query) - out_cost).abs() / out_cost < 1e-9);
    assert!(CostModel::Out.order_cost(&hash_order, &query) >= out_cost - 1e-6);
    assert!(hash_cost >= out_cost, "hash cost includes C_out plus operand terms");
}

#[test]
fn readout_mitigation_sharpens_qaoa_statistics() {
    use qjo::gatesim::{NoiseModel, NoisySimulator};
    use qjo::qubo::SampleSet;
    // A deterministic 2-qubit circuit measured through heavy readout noise.
    let mut c = qjo::gatesim::Circuit::new(2);
    c.push(qjo::gatesim::Gate::X(0));
    let noise = NoiseModel { readout_error: 0.2, ..NoiseModel::noiseless() };
    let sim = NoisySimulator { trajectories: 1, ..NoisySimulator::new(noise, 1) };
    let samples = SampleSet::from_shots(&sim.sample(&c, 4000), |_| 0.0);
    let mitigator = ReadoutMitigator::new(0.2);
    let corrected = mitigator.mean_bits(&samples, 2);
    assert!(corrected[0] > 0.95, "{corrected:?}");
    assert!(corrected[1] < 0.05, "{corrected:?}");
}
