//! Cross-crate integration tests: the full pipelines of the paper, from a
//! query to a decoded join order, through every backend.

use qjo::anneal::hardware::{chimera, pegasus_like};
use qjo::anneal::{AnnealerSampler, SqaConfig};
use qjo::core::classical::{dp_optimal, greedy_min_cost};
use qjo::core::prelude::*;
use qjo::gatesim::optim::GridSearch;
use qjo::gatesim::{qaoa_circuit, NoiseModel, NoisySimulator, QaoaParams, QaoaSimulator};
use qjo::qubo::solve::{ExactSolver, SimulatedAnnealing, TabuSearch};
use qjo::qubo::SampleSet;
use qjo::transpile::{respects_topology, Device, NativeGateSet, Strategy, Transpiler};

fn paper_example() -> Query {
    Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
}

fn fine_encoder() -> JoEncoder {
    JoEncoder { thresholds: ThresholdSpec::ExplicitLogs(vec![2.0, 3.0]), ..JoEncoder::default() }
}

#[test]
fn exact_pipeline_reaches_classical_optimum() {
    let query = paper_example();
    let encoded = fine_encoder().encode(&query);
    let ground = ExactSolver::new().solve(&encoded.qubo).expect("fits");
    let order = decode_assignment(&ground.assignment, &encoded.registry, &query)
        .expect("valid ground state");
    let (_, optimal) = dp_optimal(&query);
    assert_eq!(order.cost(&query), optimal);
}

#[test]
fn classical_heuristic_solvers_agree_on_the_encoding() {
    let query = paper_example();
    let encoded = fine_encoder().encode(&query);
    let exact = ExactSolver::new().min_energy(&encoded.qubo).unwrap();
    let sa = SimulatedAnnealing { restarts: 30, sweeps: 400, ..Default::default() }
        .solve(&encoded.qubo)
        .unwrap();
    let tabu = TabuSearch { restarts: 10, iterations: 3000, ..Default::default() }
        .solve(&encoded.qubo)
        .unwrap();
    assert!((sa.energy - exact).abs() < 1e-9, "SA {} vs exact {exact}", sa.energy);
    assert!((tabu.energy - exact).abs() < 1e-9, "tabu {} vs exact {exact}", tabu.energy);
}

#[test]
fn annealer_pipeline_finds_optimal_join_orders() {
    let query = paper_example();
    let encoded = fine_encoder().encode(&query);
    let sampler = AnnealerSampler {
        num_reads: 300,
        sqa: SqaConfig { seed: 3, ..Default::default() },
        ..AnnealerSampler::new(pegasus_like(6))
    };
    let outcome = sampler.sample_qubo(&encoded.qubo).expect("embeds");
    let (_, optimal) = dp_optimal(&query);
    let quality = assess_samples(&outcome.samples, &encoded.registry, &query, optimal);
    assert!(quality.valid_fraction > 0.0, "no valid reads at all");
    let (_, best_cost) = quality.best.expect("some valid read");
    assert!(
        (best_cost - optimal).abs() < 1e-9,
        "best annealed cost {best_cost} vs optimum {optimal}"
    );
}

#[test]
fn qaoa_pipeline_finds_optimal_join_orders_noiselessly() {
    // Small query so the state vector stays tiny: 2 relations.
    let query = Query::new(vec![1.0, 2.0], vec![]);
    let encoded = JoEncoder::default().encode(&query);
    assert!(encoded.num_qubits() <= 16, "2-relation model is small");

    let sim = QaoaSimulator::new(&encoded.qubo);
    let grid = GridSearch {
        bounds: vec![(0.0, std::f64::consts::PI), (0.0, std::f64::consts::PI / 2.0)],
        resolution: 12,
        ..Default::default()
    };
    let result = grid.minimize(|x| sim.expectation(&QaoaParams::from_flat(1, x)));
    let params = QaoaParams::from_flat(1, &result.x);

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let reads = sim.sample(&params, 2048, &mut rng);
    let samples = SampleSet::from_shots(&reads, |x| encoded.qubo.energy(x).unwrap());
    let (_, optimal) = dp_optimal(&query);
    let quality = assess_samples(&samples, &encoded.registry, &query, optimal);
    assert!(quality.valid_fraction > 0.0);
    assert!(quality.optimal_fraction > 0.0, "QAOA should hit the optimum sometimes");
}

#[test]
fn transpiled_qaoa_respects_hardware_and_survives_noise() {
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let query = gen.with_predicate_count(0, 0);
    let encoded = JoEncoder::default().encode(&query);
    assert!(encoded.num_qubits() <= 27, "must fit Auckland");

    let device = Device::ibm_auckland();
    let circuit =
        qaoa_circuit(&encoded.qubo.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });
    let compiled = Transpiler::new(Strategy::QiskitLike, 1)
        .transpile(&circuit, &device.topology, device.gate_set)
        .expect("device is connected");
    assert!(respects_topology(&compiled.circuit, &device.topology));
    assert!(compiled.circuit.gates().iter().all(|g| device.gate_set.is_native(g)));

    // Sample the logical circuit under noise and decode.
    let noisy =
        NoisySimulator { trajectories: 4, ..NoisySimulator::new(NoiseModel::ibm_auckland(), 9) };
    let reads = noisy.sample(&circuit, 512);
    let samples = SampleSet::from_shots(&reads, |x| encoded.qubo.energy(x).unwrap());
    let (_, optimal) = dp_optimal(&query);
    let quality = assess_samples(&samples, &encoded.registry, &query, optimal);
    assert!(quality.valid_fraction > 0.0, "noise should not erase all valid shots");
}

#[test]
fn sampling_the_transpiled_circuit_agrees_after_unpermuting() {
    // Real hardware executes the *physical* circuit; measured bits sit on
    // physical wires and must be unpermuted through the final layout
    // before decoding. Verify both paths produce identical statistics.
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let query = gen.with_predicate_count(0, 0);
    let encoded = JoEncoder::default().encode(&query);
    let n = encoded.num_qubits();

    let circuit =
        qaoa_circuit(&encoded.qubo.to_ising(), &QaoaParams { gammas: vec![0.5], betas: vec![0.4] });
    // A 20-qubit grid device keeps the physical state vector small while
    // still forcing routing (the Auckland-sized 2^27 state is ~50× slower).
    let topology = qjo::transpile::Topology::grid(5, 4);
    let compiled = Transpiler::new(Strategy::QiskitLike, 3)
        .transpile(&circuit, &topology, NativeGateSet::Ibm)
        .expect("grid is connected");
    assert!(compiled.swaps_inserted > 0, "routing must actually happen");

    // Noiseless sampling of both circuits.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut logical_state = qjo::gatesim::StateVector::zero(n);
    logical_state.apply_circuit(&circuit);
    let logical_reads = logical_state.sample(&mut rng, 2000);

    let mut physical_state = qjo::gatesim::StateVector::zero(topology.num_qubits());
    physical_state.apply_circuit(&compiled.circuit);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
    // Unpermute measured physical wires through the final layout back onto
    // logical variables before decoding.
    let mut physical_reads = qjo::qubo::ShotBuffer::with_capacity(n, 2000);
    for bits in physical_state.sample(&mut rng2, 2000).iter_bits() {
        let logical: Vec<bool> = (0..n).map(|l| bits[compiled.final_layout[l]]).collect();
        physical_reads.push_bits(&logical);
    }

    // Compare per-variable means (same seed streams differ in index order,
    // so compare statistics, not individual shots).
    let logical_set = SampleSet::from_shots(&logical_reads, |_| 0.0);
    let physical_set = SampleSet::from_shots(&physical_reads, |_| 0.0);
    for i in 0..n {
        let a = logical_set.mean_bit(i);
        let b = physical_set.mean_bit(i);
        assert!(
            (a - b).abs() < 0.05,
            "variable {i}: logical mean {a:.3} vs transpiled mean {b:.3}"
        );
    }
    // Decoded validity fractions agree too.
    let (_, optimal) = dp_optimal(&query);
    let ql = assess_samples(&logical_set, &encoded.registry, &query, optimal);
    let qp = assess_samples(&physical_set, &encoded.registry, &query, optimal);
    assert!(
        (ql.valid_fraction - qp.valid_fraction).abs() < 0.05,
        "valid fractions diverge: {} vs {}",
        ql.valid_fraction,
        qp.valid_fraction
    );
}

#[test]
fn greedy_baseline_bounds_quantum_results() {
    // The quantum-found best order can never beat the exact optimum, and
    // greedy gives a classical reference in between.
    let query = QueryGenerator::paper_defaults(QueryGraph::Star, 5).generate(4);
    let (_, optimal) = dp_optimal(&query);
    let (_, greedy) = greedy_min_cost(&query);
    assert!(greedy >= optimal);

    let encoded = JoEncoder::default().encode(&query);
    let sa = SimulatedAnnealing { restarts: 20, sweeps: 300, ..Default::default() }
        .solve(&encoded.qubo)
        .unwrap();
    if let Some(order) = decode_assignment(&sa.assignment, &encoded.registry, &query) {
        assert!(order.cost(&query) >= optimal - 1e-9);
    }
}

#[test]
fn chimera_and_pegasus_both_serve_as_annealer_targets() {
    let query = paper_example();
    let encoded = fine_encoder().encode(&query);
    for hardware in [chimera(6), pegasus_like(5)] {
        let sampler = AnnealerSampler { num_reads: 100, ..AnnealerSampler::new(hardware) };
        let outcome = sampler.sample_qubo(&encoded.qubo).expect("embeds");
        assert!(outcome.samples.total_reads() == 100);
        assert!(outcome.physical_qubits >= encoded.num_qubits());
    }
}

#[test]
fn bound_dominates_every_encoding_in_a_sweep() {
    for graph in [QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle] {
        for t in 3..=6 {
            for r in 1..=2 {
                let query = QueryGenerator::paper_defaults(graph, t).generate(3);
                let encoded =
                    JoEncoder { thresholds: ThresholdSpec::Auto(r), ..Default::default() }
                        .encode(&query);
                let bound = qubit_upper_bound(&query, r, 1.0).total();
                assert!(
                    encoded.num_qubits() <= bound,
                    "{graph:?} T={t} R={r}: {} > {bound}",
                    encoded.num_qubits()
                );
            }
        }
    }
}
