//! The full quantum-annealing pipeline, as run against D-Wave Advantage in
//! the paper: query → QUBO → minor embedding onto a Pegasus-like graph →
//! simulated quantum annealing with ICE noise → majority-vote readout →
//! join-order decoding, across several annealing times.
//!
//! ```sh
//! cargo run --release --example annealing_pipeline
//! ```

use qjo::anneal::hardware::pegasus_like;
use qjo::anneal::{AnnealerSampler, SqaConfig};
use qjo::core::prelude::*;

fn main() {
    let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 4).generate(11);
    let (optimal_order, optimal_cost) = dp_optimal(&query);
    println!(
        "chain query, 4 relations; classical optimum {:?} at C_out = {optimal_cost:.0}",
        optimal_order.order
    );

    let encoded = JoEncoder::default().encode(&query);
    println!(
        "QUBO: {} logical qubits, {} couplings",
        encoded.num_qubits(),
        encoded.qubo.num_interactions()
    );

    // An Advantage-like hardware graph (scaled-down tile grid for speed).
    let hardware = pegasus_like(8);
    println!(
        "hardware: Pegasus-like, {} qubits / {} couplers",
        hardware.num_qubits(),
        hardware.num_edges()
    );

    for &annealing_time_us in &[20.0, 60.0, 100.0] {
        let sampler = AnnealerSampler {
            num_reads: 300,
            annealing_time_us,
            sqa: SqaConfig { seed: 7, ..Default::default() },
            ..AnnealerSampler::new(hardware.clone())
        };
        let outcome = sampler.sample_qubo(&encoded.qubo).expect("problem embeds");
        let quality = assess_samples(&outcome.samples, &encoded.registry, &query, optimal_cost);
        println!(
            "Δt = {annealing_time_us:>5} µs | physical qubits {:>3} | max chain {} | \
             chain breaks {:>5.1}% | valid {:>5.1}% | optimal {:>5.1}%",
            outcome.physical_qubits,
            outcome.embedding.max_chain_length(),
            outcome.chain_break_fraction * 100.0,
            quality.valid_fraction * 100.0,
            quality.optimal_fraction * 100.0,
        );
        if let Some((order, cost)) = &quality.best {
            println!(
                "              best decoded order {:?} at C_out = {cost:.0}{}",
                order.order,
                if (cost - optimal_cost).abs() < 1e-9 { "  (optimal ✓)" } else { "" }
            );
        }
    }
}
