//! The gate-based pipeline, as run against IBM Q Auckland in the paper:
//! query → QUBO → QAOA (p = 1) with a classically optimised parameter pair
//! → transpilation onto the Falcon heavy-hex topology → noisy sampling →
//! join-order decoding.
//!
//! ```sh
//! cargo run --release --example qaoa_on_hardware
//! ```

use qjo::core::prelude::*;
use qjo::gatesim::optim::GradientDescent;
use qjo::gatesim::{qaoa_circuit, NoisySimulator, QaoaParams, QaoaSimulator, QpuTimingModel};
use qjo::qubo::SampleSet;
use qjo::transpile::{Device, Strategy, Transpiler};

fn main() {
    // Small cardinalities keep the encoding at Auckland scale (≤ 27 qubits).
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let query = gen.with_predicate_count(0, 1);
    let (_, optimal_cost) = dp_optimal(&query);

    let encoded = JoEncoder::default().encode(&query);
    println!("encoded {} relations into {} qubits", query.num_relations(), encoded.num_qubits());

    // Hybrid loop: the classical optimiser tunes (γ, β) against the fast
    // diagonal QAOA engine (20 iterations, as in Table 2's first budget).
    let sim = QaoaSimulator::new(&encoded.qubo);
    let result = GradientDescent { iterations: 20, learning_rate: 0.05, fd_step: 1e-3 }
        .minimize(|x| sim.expectation(&QaoaParams::from_flat(1, x)), &[0.1, 0.1]);
    let params = QaoaParams::from_flat(1, &result.x);
    println!(
        "optimised p=1 parameters: γ = {:.4}, β = {:.4} (⟨H⟩ = {:.2}, {} evaluations)",
        params.gammas[0], params.betas[0], result.fx, result.evals
    );

    // Compile for the device.
    let device = Device::ibm_auckland();
    let logical = qaoa_circuit(&encoded.qubo.to_ising(), &params);
    let compiled = Transpiler::new(Strategy::QiskitLike, 0)
        .transpile(&logical, &device.topology, device.gate_set)
        .expect("device is connected");
    println!(
        "transpiled for {}: depth {} (logical {}), {} SWAPs inserted, {} gates",
        device.name,
        compiled.depth(),
        logical.depth(),
        compiled.swaps_inserted,
        compiled.circuit.len(),
    );
    // Budget the coherence window against this circuit's actual gate mix
    // rather than the calibration-average (2q-dominated) gate time.
    let gates_2q = compiled.circuit.gates().iter().filter(|g| g.is_two_qubit()).count();
    let max_depth =
        device.noise.max_coherent_depth_for(compiled.circuit.len() - gates_2q, gates_2q);
    println!(
        "coherence budget: ≤ {max_depth} layers — circuit {}",
        if compiled.depth() <= max_depth { "fits ✓" } else { "EXCEEDS the window ✗" }
    );

    // Sample 1024 shots under the Auckland noise model and decode.
    // (The logical circuit is simulated; the transpiled one is unitarily
    // equivalent but permuted by the final layout.)
    let noisy = NoisySimulator { trajectories: 8, ..NoisySimulator::new(device.noise, 5) };
    let reads = noisy.sample(&logical, 1024);
    let samples = SampleSet::from_shots(&reads, |x| encoded.qubo.energy(x).expect("length"));
    let quality = assess_samples(&samples, &encoded.registry, &query, optimal_cost);
    println!(
        "1024 noisy shots: valid {:.1}%, optimal {:.1}%",
        quality.valid_fraction * 100.0,
        quality.optimal_fraction * 100.0
    );
    if let Some((order, cost)) = &quality.best {
        println!(
            "best decoded order {:?} at C_out = {cost:.0} (optimum {optimal_cost:.0})",
            order.order
        );
    }

    // The §4.2.1 timing decomposition for this job.
    let cloud = QpuTimingModel::ibm_cloud();
    println!(
        "timing: t_s = {:.1} ms, t_qpu = {:.2} s (cloud), {:.1} ms on a local coprocessor",
        cloud.sampling_time(&compiled.circuit, &device.noise, 1024) * 1e3,
        cloud.total_qpu_time(&compiled.circuit, &device.noise, 1024),
        QpuTimingModel::local_coprocessor().total_qpu_time(&compiled.circuit, &device.noise, 1024)
            * 1e3,
    );
}
