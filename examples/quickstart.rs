//! Quickstart: encode a join-ordering problem as a QUBO, solve it exactly,
//! and decode the result back into a join order.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qjo::core::prelude::*;
use qjo::qubo::solve::{ExactSolver, SimulatedAnnealing};

fn main() {
    // The paper's running example: |R| = |S| = |T| = 100 and one join
    // predicate R ⋈ S with selectivity 0.1 (everything in log10).
    let query =
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
    println!("query: {} relations, {} predicates", query.num_relations(), query.num_predicates());

    // Classical ground truth.
    let (best_order, best_cost) = dp_optimal(&query);
    println!("classical optimum: order {:?}, C_out = {best_cost}", best_order.order);

    // Encode: JO → pruned MILP → BILP → QUBO. Two explicit thresholds
    // (θ = 100 and 1000) make the cardinality staircase fine enough to
    // rank all candidate orders faithfully.
    let encoded = JoEncoder {
        thresholds: ThresholdSpec::ExplicitLogs(vec![2.0, 3.0]),
        ..JoEncoder::default()
    }
    .encode(&query);
    print!("{}", qjo::core::explain(&encoded));

    // Solve the QUBO exactly (the model is small) and heuristically.
    let ground = ExactSolver::new().solve(&encoded.qubo).expect("small model");
    let heur = SimulatedAnnealing::with_seed(1).solve(&encoded.qubo).expect("valid model");
    println!("exact QUBO minimum:  energy {}", ground.energy);
    println!("simulated annealing: energy {}", heur.energy);

    // Decode the ground state back into a join order.
    let order = decode_assignment(&ground.assignment, &encoded.registry, &query)
        .expect("the QUBO minimum is a valid join order");
    println!("decoded join order: {:?} with C_out = {}", order.order, order.cost(&query));
    assert_eq!(order.cost(&query), best_cost, "quantum formulation found the optimum");
    println!("matches the classical optimum ✓");
}
