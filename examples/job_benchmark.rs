//! Join-Order-Benchmark-scale projection (paper Section 6.1).
//!
//! The paper's headline co-design claim is that a ~1,000-logical-qubit QPU
//! covers queries "roughly equal in size to those considered in the JO
//! benchmark by Leis et al.". This example instantiates that claim on an
//! IMDB-like catalogue: it sizes the QUBO encoding for growing JOB-style
//! queries, solves them classically for reference, and reports which QPU
//! generation each query size would need.
//!
//! ```sh
//! cargo run --release --example job_benchmark
//! ```

use qjo::core::classical::{dp_optimal, greedy_min_cost};
use qjo::core::prelude::*;
use qjo::core::presets::{imdb_star_query, IMDB_CATALOG};

fn main() {
    println!("IMDB-like catalogue ({} relations):", IMDB_CATALOG.len());
    for r in IMDB_CATALOG.iter().take(5) {
        println!("  {:<16} ~10^{:.1} tuples", r.name, r.log_card);
    }
    println!("  …\n");

    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>16}",
        "relations", "qubits", "bound(Thm5.3)", "DP optimum", "greedy/optimal"
    );
    println!("{}", "-".repeat(66));
    for t in [4usize, 6, 8, 10, 13] {
        let (query, _names) = imdb_star_query(t, -6.0);
        let encoded = JoEncoder::default().encode(&query);
        let bound = qubit_upper_bound(&query, 1, 1.0).total();
        let (_, optimal) = dp_optimal(&query);
        let (_, greedy) = greedy_min_cost(&query);
        println!(
            "{t:<10} {:>8} {:>13} {:>14.3e} {:>15.2}×",
            encoded.num_qubits(),
            bound,
            optimal,
            greedy / optimal
        );
    }

    println!(
        "\nThe full 13-relation JOB-style query encodes into {} qubits — the\n\
         ~1,000-logical-qubit budget the paper projects for the next QPU\n\
         generation (IBM roadmap), versus 27/127 today.",
        JoEncoder::default().encode(&imdb_star_query(13, -6.0).0).num_qubits()
    );

    // What would each current/announced device generation cover?
    use qjo::core::bounds::max_relations_for_budget;
    println!("\nQPU generation → JOB-style relations coverable (2 thresholds):");
    for (name, budget) in [
        ("IBM Falcon (27)", 27),
        ("IBM Eagle (127)", 127),
        ("IBM Osprey-class (433)", 433),
        ("roadmap 1k", 1_000),
        ("roadmap 4k", 4_000),
    ] {
        println!("  {name:<24} → {:>3} relations", max_relations_for_budget(budget, 2, 1.0, 6.0));
    }
}
