//! Co-design exploration (Section 6 of the paper): how topology density,
//! native gate sets, and qubit budgets change the feasibility of join
//! ordering on future QPUs.
//!
//! ```sh
//! cargo run --release --example codesign_explorer
//! ```

use qjo::core::bounds::max_relations_for_budget;
use qjo::core::prelude::*;
use qjo::gatesim::{qaoa_circuit, QaoaParams};
use qjo::transpile::{stats, Device, NativeGateSet, Strategy, Transpiler};

fn main() {
    // A 4-relation cycle query's QAOA circuit as the compilation workload.
    let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, 4).generate(3);
    let encoded =
        JoEncoder { thresholds: ThresholdSpec::Auto(2), ..Default::default() }.encode(&query);
    let circuit =
        qaoa_circuit(&encoded.qubo.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });
    println!(
        "workload: {} qubits, {} gates (QAOA p=1, 2 thresholds, ω = 1)\n",
        encoded.num_qubits(),
        circuit.len()
    );

    // Density extrapolation on an IBM-style heavy-hex device.
    let base = Device::ibm_extrapolated(encoded.num_qubits());
    let base_stats = stats(&base.topology);
    println!(
        "density extrapolation on {} ({} qubits, mean distance {:.2}, diameter {}):",
        base.name,
        base.num_qubits(),
        base_stats.mean_distance.expect("connected"),
        base_stats.diameter.expect("connected"),
    );
    let baseline_depth = Transpiler::new(Strategy::QiskitLike, 0)
        .transpile(&circuit, &base.topology, base.gate_set)
        .expect("connected")
        .depth();
    for &density in &[0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let device = if density == 0.0 { base.clone() } else { base.with_density(density, 9) };
        let depth = Transpiler::new(Strategy::QiskitLike, 0)
            .transpile(&circuit, &device.topology, device.gate_set)
            .expect("connected")
            .depth();
        let st = stats(&device.topology);
        println!(
            "  density {density:>4.2}: {:>5} couplers, mean dist {:>4.2} → depth {depth:>4}  ({:.2}× baseline)",
            st.num_edges,
            st.mean_distance.expect("connected"),
            depth as f64 / baseline_depth as f64
        );
    }

    // Gate-set comparison at fixed topology.
    println!("\nnative vs unrestricted gates:");
    for (name, device) in [
        ("IBM heavy-hex", Device::ibm_extrapolated(encoded.num_qubits())),
        ("Rigetti octagonal", Device::rigetti_extrapolated(encoded.num_qubits())),
        ("IonQ complete", Device::ionq(encoded.num_qubits())),
    ] {
        let t = Transpiler::new(Strategy::QiskitLike, 0);
        let native =
            t.transpile(&circuit, &device.topology, device.gate_set).expect("connected").depth();
        let free = t
            .transpile(&circuit, &device.topology, NativeGateSet::Unrestricted)
            .expect("connected")
            .depth();
        println!("  {name:<18} native {native:>4}  unrestricted {free:>4}");
    }

    // Qubit budgets: how many relations future QPU generations could serve
    // (Theorem 5.3, cyclic graphs, ω = 1).
    println!("\nqubit budget → max relations (Theorem 5.3, 2 thresholds):");
    for budget in [27, 127, 433, 1_000, 4_000, 20_000] {
        let relations = max_relations_for_budget(budget, 2, 1.0, 3.0);
        println!("  {budget:>6} qubits → {relations:>3} relations");
    }
}
