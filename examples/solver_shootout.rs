//! Solver shoot-out: every optimiser in the workspace against one query.
//!
//! Classical join-ordering algorithms (exact DP, greedy, the Steinbrunn
//! randomised heuristics) compete with the QUBO route (preprocessing +
//! exact / simulated-annealing / tabu solvers and the simulated quantum
//! annealer) on the same instance.
//!
//! ```sh
//! cargo run --release --example solver_shootout
//! ```

use qjo::anneal::hardware::pegasus_like;
use qjo::anneal::AnnealerSampler;
use qjo::core::classical::{
    dp_optimal, greedy_min_cost, iterative_improvement, simulated_annealing_jo,
};
use qjo::core::prelude::*;
use qjo::qubo::fix_variables;
use qjo::qubo::solve::{ExactSolver, SimulatedAnnealing, SteepestDescent, TabuSearch};

fn main() {
    let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, 4).generate(42);
    println!(
        "cycle query: {} relations, {} predicates\n",
        query.num_relations(),
        query.num_predicates()
    );

    let mut report: Vec<(String, f64, String)> = Vec::new();

    // --- classical join-ordering algorithms -------------------------
    let t0 = std::time::Instant::now();
    let (_, opt) = dp_optimal(&query);
    report.push(("DP (exact)".into(), opt, format!("{:.2?}", t0.elapsed())));

    let t0 = std::time::Instant::now();
    let (_, g) = greedy_min_cost(&query);
    report.push(("greedy".into(), g, format!("{:.2?}", t0.elapsed())));

    let t0 = std::time::Instant::now();
    let (_, ii) = iterative_improvement(&query, 10, 50, 1);
    report.push(("iterative improvement".into(), ii, format!("{:.2?}", t0.elapsed())));

    let t0 = std::time::Instant::now();
    let (_, sa) = simulated_annealing_jo(&query, 80, 1);
    report.push(("simulated annealing (orders)".into(), sa, format!("{:.2?}", t0.elapsed())));

    // --- the QUBO route ---------------------------------------------
    let encoded =
        JoEncoder { thresholds: ThresholdSpec::Auto(3), ..JoEncoder::default() }.encode(&query);
    println!(
        "QUBO encoding: {} qubits, {} couplings",
        encoded.num_qubits(),
        encoded.qubo.num_interactions()
    );
    let pre = fix_variables(&encoded.qubo);
    println!("preprocessing fixed {} of {} variables\n", pre.num_fixed(), encoded.num_qubits());

    let decode_cost = |assignment: &[bool]| -> Option<f64> {
        decode_assignment(assignment, &encoded.registry, &query).map(|o| o.cost(&query))
    };

    let t0 = std::time::Instant::now();
    let qsa = SimulatedAnnealing { restarts: 80, sweeps: 1200, ..Default::default() }
        .solve(&encoded.qubo)
        .expect("valid model");
    if let Some(cost) = decode_cost(&qsa.assignment) {
        report.push(("QUBO + simulated annealing".into(), cost, format!("{:.2?}", t0.elapsed())));
    }

    let t0 = std::time::Instant::now();
    let qsd = SteepestDescent { restarts: 200, ..Default::default() }
        .solve(&encoded.qubo)
        .expect("valid model");
    match decode_cost(&qsd.assignment) {
        Some(cost) => {
            report.push(("QUBO + steepest descent".into(), cost, format!("{:.2?}", t0.elapsed())))
        }
        None => println!("steepest descent ended in an invalid assignment (energy {})", qsd.energy),
    }

    let t0 = std::time::Instant::now();
    let qtabu = TabuSearch { restarts: 30, iterations: 10_000, ..Default::default() }
        .solve(&encoded.qubo)
        .expect("valid model");
    match decode_cost(&qtabu.assignment) {
        Some(cost) => {
            report.push(("QUBO + tabu search".into(), cost, format!("{:.2?}", t0.elapsed())))
        }
        None => println!("tabu search ended in an invalid assignment (energy {})", qtabu.energy),
    }

    if encoded.num_qubits() <= 28 {
        let t0 = std::time::Instant::now();
        let qexact = ExactSolver::new().solve(&encoded.qubo).expect("fits");
        if let Some(cost) = decode_cost(&qexact.assignment) {
            report.push(("QUBO + exact enumeration".into(), cost, format!("{:.2?}", t0.elapsed())));
        }
    }

    // The annealer leg uses the minimal-precision encoding (one
    // threshold), as the paper does on D-Wave: embedding size is the
    // binding constraint there.
    let minimal = JoEncoder::default().encode(&query);
    let t0 = std::time::Instant::now();
    let sampler = AnnealerSampler { num_reads: 300, ..AnnealerSampler::new(pegasus_like(12)) };
    match sampler.sample_qubo(&minimal.qubo) {
        Ok(outcome) => {
            let quality = assess_samples(&outcome.samples, &minimal.registry, &query, opt);
            if let Some((_, cost)) = quality.best {
                report.push((
                    format!("simulated quantum annealer ({} phys qubits)", outcome.physical_qubits),
                    cost,
                    format!("{:.2?}", t0.elapsed()),
                ));
            }
        }
        Err(e) => println!("annealer: {e}"),
    }

    // --- report ------------------------------------------------------
    println!("{:<44} {:>14}  {:>10}  vs opt", "solver", "C_out", "time");
    println!("{}", "-".repeat(84));
    for (name, cost, time) in &report {
        println!("{name:<44} {cost:>14.0}  {time:>10}  {:.3}×", cost / opt);
    }
}
