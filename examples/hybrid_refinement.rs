//! Hybrid classical→quantum refinement with reverse annealing.
//!
//! A fast classical heuristic (greedy) proposes a join order; the order is
//! encoded into the QUBO's variable space and handed to the simulated
//! annealer as the *initial state* of a reverse anneal (paper ref [81],
//! Venturelli & Kondratyev): the transverse field is partially raised to
//! "melt" the state locally and lowered again, exploring the neighbourhood
//! of the classical solution instead of searching from scratch.
//!
//! The outcome is instructive either way: moving between join orders means
//! coherently flipping a dozen-plus bits through penalty walls of height
//! `A`, so reverse annealing typically *preserves* the warm start (unlike
//! forward annealing from scratch, which often ends invalid) but rarely
//! crosses to a different order — the same encoding-barrier pessimism the
//! paper reports for forward annealing.
//!
//! ```sh
//! cargo run --release --example hybrid_refinement
//! ```

use qjo::anneal::ice::normalize;
use qjo::anneal::{reverse_anneal_once, SqaConfig};
use qjo::core::classical::{dp_optimal, greedy_min_cardinality};
use qjo::core::prelude::*;
use qjo::qubo::ising;
use rand::SeedableRng;

fn main() {
    // Seed 26 is a known trap for the min-cardinality greedy (5.7× opt).
    let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, 4).generate(26);
    let (_, optimal_cost) = dp_optimal(&query);
    let (greedy_order, greedy_cost) = greedy_min_cardinality(&query);
    println!(
        "query: 4 relations; classical optimum C_out = {optimal_cost:.0}; \
         greedy found {:?} at {greedy_cost:.0} ({:.2}× opt)",
        greedy_order.order,
        greedy_cost / optimal_cost
    );

    // Encode the problem and express the greedy order as a QUBO assignment:
    // set the tii/tio/pao/cto variables the order implies, then brute-force
    // the few slack bits so the starting point is BILP-feasible.
    let encoded = JoEncoder {
        thresholds: ThresholdSpec::ExplicitLogs(vec![2.0, 3.0, 4.0, 5.0]),
        ..JoEncoder::default()
    }
    .encode(&query);
    println!("encoded: {} qubits, penalty A = {:.0}", encoded.num_qubits(), encoded.penalty_a);

    // Exact feasible warm start: the library's order→assignment encoder
    // fills operand, predicate, threshold, and slack bits consistently.
    let assignment =
        encoded.assignment_for_order(&greedy_order).expect("integer-log queries encode exactly");
    let start_energy = encoded.qubo.energy(&assignment).expect("length");
    println!("classical start: QUBO energy {start_energy:.0}");

    // Reverse annealing directly on the logical problem (no embedding, so
    // the demonstration isolates the annealing dynamics).
    let mut ising_model = encoded.qubo.to_ising();
    let scale = normalize(&mut ising_model);
    let spins = ising::bits_to_spins(&assignment);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut best = (assignment.clone(), start_energy);
    for gamma in [0.5, 1.0, 2.0] {
        for read in 0..8u64 {
            let cfg = SqaConfig { seed: read, temperature: 0.05, ..Default::default() };
            let refined_spins =
                reverse_anneal_once(&ising_model, &cfg, &spins, gamma, 400.0, &mut rng);
            let bits = ising::spins_to_bits(&refined_spins);
            let energy = encoded.qubo.energy(&bits).expect("length");
            if energy < best.1 {
                best = (bits, energy);
            }
        }
        let decoded = qjo::core::decode_assignment(&best.0, &encoded.registry, &query);
        println!(
            "after Γ ≤ {gamma:.1}: best energy {:>8.1} | {}",
            best.1,
            match &decoded {
                Some(order) =>
                    format!("order {:?}, C_out = {:.0}", order.order, order.cost(&query)),
                None => "invalid join order".to_string(),
            }
        );
    }
    let _ = scale;

    match qjo::core::decode_assignment(&best.0, &encoded.registry, &query) {
        Some(order) => {
            let cost = order.cost(&query);
            println!(
                "\nbest refined: {:?} at C_out = {cost:.0} ({:.2}× opt{})",
                order.order,
                cost / optimal_cost,
                if (cost - optimal_cost).abs() < 1e-9 { ", optimal ✓" } else { "" },
            );
            assert!(cost <= greedy_cost + 1e-9, "refinement must not regress");
        }
        None => println!("\nrefinement left the valid subspace (try smaller Γ)"),
    }

    // Contrast: forward annealing from scratch on the same hardware model
    // (full pipeline incl. embedding) — validity is no longer guaranteed.
    let sampler = qjo::anneal::AnnealerSampler {
        num_reads: 200,
        ..qjo::anneal::AnnealerSampler::new(qjo::anneal::hardware::pegasus_like(10))
    };
    match sampler.sample_qubo(&encoded.qubo) {
        Ok(outcome) => {
            let quality = assess_samples(&outcome.samples, &encoded.registry, &query, optimal_cost);
            println!(
                "forward annealing from scratch: {:.1}% valid, {:.1}% optimal reads",
                quality.valid_fraction * 100.0,
                quality.optimal_fraction * 100.0
            );
        }
        Err(e) => println!("forward annealing: {e}"),
    }
}
