//! `qjo` — join-order optimisation on (simulated) quantum hardware.
//!
//! The facade crate of the workspace: re-exports the public API of every
//! subsystem so applications depend on one crate.
//!
//! * [`core`] — the paper's contribution: query model, MILP → BILP → QUBO
//!   reformulation chain, qubit bounds, classical baselines, decoding.
//! * [`qubo`] — QUBO/Ising types and classical solvers.
//! * [`gatesim`] — circuit IR, state-vector simulation, NISQ noise, QAOA.
//! * [`transpile`] — hardware topologies, routing, gate-set decomposition,
//!   transpiler pipelines, co-design extrapolation.
//! * [`anneal`] — Pegasus-like hardware graphs, minor embedding, simulated
//!   quantum annealing, the D-Wave-like sampler.
//! * [`exec`] — deterministic parallel execution: seeded per-unit RNG
//!   streams and order-preserving `par_map`, so results are bit-identical
//!   at any thread count.
//!
//! See the `examples/` directory for end-to-end walkthroughs and the
//! `experiments` binary (`cargo run -p qjo-bench --release --bin
//! experiments`) for the paper's tables and figures.
//!
//! ```
//! use qjo::core::prelude::*;
//! use qjo::qubo::solve::ExactSolver;
//!
//! let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(7);
//! let encoded = JoEncoder::default().encode(&query);
//! let ground = ExactSolver::new().solve(&encoded.qubo).unwrap();
//! let order = decode_assignment(&ground.assignment, &encoded.registry, &query);
//! assert!(order.is_some(), "the QUBO minimum decodes to a valid join order");
//! ```

pub use qjo_anneal as anneal;
pub use qjo_core as core;
pub use qjo_exec as exec;
pub use qjo_gatesim as gatesim;
pub use qjo_qubo as qubo;
pub use qjo_transpile as transpile;
