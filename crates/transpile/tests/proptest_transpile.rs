//! Property-based tests for the transpilation substrate.

use proptest::prelude::*;

use qjo_gatesim::gate::Gate;
use qjo_gatesim::{Circuit, StateVector};
use qjo_transpile::density::densify;
use qjo_transpile::optimize::{cancel_pairs, merge_rotations};
use qjo_transpile::routing::respects_topology;
use qjo_transpile::{NativeGateSet, Strategy as PipelineStrategy, Topology, Transpiler};

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    let angle = -3.0..3.0f64;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        (q.clone(), angle.clone()).prop_map(|(q, t)| Gate::Rz(q, t)),
        (q, angle.clone()).prop_map(|(q, t)| Gate::Rx(q, t)),
        q2.clone().prop_map(|(a, b)| Gate::Cx(a, b)),
        (q2, angle).prop_map(|((a, b), t)| Gate::Rzz(a, b, t)),
    ]
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Measurement distributions agree after undoing the final layout.
fn distributions_match(logical: &Circuit, physical: &Circuit, layout: &[usize]) -> bool {
    let n = logical.num_qubits();
    let mut a = StateVector::zero(n);
    a.apply_circuit(logical);
    let mut b = StateVector::zero(physical.num_qubits());
    b.apply_circuit(physical);
    let pa = a.probabilities();
    let pb = b.probabilities();
    #[allow(clippy::needless_range_loop)] // z is a basis-state index
    for z in 0..1usize << n {
        let mut z_phys = 0usize;
        for l in 0..n {
            if z >> l & 1 == 1 {
                z_phys |= 1 << layout[l];
            }
        }
        if (pa[z] - pb[z_phys]).abs() > 1e-8 {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full transpiler output respects topology, uses only native
    /// gates, and preserves measurement statistics.
    #[test]
    fn transpilation_is_sound(c in arb_circuit(5, 16), seed in 0u64..20) {
        let topo = Topology::grid(3, 2); // 6 physical qubits
        for strategy in [PipelineStrategy::QiskitLike, PipelineStrategy::TketLike] {
            let r = Transpiler::new(strategy, seed).transpile(&c, &topo, NativeGateSet::Ibm);
            prop_assert!(respects_topology(&r.circuit, &topo));
            prop_assert!(r.circuit.gates().iter().all(|g| NativeGateSet::Ibm.is_native(g)));
            prop_assert!(
                distributions_match(&c, &r.circuit, &r.final_layout),
                "{strategy:?} changed semantics"
            );
        }
    }

    /// Peephole optimisation preserves semantics and never grows circuits.
    #[test]
    fn peephole_is_semantics_preserving(c in arb_circuit(4, 20)) {
        for optimised in [cancel_pairs(&c), merge_rotations(&c)] {
            prop_assert!(optimised.len() <= c.len());
            let mut a = StateVector::zero(4);
            a.apply_circuit(&c);
            let mut b = StateVector::zero(4);
            b.apply_circuit(&optimised);
            prop_assert!(a.fidelity(&b) > 1.0 - 1e-9);
        }
    }

    /// Densification interpolates edge counts monotonically and never
    /// removes existing couplers.
    #[test]
    fn densify_is_monotone(d1 in 0.0..1.0f64, d2 in 0.0..1.0f64, seed in 0u64..50) {
        let base = Topology::line(12);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let t_lo = densify(&base, lo, seed);
        let t_hi = densify(&base, hi, seed);
        prop_assert!(t_lo.num_edges() <= t_hi.num_edges());
        for (a, b) in base.edges() {
            prop_assert!(t_lo.has_edge(a, b), "densify dropped edge ({a},{b})");
        }
    }

    /// Gate-set decomposition emits only native gates for every set.
    #[test]
    fn decomposition_stays_native(c in arb_circuit(4, 12)) {
        for set in [NativeGateSet::Ibm, NativeGateSet::Rigetti, NativeGateSet::Ionq] {
            let d = set.decompose_circuit(&c);
            prop_assert!(d.gates().iter().all(|g| set.is_native(g)), "{set:?}");
            // And semantics are preserved (global phase aside): compare
            // measurement distributions from |0…0⟩.
            let mut a = StateVector::zero(4);
            a.apply_circuit(&c);
            let mut b = StateVector::zero(4);
            b.apply_circuit(&d);
            prop_assert!(a.fidelity(&b) > 1.0 - 1e-8, "{set:?} changed semantics");
        }
    }

    /// Routing on a complete graph never inserts SWAPs.
    #[test]
    fn complete_graph_needs_no_swaps(c in arb_circuit(5, 16), seed in 0u64..10) {
        let topo = Topology::complete(5);
        let r = Transpiler::new(PipelineStrategy::QiskitLike, seed)
            .transpile(&c, &topo, NativeGateSet::Unrestricted);
        prop_assert_eq!(r.swaps_inserted, 0);
    }
}
