//! Property-style tests for the transpilation substrate.
//!
//! Each property runs over a deterministic family of random instances
//! drawn from a seeded [`StdRng`] — the hermetic stand-in for the proptest
//! strategies the suite originally used. Seeds are fixed so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_gatesim::gate::Gate;
use qjo_gatesim::{Circuit, StateVector};
use qjo_transpile::density::densify;
use qjo_transpile::optimize::{cancel_pairs, merge_rotations};
use qjo_transpile::routing::respects_topology;
use qjo_transpile::{NativeGateSet, Strategy as PipelineStrategy, Topology, Transpiler};

/// Draws a distinct ordered qubit pair.
fn distinct_pair(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let a = rng.random_range(0..n);
    loop {
        let b = rng.random_range(0..n);
        if b != a {
            return (a, b);
        }
    }
}

/// Draws a random gate from the transpiler-relevant alphabet.
fn arb_gate(rng: &mut StdRng, n: usize) -> Gate {
    let q = rng.random_range(0..n);
    match rng.random_range(0..6u32) {
        0 => Gate::H(q),
        1 => Gate::X(q),
        2 => Gate::Rz(q, rng.random_range(-3.0..3.0)),
        3 => Gate::Rx(q, rng.random_range(-3.0..3.0)),
        4 => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Cx(a, b)
        }
        _ => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Rzz(a, b, rng.random_range(-3.0..3.0))
        }
    }
}

fn arb_circuit(rng: &mut StdRng, n: usize, max_gates: usize) -> Circuit {
    let count = rng.random_range(1..max_gates);
    let mut c = Circuit::new(n);
    for _ in 0..count {
        let g = arb_gate(rng, n);
        c.push(g);
    }
    c
}

fn for_cases(cases: u64, mut body: impl FnMut(&mut StdRng, u64)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0x7247_0000 + case);
        body(&mut rng, case);
    }
}

/// Measurement distributions agree after undoing the final layout.
fn distributions_match(logical: &Circuit, physical: &Circuit, layout: &[usize]) -> bool {
    let n = logical.num_qubits();
    let mut a = StateVector::zero(n);
    a.apply_circuit(logical);
    let mut b = StateVector::zero(physical.num_qubits());
    b.apply_circuit(physical);
    let pa = a.probabilities();
    let pb = b.probabilities();
    #[allow(clippy::needless_range_loop)] // z is a basis-state index
    for z in 0..1usize << n {
        let mut z_phys = 0usize;
        for l in 0..n {
            if z >> l & 1 == 1 {
                z_phys |= 1 << layout[l];
            }
        }
        if (pa[z] - pb[z_phys]).abs() > 1e-8 {
            return false;
        }
    }
    true
}

/// The full transpiler output respects topology, uses only native
/// gates, and preserves measurement statistics.
#[test]
fn transpilation_is_sound() {
    for_cases(24, |rng, case| {
        let c = arb_circuit(rng, 5, 16);
        let seed = rng.random_range(0u64..20);
        let topo = Topology::grid(3, 2); // 6 physical qubits
        for strategy in [PipelineStrategy::QiskitLike, PipelineStrategy::TketLike] {
            let r = Transpiler::new(strategy, seed)
                .transpile(&c, &topo, NativeGateSet::Ibm)
                .expect("grid is connected");
            assert!(respects_topology(&r.circuit, &topo), "case {case} {strategy:?}");
            assert!(
                r.circuit.gates().iter().all(|g| NativeGateSet::Ibm.is_native(g)),
                "case {case} {strategy:?}"
            );
            assert!(
                distributions_match(&c, &r.circuit, &r.final_layout),
                "case {case}: {strategy:?} changed semantics"
            );
        }
    });
}

/// Peephole optimisation preserves semantics and never grows circuits.
#[test]
fn peephole_is_semantics_preserving() {
    for_cases(24, |rng, case| {
        let c = arb_circuit(rng, 4, 20);
        for optimised in [cancel_pairs(&c), merge_rotations(&c)] {
            assert!(optimised.len() <= c.len(), "case {case}");
            let mut a = StateVector::zero(4);
            a.apply_circuit(&c);
            let mut b = StateVector::zero(4);
            b.apply_circuit(&optimised);
            assert!(a.fidelity(&b) > 1.0 - 1e-9, "case {case}");
        }
    });
}

/// Densification interpolates edge counts monotonically and never
/// removes existing couplers.
#[test]
fn densify_is_monotone() {
    for_cases(24, |rng, case| {
        let d1 = rng.random_range(0.0..1.0);
        let d2 = rng.random_range(0.0..1.0);
        let seed = rng.random_range(0u64..50);
        let base = Topology::line(12);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let t_lo = densify(&base, lo, seed);
        let t_hi = densify(&base, hi, seed);
        assert!(t_lo.num_edges() <= t_hi.num_edges(), "case {case}");
        for (a, b) in base.edges() {
            assert!(t_lo.has_edge(a, b), "case {case}: densify dropped edge ({a},{b})");
        }
    });
}

/// Gate-set decomposition emits only native gates for every set.
#[test]
fn decomposition_stays_native() {
    for_cases(24, |rng, case| {
        let c = arb_circuit(rng, 4, 12);
        for set in [NativeGateSet::Ibm, NativeGateSet::Rigetti, NativeGateSet::Ionq] {
            let d = set.decompose_circuit(&c);
            assert!(d.gates().iter().all(|g| set.is_native(g)), "case {case} {set:?}");
            // And semantics are preserved (global phase aside): compare
            // measurement distributions from |0…0⟩.
            let mut a = StateVector::zero(4);
            a.apply_circuit(&c);
            let mut b = StateVector::zero(4);
            b.apply_circuit(&d);
            assert!(a.fidelity(&b) > 1.0 - 1e-8, "case {case}: {set:?} changed semantics");
        }
    });
}

/// Routing on a complete graph never inserts SWAPs.
#[test]
fn complete_graph_needs_no_swaps() {
    for_cases(24, |rng, case| {
        let c = arb_circuit(rng, 5, 16);
        let seed = rng.random_range(0u64..10);
        let topo = Topology::complete(5);
        let r = Transpiler::new(PipelineStrategy::QiskitLike, seed)
            .transpile(&c, &topo, NativeGateSet::Unrestricted)
            .expect("complete graph is connected");
        assert_eq!(r.swaps_inserted, 0, "case {case}");
    });
}
