//! Chaos tests for the transpiler's rejected-route retry (own binary:
//! fault plans are process-global and serialise via the scoped guard).

use qjo_gatesim::{Circuit, Gate};
use qjo_resil::fault::{scoped, without_faults};
use qjo_resil::FaultPlan;
use qjo_transpile::{NativeGateSet, Strategy, Topology, Transpiler};

fn ladder(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for q in 0..n - 1 {
        c.push(Gate::Cx(q, q + 1));
    }
    c.push(Gate::Cx(0, n - 1));
    c
}

#[test]
fn rejected_routes_restart_with_a_reseeded_layout() {
    let run = || {
        Transpiler::new(Strategy::QiskitLike, 7)
            .transpile(&ladder(6), &Topology::grid(3, 3), NativeGateSet::Ibm)
            .expect("grid is connected")
    };
    let baseline = without_faults(run);
    let _guard = scoped(FaultPlan::new(21).with_rate("transpile.route", 1.0));
    let before = qjo_obs::global().snapshot();
    let chaotic = run();
    let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
    assert_eq!(deltas.get("resil.transpile.route.retries"), Some(&2));
    assert_eq!(deltas.get("fault.injected.transpile.route"), Some(&2));
    assert_ne!(
        baseline.initial_layout, chaotic.initial_layout,
        "the reseeded layout differs from the rejected one"
    );
    let again = run();
    assert_eq!(again.initial_layout, chaotic.initial_layout, "deterministically so");
    assert_eq!(again.swaps_inserted, chaotic.swaps_inserted);
}
