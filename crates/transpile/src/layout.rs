//! Initial placement of logical qubits onto physical qubits.
//!
//! A good initial layout puts strongly-interacting logical qubits on
//! physically adjacent hardware qubits, reducing the SWAPs routing must
//! insert. We use a greedy interaction-degree placement with optional
//! seed-dependent perturbation — the perturbation models the run-to-run
//! variance of heuristic transpilers that the paper measures with 20
//! transpilation repetitions per scenario (Fig. 2).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_gatesim::Circuit;

use crate::topology::Topology;

/// Logical-qubit interaction weights: `w[a][b]` counts two-qubit gates
/// between logical qubits `a` and `b`.
pub fn interaction_weights(circuit: &Circuit) -> Vec<Vec<usize>> {
    let n = circuit.num_qubits();
    let mut w = vec![vec![0usize; n]; n];
    for g in circuit.gates() {
        if let qjo_gatesim::gate::GateQubits::Two(a, b) = g.qubits() {
            w[a][b] += 1;
            w[b][a] += 1;
        }
    }
    w
}

/// A layout maps logical qubit `l` to physical qubit `layout[l]`.
pub type Layout = Vec<usize>;

/// Identity layout (logical `i` on physical `i`).
pub fn trivial_layout(num_logical: usize) -> Layout {
    (0..num_logical).collect()
}

/// Greedy interaction-driven placement.
///
/// Physical candidates are explored by BFS from the highest-degree hardware
/// qubit; logical qubits are placed in decreasing interaction order, each
/// onto the free physical qubit minimising distance-weighted cost to its
/// already-placed partners. `perturbation` applies that many random
/// transpositions afterwards (0 = deterministic).
pub fn greedy_layout(
    circuit: &Circuit,
    topology: &Topology,
    seed: u64,
    perturbation: usize,
) -> Layout {
    let n_log = circuit.num_qubits();
    let n_phys = topology.num_qubits();
    assert!(n_log <= n_phys, "circuit needs {n_log} qubits but device has only {n_phys}");
    let weights = interaction_weights(circuit);

    // Logical order: decreasing total interaction weight.
    let mut logical_order: Vec<usize> = (0..n_log).collect();
    let strength = |l: usize| -> usize { weights[l].iter().sum() };
    logical_order.sort_by_key(|&l| std::cmp::Reverse(strength(l)));

    // Physical exploration order: BFS from the max-degree qubit keeps the
    // placement compact.
    let start = (0..n_phys).max_by_key(|&q| topology.degree(q)).unwrap_or(0);
    let mut phys_order = Vec::with_capacity(n_phys);
    let mut seen = vec![false; n_phys];
    let mut queue = std::collections::VecDeque::from([start]);
    seen[start] = true;
    while let Some(v) = queue.pop_front() {
        phys_order.push(v);
        for &w in topology.neighbors(v) {
            if !seen[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    // Disconnected leftovers (if any) go last.
    phys_order.extend(seen.iter().enumerate().filter(|(_, s)| !**s).map(|(q, _)| q));

    let mut layout = vec![usize::MAX; n_log];
    let mut used = vec![false; n_phys];
    for &l in &logical_order {
        // Cost of placing l at p: Σ weight(l, placed partner) · dist(p, partner).
        let mut best: Option<(usize, f64)> = None;
        for &p in &phys_order {
            if used[p] {
                continue;
            }
            let mut cost = 0.0;
            for (other, &w) in weights[l].iter().enumerate() {
                if w > 0 && layout[other] != usize::MAX {
                    let d = topology.distance(p, layout[other]).map(|d| d as f64).unwrap_or(1e6);
                    cost += w as f64 * d;
                }
            }
            match best {
                Some((_, c)) if c <= cost => {}
                _ => best = Some((p, cost)),
            }
        }
        let (p, _) = best.expect("enough physical qubits checked above");
        layout[l] = p;
        used[p] = true;
    }

    if perturbation > 0 {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..perturbation {
            let a = rng.random_range(0..n_log);
            let b = rng.random_range(0..n_log);
            layout.swap(a, b);
        }
    }
    layout
}

/// Checks a layout is injective and within the device.
pub fn validate_layout(layout: &Layout, topology: &Topology) -> bool {
    let mut used = vec![false; topology.num_qubits()];
    for &p in layout {
        if p >= topology.num_qubits() || used[p] {
            return false;
        }
        used[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjo_gatesim::gate::Gate::*;

    fn chain_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n - 1 {
            c.push(Cx(q, q + 1));
        }
        c
    }

    #[test]
    fn interaction_weights_count_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.push(Cx(0, 1));
        c.push(Cx(0, 1));
        c.push(Rzz(1, 2, 0.5));
        c.push(H(0));
        let w = interaction_weights(&c);
        assert_eq!(w[0][1], 2);
        assert_eq!(w[1][0], 2);
        assert_eq!(w[1][2], 1);
        assert_eq!(w[0][2], 0);
    }

    #[test]
    fn greedy_layout_is_valid_and_deterministic() {
        let c = chain_circuit(5);
        let t = Topology::grid(3, 3);
        let a = greedy_layout(&c, &t, 0, 0);
        let b = greedy_layout(&c, &t, 99, 0);
        assert_eq!(a, b, "unperturbed layout must not depend on seed");
        assert!(validate_layout(&a, &t));
    }

    #[test]
    fn greedy_layout_places_chain_compactly() {
        let c = chain_circuit(4);
        let t = Topology::line(8);
        let layout = greedy_layout(&c, &t, 0, 0);
        // Total distance over interacting pairs should be minimal (= 3).
        let total: usize = (0..3).map(|q| t.distance(layout[q], layout[q + 1]).unwrap()).sum();
        assert_eq!(total, 3, "layout {layout:?} is not compact");
    }

    #[test]
    fn perturbation_changes_layout_but_stays_valid() {
        let c = chain_circuit(6);
        let t = Topology::grid(3, 3);
        let base = greedy_layout(&c, &t, 7, 0);
        let perturbed = greedy_layout(&c, &t, 7, 3);
        assert!(validate_layout(&perturbed, &t));
        assert_ne!(base, perturbed, "3 transpositions should alter a 6-qubit layout");
    }

    #[test]
    #[should_panic(expected = "device has only")]
    fn rejects_circuits_larger_than_device() {
        greedy_layout(&chain_circuit(10), &Topology::line(5), 0, 0);
    }

    #[test]
    fn validate_layout_catches_duplicates_and_range() {
        let t = Topology::line(4);
        assert!(validate_layout(&vec![0, 1, 2], &t));
        assert!(!validate_layout(&vec![0, 0], &t));
        assert!(!validate_layout(&vec![5], &t));
    }

    #[test]
    fn trivial_layout_is_identity() {
        assert_eq!(trivial_layout(4), vec![0, 1, 2, 3]);
    }
}
