//! Transpilation substrate for gate-based QPUs: hardware topologies, qubit
//! layout, SWAP routing, native gate-set decomposition, peephole
//! optimisation, and whole-pipeline transpilers.
//!
//! This crate plays the role of Qiskit's and tket's compilation stacks in
//! the paper's experiments, plus the *topology extrapolation* machinery of
//! the co-design study (Section 6): size-extrapolated IBM/Rigetti lattices,
//! density-augmented coupling graphs, and complete-mesh IonQ devices.
//!
//! # Example
//!
//! ```
//! use qjo_qubo::Qubo;
//! use qjo_gatesim::{qaoa_circuit, QaoaParams};
//! use qjo_transpile::{Device, NativeGateSet, Strategy, Transpiler};
//!
//! let mut q = Qubo::new(4);
//! for i in 0..4 {
//!     for j in i + 1..4 {
//!         q.add_quadratic(i, j, 1.0);
//!     }
//! }
//! let circuit = qaoa_circuit(&q.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });
//!
//! let device = Device::ibm_auckland();
//! let result = Transpiler::new(Strategy::QiskitLike, 0)
//!     .transpile(&circuit, &device.topology, device.gate_set)
//!     .expect("connected device");
//! assert!(result.depth() >= circuit.depth()); // routing + decomposition cost
//! ```

pub mod aspen;
pub mod decompose;
pub mod density;
pub mod device;
pub mod error;
pub mod heavy_hex;
pub mod layout;
pub mod metrics;
pub mod optimize;
pub mod routing;
pub mod sabre;
pub mod topology;
pub mod transpiler;

pub use decompose::NativeGateSet;
pub use device::Device;
pub use error::TranspileError;
pub use metrics::{stats, stats_cheap, TopologyStats};
pub use routing::{respects_topology, RoutedCircuit, RouterConfig};
pub use topology::Topology;
pub use transpiler::{DepthStats, Strategy, TranspileResult, Transpiler};
