//! SABRE routing (Li, Ding & Xie, ASPLOS 2019).
//!
//! The production-grade routing algorithm behind Qiskit's default pass.
//! Unlike the greedy in-order router in [`crate::routing`], SABRE works on
//! the circuit's *dependency DAG*: at each step every two-qubit gate whose
//! operands are adjacent is executed immediately (in any order), and only
//! when the whole front layer is blocked is a SWAP chosen — scored over the
//! front layer plus a look-ahead window of successor gates, with a decay
//! factor discouraging ping-ponging the same qubits. An optional
//! forward–backward pre-pass refines the initial layout by routing the
//! reversed circuit and reusing the final permutation.

use qjo_gatesim::gate::{Gate, GateQubits};
use qjo_gatesim::Circuit;

use crate::error::TranspileError;
use crate::layout::Layout;
use crate::routing::RoutedCircuit;
use crate::topology::Topology;

/// SABRE parameters.
#[derive(Debug, Clone, Copy)]
pub struct SabreConfig {
    /// Weight of the extended (look-ahead) set in the SWAP score.
    pub extended_weight: f64,
    /// Size of the extended set (successor gates considered).
    pub extended_size: usize,
    /// Decay added to a qubit's score factor after it participates in a
    /// SWAP; reset every `decay_reset` steps.
    pub decay: f64,
    /// Steps between decay resets.
    pub decay_reset: usize,
    /// Forward–backward–forward layout refinement passes.
    pub layout_passes: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_weight: 0.5,
            extended_size: 20,
            decay: 0.001,
            decay_reset: 5,
            layout_passes: 1,
        }
    }
}

/// Per-gate dependency structure: for each gate, the number of unexecuted
/// predecessors and the list of successors.
struct Dag {
    preds_remaining: Vec<usize>,
    successors: Vec<Vec<usize>>,
}

fn build_dag(circuit: &Circuit) -> Dag {
    let n = circuit.num_qubits();
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; n];
    let mut preds_remaining = vec![0usize; circuit.len()];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); circuit.len()];
    for (gi, gate) in circuit.gates().iter().enumerate() {
        for q in gate.qubits().iter() {
            if let Some(prev) = last_on_qubit[q] {
                successors[prev].push(gi);
                preds_remaining[gi] += 1;
            }
            last_on_qubit[q] = Some(gi);
        }
    }
    Dag { preds_remaining, successors }
}

/// Routes `circuit` onto `topology` with SABRE, starting from
/// `initial_layout` (logical → physical).
///
/// Returns [`TranspileError::DisconnectedQubits`] when any two-qubit
/// gate's operands sit in different connected components. SWAPs move
/// states along couplers only, so component membership is invariant under
/// routing — the upfront check is both sound and complete, and without it
/// the blocked-front loop below would spin forever on such a gate.
pub fn sabre_route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: &Layout,
    config: &SabreConfig,
) -> Result<RoutedCircuit, TranspileError> {
    assert_eq!(initial_layout.len(), circuit.num_qubits(), "layout size mismatch");
    assert!(crate::layout::validate_layout(initial_layout, topology), "invalid initial layout");
    for gate in circuit.gates() {
        if let GateQubits::Two(a, b) = gate.qubits() {
            let (pa, pb) = (initial_layout[a], initial_layout[b]);
            if topology.distance(pa, pb).is_none() {
                return Err(TranspileError::DisconnectedQubits { a: pa, b: pb });
            }
        }
    }
    let n_phys = topology.num_qubits();
    let mut layout = initial_layout.clone();
    let mut inverse = vec![usize::MAX; n_phys];
    for (l, &p) in layout.iter().enumerate() {
        inverse[p] = l;
    }

    let mut dag = build_dag(circuit);
    let gates = circuit.gates();
    let mut front: Vec<usize> = (0..gates.len()).filter(|&g| dag.preds_remaining[g] == 0).collect();
    let mut out = Circuit::new(n_phys);
    let mut swaps_inserted = 0usize;
    let mut decay = vec![1.0f64; n_phys];
    let mut steps_since_reset = 0usize;

    let executable = |g: &Gate, layout: &Layout, topo: &Topology| -> bool {
        match g.qubits() {
            GateQubits::One(_) => true,
            GateQubits::Two(a, b) => topo.has_edge(layout[a], layout[b]),
        }
    };

    while !front.is_empty() {
        // Execute every currently executable front gate.
        let mut executed_any = false;
        let mut next_front = Vec::with_capacity(front.len());
        for &gi in &front {
            if executable(&gates[gi], &layout, topology) {
                out.push(gates[gi].map_qubits(|q| layout[q]));
                executed_any = true;
                for &succ in &dag.successors[gi] {
                    dag.preds_remaining[succ] -= 1;
                    if dag.preds_remaining[succ] == 0 {
                        next_front.push(succ);
                    }
                }
            } else {
                next_front.push(gi);
            }
        }
        front = next_front;
        if executed_any || front.is_empty() {
            continue;
        }

        // Blocked: choose a SWAP. Candidates are edges incident to the
        // physical operands of blocked front gates.
        let blocked: Vec<(usize, usize)> = front
            .iter()
            .filter_map(|&gi| match gates[gi].qubits() {
                GateQubits::Two(a, b) => Some((layout[a], layout[b])),
                GateQubits::One(_) => None,
            })
            .collect();
        debug_assert!(!blocked.is_empty(), "blocked front must contain 2q gates");

        // Extended set: nearest unexecuted successors of front gates.
        let mut extended: Vec<(usize, usize)> = Vec::new();
        'outer: for &gi in &front {
            for &succ in &dag.successors[gi] {
                if let GateQubits::Two(a, b) = gates[succ].qubits() {
                    extended.push((a, b));
                    if extended.len() >= config.extended_size {
                        break 'outer;
                    }
                }
            }
        }

        let mut best: Option<((usize, usize), f64)> = None;
        for &(pa, pb) in &blocked {
            for &endpoint in &[pa, pb] {
                for &nb in topology.neighbors(endpoint) {
                    let edge = (endpoint.min(nb), endpoint.max(nb));
                    let moved = |p: usize| {
                        if p == edge.0 {
                            edge.1
                        } else if p == edge.1 {
                            edge.0
                        } else {
                            p
                        }
                    };
                    let front_score: f64 = blocked
                        .iter()
                        .map(|&(a, b)| {
                            topology.distance(moved(a), moved(b)).unwrap_or(usize::MAX / 2) as f64
                        })
                        .sum::<f64>()
                        / blocked.len() as f64;
                    let ext_score: f64 = if extended.is_empty() {
                        0.0
                    } else {
                        extended
                            .iter()
                            .map(|&(la, lb)| {
                                topology
                                    .distance(moved(layout[la]), moved(layout[lb]))
                                    .unwrap_or(usize::MAX / 2)
                                    as f64
                            })
                            .sum::<f64>()
                            / extended.len() as f64
                    };
                    let score = decay[edge.0].max(decay[edge.1])
                        * (front_score + config.extended_weight * ext_score);
                    match best {
                        Some((e, s)) if s < score || (s == score && e <= edge) => {}
                        _ => best = Some((edge, score)),
                    }
                }
            }
        }
        let (edge, _) = best.expect("blocked gates always have candidate swaps");
        // Apply the SWAP.
        let (p, q) = edge;
        let (lp, lq) = (inverse[p], inverse[q]);
        if lp != usize::MAX {
            layout[lp] = q;
        }
        if lq != usize::MAX {
            layout[lq] = p;
        }
        inverse.swap(p, q);
        out.push(Gate::Swap(p, q));
        swaps_inserted += 1;
        decay[p] += config.decay;
        decay[q] += config.decay;
        steps_since_reset += 1;
        if steps_since_reset >= config.decay_reset {
            decay.fill(1.0);
            steps_since_reset = 0;
        }
    }

    Ok(RoutedCircuit { circuit: out, final_layout: layout, swaps_inserted })
}

/// SABRE's forward–backward layout refinement: route the circuit, route
/// its reverse from the resulting layout, and take the final layout as the
/// refined initial layout.
pub fn sabre_layout(
    circuit: &Circuit,
    topology: &Topology,
    seed_layout: &Layout,
    config: &SabreConfig,
) -> Result<Layout, TranspileError> {
    let mut layout = seed_layout.clone();
    let reversed = {
        let mut r = Circuit::new(circuit.num_qubits());
        for g in circuit.gates().iter().rev() {
            r.push(*g);
        }
        r
    };
    for _ in 0..config.layout_passes {
        let forward = sabre_route(circuit, topology, &layout, config)?;
        let backward = sabre_route(&reversed, topology, &forward.final_layout, config)?;
        layout = backward.final_layout;
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::greedy_layout;
    use crate::routing::{respects_topology, route, RouterConfig};
    use qjo_gatesim::gate::Gate::*;
    use qjo_gatesim::StateVector;

    fn route_sabre(c: &Circuit, topo: &Topology) -> RoutedCircuit {
        let layout: Layout = (0..c.num_qubits()).collect();
        sabre_route(c, topo, &layout, &SabreConfig::default()).expect("connected topology")
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.push(Cx(0, 1));
        c.push(Cx(1, 2));
        let r = route_sabre(&c, &Topology::line(3));
        assert_eq!(r.swaps_inserted, 0);
    }

    #[test]
    fn routes_distant_gates_correctly() {
        let mut c = Circuit::new(4);
        for g in [H(0), Cx(0, 3), Rz(3, 0.7), Cx(1, 2), Rzz(0, 2, 0.4)] {
            c.push(g);
        }
        let topo = Topology::line(4);
        let r = route_sabre(&c, &topo);
        assert!(respects_topology(&r.circuit, &topo));

        // Semantics: compare distributions after undoing the layout.
        let mut logical = StateVector::zero(4);
        logical.apply_circuit(&c);
        let mut physical = StateVector::zero(4);
        physical.apply_circuit(&r.circuit);
        let pl = logical.probabilities();
        let pp = physical.probabilities();
        #[allow(clippy::needless_range_loop)] // z is a basis-state index
        for z in 0..16usize {
            let mut zp = 0usize;
            for l in 0..4 {
                if z >> l & 1 == 1 {
                    zp |= 1 << r.final_layout[l];
                }
            }
            assert!((pl[z] - pp[zp]).abs() < 1e-9);
        }
    }

    #[test]
    fn commuting_gates_can_bypass_a_blocked_front_gate() {
        // In-order routing must move qubits for Cx(0,3) before touching
        // Cx(1,2); SABRE executes Cx(1,2) immediately (it is independent).
        let mut c = Circuit::new(4);
        c.push(Cx(0, 3));
        c.push(Cx(1, 2));
        let topo = Topology::line(4);
        let r = route_sabre(&c, &topo);
        // The first emitted gate is the adjacent Cx(1,2), not a SWAP.
        assert_eq!(r.circuit.gates()[0], Cx(1, 2));
    }

    #[test]
    fn sabre_never_does_worse_than_greedy_on_dense_workloads() {
        // All-pairs RZZ — the QAOA cost-layer shape.
        let n = 6;
        let mut c = Circuit::new(n);
        for a in 0..n {
            for b in a + 1..n {
                c.push(Rzz(a, b, 0.3));
            }
        }
        let topo = Topology::line(n);
        let layout: Layout = (0..n).collect();
        let greedy = route(&c, &topo, &layout, RouterConfig::default()).unwrap();
        let sabre = sabre_route(&c, &topo, &layout, &SabreConfig::default()).unwrap();
        assert!(respects_topology(&sabre.circuit, &topo));
        assert!(
            sabre.swaps_inserted <= greedy.swaps_inserted + 2,
            "sabre {} vs greedy {}",
            sabre.swaps_inserted,
            greedy.swaps_inserted
        );
    }

    #[test]
    fn layout_refinement_reduces_or_preserves_swaps() {
        let mut c = Circuit::new(6);
        for (a, b) in [(0, 5), (1, 4), (2, 3), (0, 5), (1, 4)] {
            c.push(Cx(a, b));
        }
        let topo = Topology::grid(3, 2);
        let seed = greedy_layout(&c, &topo, 0, 0);
        let cfg = SabreConfig::default();
        let refined = sabre_layout(&c, &topo, &seed, &cfg).unwrap();
        let baseline = sabre_route(&c, &topo, &seed, &cfg).unwrap().swaps_inserted;
        let improved = sabre_route(&c, &topo, &refined, &cfg).unwrap().swaps_inserted;
        assert!(improved <= baseline + 1, "refined {improved} vs baseline {baseline}");
    }

    #[test]
    fn single_qubit_only_circuits_pass_through() {
        let mut c = Circuit::new(3);
        for g in [H(0), Rz(1, 0.5), X(2)] {
            c.push(g);
        }
        let r = route_sabre(&c, &Topology::line(3));
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.circuit.len(), 3);
    }

    #[test]
    fn disconnected_operands_error_instead_of_looping() {
        // Before the upfront routability check, an unroutable gate left
        // the front layer permanently blocked and SABRE inserted SWAPs
        // forever. It must fail fast instead.
        let topo = Topology::new(4, &[(0, 1), (2, 3)]);
        let mut c = Circuit::new(4);
        c.push(Cx(1, 2));
        let layout: Layout = (0..4).collect();
        let err = sabre_route(&c, &topo, &layout, &SabreConfig::default()).unwrap_err();
        assert_eq!(err, TranspileError::DisconnectedQubits { a: 1, b: 2 });
        assert_eq!(
            sabre_layout(&c, &topo, &layout, &SabreConfig::default()).unwrap_err(),
            TranspileError::DisconnectedQubits { a: 1, b: 2 }
        );
        // Within-island work still routes.
        let mut ok = Circuit::new(4);
        ok.push(Cx(0, 1));
        assert!(sabre_route(&ok, &topo, &layout, &SabreConfig::default()).is_ok());
    }

    #[test]
    fn final_layout_is_a_permutation() {
        let mut c = Circuit::new(5);
        for (a, b) in [(0, 4), (1, 3), (2, 4), (0, 2)] {
            c.push(Cx(a, b));
        }
        let r = route_sabre(&c, &Topology::ring(5));
        let mut seen = [false; 5];
        for &p in &r.final_layout {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }
}
