//! Peephole circuit optimisation.
//!
//! Two passes of different aggressiveness, mirroring the behavioural gap the
//! paper measures between transpilers:
//!
//! * [`cancel_pairs`] removes adjacent self-inverse pairs (H·H, X·X, CX·CX,
//!   CZ·CZ, SWAP·SWAP) — cheap and done by every serious compiler.
//! * [`merge_rotations`] additionally fuses adjacent same-axis rotations
//!   (RZ·RZ, RX·RX, RZZ·RZZ, ...) and drops angle-0 rotations.

use std::f64::consts::PI;

use qjo_gatesim::gate::Gate;
use qjo_gatesim::Circuit;

fn is_zero_angle(t: f64) -> bool {
    let two_pi = 2.0 * PI;
    let d = t.rem_euclid(two_pi);
    d < 1e-12 || two_pi - d < 1e-12
}

/// True when `a` immediately followed by `b` is the identity.
fn cancels(a: &Gate, b: &Gate) -> bool {
    use Gate::*;
    match (a, b) {
        (H(p), H(q)) | (X(p), X(q)) | (Y(p), Y(q)) | (Z(p), Z(q)) => p == q,
        (S(p), Sdg(q)) | (Sdg(p), S(q)) => p == q,
        (Cx(c1, t1), Cx(c2, t2)) => c1 == c2 && t1 == t2,
        (Cz(a1, b1), Cz(a2, b2)) => (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2),
        (Swap(a1, b1), Swap(a2, b2)) => (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2),
        _ => false,
    }
}

/// If `a` then `b` fuse into one rotation, returns the fused gate (or `None`
/// when the fusion is the identity).
fn fuses(a: &Gate, b: &Gate) -> Option<Option<Gate>> {
    use Gate::*;
    let fused = match (a, b) {
        (Rz(p, t1), Rz(q, t2)) if p == q => Rz(*p, t1 + t2),
        (Rx(p, t1), Rx(q, t2)) if p == q => Rx(*p, t1 + t2),
        (Ry(p, t1), Ry(q, t2)) if p == q => Ry(*p, t1 + t2),
        (Phase(p, t1), Phase(q, t2)) if p == q => Phase(*p, t1 + t2),
        (Rzz(a1, b1, t1), Rzz(a2, b2, t2)) if (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2) => {
            Rzz(*a1, *b1, t1 + t2)
        }
        (Rxx(a1, b1, t1), Rxx(a2, b2, t2)) if (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2) => {
            Rxx(*a1, *b1, t1 + t2)
        }
        _ => return None,
    };
    Some(match fused.angle() {
        Some(t) if is_zero_angle(t) => None,
        _ => Some(fused),
    })
}

/// One optimisation sweep. Returns the optimised circuit and whether
/// anything changed.
fn sweep(circuit: &Circuit, merge: bool) -> (Circuit, bool) {
    let n = circuit.num_qubits();
    // Working list with tombstones so cancellation can reach backwards.
    let mut ops: Vec<Option<Gate>> = Vec::with_capacity(circuit.len());
    // For each qubit, index into `ops` of the most recent live gate.
    let mut last: Vec<Option<usize>> = vec![None; n];
    let mut changed = false;

    'gates: for g in circuit.gates() {
        // Drop zero rotations outright.
        if merge {
            if let Some(t) = g.angle() {
                if is_zero_angle(t) {
                    changed = true;
                    continue;
                }
            }
        }
        // The candidate predecessor must be the last gate on *all* qubits
        // this gate touches (otherwise something interposes).
        let qubits: Vec<usize> = g.qubits().iter().collect();
        let pred_idx = last[qubits[0]];
        let aligned = pred_idx.is_some() && qubits.iter().all(|&q| last[q] == pred_idx);
        if aligned {
            let idx = pred_idx.expect("aligned implies some");
            let prev = ops[idx].expect("live index");
            // Predecessor must touch exactly the same qubit set.
            let prev_qubits: Vec<usize> = prev.qubits().iter().collect();
            let same_support = {
                let mut a = qubits.clone();
                let mut b = prev_qubits;
                a.sort_unstable();
                b.sort_unstable();
                a == b
            };
            if same_support {
                if cancels(&prev, g) {
                    ops[idx] = None;
                    for &q in &qubits {
                        last[q] = find_prev_live(&ops, &qubits, q, idx);
                    }
                    changed = true;
                    continue 'gates;
                }
                if merge {
                    if let Some(fused) = fuses(&prev, g) {
                        changed = true;
                        match fused {
                            Some(fg) => ops[idx] = Some(fg),
                            None => {
                                ops[idx] = None;
                                for &q in &qubits {
                                    last[q] = find_prev_live(&ops, &qubits, q, idx);
                                }
                            }
                        }
                        continue 'gates;
                    }
                }
            }
        }
        ops.push(Some(*g));
        let new_idx = ops.len() - 1;
        for q in g.qubits().iter() {
            last[q] = Some(new_idx);
        }
    }

    let mut out = Circuit::new(n);
    for g in ops.into_iter().flatten() {
        out.push(g);
    }
    (out, changed)
}

/// Finds the most recent live op before `before` that touches qubit `q`.
fn find_prev_live(
    ops: &[Option<Gate>],
    _removed_qubits: &[usize],
    q: usize,
    before: usize,
) -> Option<usize> {
    (0..before).rev().find(|&i| ops[i].map(|g| g.qubits().iter().any(|x| x == q)).unwrap_or(false))
}

/// Removes adjacent self-inverse pairs until fixpoint.
pub fn cancel_pairs(circuit: &Circuit) -> Circuit {
    run_to_fixpoint(circuit, false)
}

/// Cancels pairs *and* fuses adjacent same-axis rotations until fixpoint.
pub fn merge_rotations(circuit: &Circuit) -> Circuit {
    run_to_fixpoint(circuit, true)
}

fn run_to_fixpoint(circuit: &Circuit, merge: bool) -> Circuit {
    let mut current = circuit.clone();
    for _ in 0..16 {
        let (next, changed) = sweep(&current, merge);
        current = next;
        if !changed {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjo_gatesim::gate::Gate::*;
    use qjo_gatesim::StateVector;

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        let n = a.num_qubits();
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.push(Ry(q, 0.3 + 0.2 * q as f64));
        }
        let mut sa = StateVector::zero(n);
        sa.apply_circuit(&prep);
        let mut sb = sa.clone();
        sa.apply_circuit(a);
        sb.apply_circuit(b);
        assert!(sa.fidelity(&sb) > 1.0 - 1e-9, "optimisation changed semantics");
    }

    #[test]
    fn adjacent_hadamards_cancel() {
        let mut c = Circuit::new(1);
        c.push(H(0));
        c.push(H(0));
        let o = cancel_pairs(&c);
        assert!(o.is_empty());
    }

    #[test]
    fn cancellation_chains_collapse_fully() {
        // H X X H on one qubit collapses to nothing across two sweeps.
        let mut c = Circuit::new(1);
        for g in [H(0), X(0), X(0), H(0)] {
            c.push(g);
        }
        let o = cancel_pairs(&c);
        assert!(o.is_empty(), "left {:?}", o.gates());
    }

    #[test]
    fn interposed_gates_block_cancellation() {
        let mut c = Circuit::new(1);
        c.push(H(0));
        c.push(Rz(0, 0.5));
        c.push(H(0));
        let o = cancel_pairs(&c);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn cx_pairs_cancel_only_with_same_orientation() {
        let mut same = Circuit::new(2);
        same.push(Cx(0, 1));
        same.push(Cx(0, 1));
        assert!(cancel_pairs(&same).is_empty());

        let mut flipped = Circuit::new(2);
        flipped.push(Cx(0, 1));
        flipped.push(Cx(1, 0));
        assert_eq!(cancel_pairs(&flipped).len(), 2);
    }

    #[test]
    fn cz_and_swap_cancel_regardless_of_order() {
        let mut c = Circuit::new(2);
        c.push(Cz(0, 1));
        c.push(Cz(1, 0));
        c.push(Swap(0, 1));
        c.push(Swap(1, 0));
        assert!(cancel_pairs(&c).is_empty());
    }

    #[test]
    fn rotations_fuse_and_drop_when_zero() {
        let mut c = Circuit::new(1);
        c.push(Rz(0, 0.3));
        c.push(Rz(0, 0.4));
        let o = merge_rotations(&c);
        assert_eq!(o.len(), 1);
        assert!(matches!(o.gates()[0], Rz(0, t) if (t - 0.7).abs() < 1e-12));

        let mut c = Circuit::new(1);
        c.push(Rx(0, 0.3));
        c.push(Rx(0, -0.3));
        assert!(merge_rotations(&c).is_empty());
    }

    #[test]
    fn rzz_fuses_across_operand_order() {
        let mut c = Circuit::new(2);
        c.push(Rzz(0, 1, 0.2));
        c.push(Rzz(1, 0, 0.3));
        let o = merge_rotations(&c);
        assert_eq!(o.len(), 1);
        assert!(matches!(o.gates()[0], Rzz(0, 1, t) if (t - 0.5).abs() < 1e-12));
    }

    #[test]
    fn one_qubit_gate_does_not_block_other_wire() {
        // Rz on qubit 0 between two CX(0,1) gates blocks CX cancellation,
        // but Rz on qubit 2 does not.
        let mut blocked = Circuit::new(3);
        blocked.push(Cx(0, 1));
        blocked.push(Rz(0, 0.5));
        blocked.push(Cx(0, 1));
        assert_eq!(cancel_pairs(&blocked).len(), 3);

        let mut free = Circuit::new(3);
        free.push(Cx(0, 1));
        free.push(Rz(2, 0.5));
        free.push(Cx(0, 1));
        assert_eq!(cancel_pairs(&free).len(), 1);
    }

    #[test]
    fn zero_angle_rotations_are_dropped() {
        let mut c = Circuit::new(1);
        c.push(Rz(0, 0.0));
        c.push(Rx(0, 2.0 * PI));
        assert!(merge_rotations(&c).is_empty());
        // cancel_pairs (conservative mode) leaves them alone.
        assert_eq!(cancel_pairs(&c).len(), 2);
    }

    #[test]
    fn optimisation_preserves_semantics_on_random_circuit() {
        let mut c = Circuit::new(3);
        for g in [
            H(0),
            H(0),
            Rz(1, 0.4),
            Rz(1, 0.3),
            Cx(0, 1),
            Cx(0, 1),
            Rzz(1, 2, 0.5),
            X(2),
            X(2),
            Rzz(1, 2, 0.25),
            H(1),
            Rx(0, 0.7),
            Rx(0, -0.2),
        ] {
            c.push(g);
        }
        assert_equivalent(&c, &cancel_pairs(&c));
        assert_equivalent(&c, &merge_rotations(&c));
        assert!(merge_rotations(&c).len() < c.len());
    }
}
