//! SWAP routing: making every two-qubit gate act on coupled qubits.
//!
//! When a logical two-qubit gate lands on physically distant qubits, SWAP
//! gates move the states together. Each SWAP later decomposes into three
//! entanglers, so routing quality is a first-order driver of the depths
//! reported in the paper's Figures 2 and 5.
//!
//! The router is a greedy shortest-path mover with a configurable lookahead
//! window: candidate SWAPs (edges incident to either operand) are scored by
//! the distance they save for the current gate plus exponentially-decayed
//! savings for upcoming two-qubit gates. Only candidates that strictly
//! reduce the current gate's distance are admissible, which guarantees
//! termination.

use qjo_gatesim::gate::{Gate, GateQubits};
use qjo_gatesim::Circuit;

use crate::error::TranspileError;
use crate::layout::Layout;
use crate::topology::Topology;

/// Routing configuration.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// How many upcoming two-qubit gates influence SWAP choice (0 = purely
    /// greedy on the current gate).
    pub lookahead: usize,
    /// Per-step decay of lookahead gate weights.
    pub decay: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { lookahead: 4, decay: 0.5 }
    }
}

/// The outcome of routing a circuit onto a topology.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// Gates on *physical* qubits; every two-qubit gate respects the
    /// coupling graph.
    pub circuit: Circuit,
    /// Final logical → physical mapping after all inserted SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Routes `circuit` onto `topology` starting from `initial_layout`.
///
/// Panics if the layout is invalid. Returns
/// [`TranspileError::DisconnectedQubits`] when a two-qubit gate's operands
/// sit in different connected components (SWAPs cannot bridge components,
/// so no routing exists).
pub fn route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: &Layout,
    config: RouterConfig,
) -> Result<RoutedCircuit, TranspileError> {
    assert_eq!(initial_layout.len(), circuit.num_qubits(), "layout size mismatch");
    assert!(crate::layout::validate_layout(initial_layout, topology), "invalid initial layout");

    let n_phys = topology.num_qubits();
    let mut layout = initial_layout.clone(); // logical -> physical
    let mut inverse = vec![usize::MAX; n_phys]; // physical -> logical
    for (l, &p) in layout.iter().enumerate() {
        inverse[p] = l;
    }

    // Pre-extract the positions of two-qubit gates for lookahead scoring.
    let two_qubit_ops: Vec<(usize, usize, usize)> = circuit
        .gates()
        .iter()
        .enumerate()
        .filter_map(|(i, g)| match g.qubits() {
            GateQubits::Two(a, b) => Some((i, a, b)),
            GateQubits::One(_) => None,
        })
        .collect();
    let mut next_2q_idx = 0usize;

    let mut out = Circuit::new(n_phys);
    let mut swaps_inserted = 0usize;

    for (gi, gate) in circuit.gates().iter().enumerate() {
        // Advance the lookahead cursor past this gate.
        while next_2q_idx < two_qubit_ops.len() && two_qubit_ops[next_2q_idx].0 <= gi {
            next_2q_idx += 1;
        }
        match gate.qubits() {
            GateQubits::One(_) => out.push(gate.map_qubits(|q| layout[q])),
            GateQubits::Two(a, b) => {
                loop {
                    let (pa, pb) = (layout[a], layout[b]);
                    let dist = topology
                        .distance(pa, pb)
                        .ok_or(TranspileError::DisconnectedQubits { a: pa, b: pb })?;
                    if dist <= 1 {
                        break;
                    }
                    let swap = choose_swap(
                        topology,
                        &layout,
                        pa,
                        pb,
                        &two_qubit_ops[next_2q_idx.min(two_qubit_ops.len())..],
                        config,
                    )?;
                    apply_swap(&mut layout, &mut inverse, swap);
                    out.push(Gate::Swap(swap.0, swap.1));
                    swaps_inserted += 1;
                }
                out.push(gate.map_qubits(|q| layout[q]));
            }
        }
    }

    Ok(RoutedCircuit { circuit: out, final_layout: layout, swaps_inserted })
}

/// Picks the admissible SWAP (strictly reducing the current gate's
/// distance) with the best lookahead score. Deterministic: ties break
/// toward the lexicographically smallest edge. Errors when `pa` and `pb`
/// are disconnected (no SWAP can ever make progress).
fn choose_swap(
    topology: &Topology,
    layout: &Layout,
    pa: usize,
    pb: usize,
    upcoming: &[(usize, usize, usize)],
    config: RouterConfig,
) -> Result<(usize, usize), TranspileError> {
    let current = topology
        .distance(pa, pb)
        .ok_or(TranspileError::DisconnectedQubits { a: pa, b: pb })? as f64;
    let mut best: Option<((usize, usize), f64)> = None;

    let mut consider = |edge: (usize, usize)| {
        let moved = |p: usize| -> usize {
            if p == edge.0 {
                edge.1
            } else if p == edge.1 {
                edge.0
            } else {
                p
            }
        };
        // A neighbour swap keeps both operands inside their components, so
        // this is always Some once `current` exists; guard anyway.
        let Some(new_dist) = topology.distance(moved(pa), moved(pb)) else {
            return;
        };
        let new_dist = new_dist as f64;
        if new_dist >= current {
            return; // inadmissible: no strict progress on the current gate
        }
        let mut score = new_dist;
        let mut weight = config.decay;
        for &(_, la, lb) in upcoming.iter().take(config.lookahead) {
            let (qa, qb) = (moved(layout[la]), moved(layout[lb]));
            if let Some(d) = topology.distance(qa, qb) {
                score += weight * d as f64;
            }
            weight *= config.decay;
        }
        match best {
            Some((e, s)) if s < score || (s == score && e <= edge) => {}
            _ => best = Some((edge, score)),
        }
    };

    for &endpoint in &[pa, pb] {
        for &nb in topology.neighbors(endpoint) {
            let edge = (endpoint.min(nb), endpoint.max(nb));
            consider(edge);
        }
    }
    // For a connected pair, a neighbour along the shortest path always
    // strictly reduces distance, so `best` is Some here.
    best.map(|(edge, _)| edge).ok_or(TranspileError::DisconnectedQubits { a: pa, b: pb })
}

fn apply_swap(layout: &mut Layout, inverse: &mut [usize], edge: (usize, usize)) {
    let (p, q) = edge;
    let (lp, lq) = (inverse[p], inverse[q]);
    if lp != usize::MAX {
        layout[lp] = q;
    }
    if lq != usize::MAX {
        layout[lq] = p;
    }
    inverse.swap(p, q);
}

/// Verifies that every two-qubit gate in `circuit` acts on coupled qubits.
pub fn respects_topology(circuit: &Circuit, topology: &Topology) -> bool {
    circuit.gates().iter().all(|g| match g.qubits() {
        GateQubits::One(_) => true,
        GateQubits::Two(a, b) => topology.has_edge(a, b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjo_gatesim::gate::Gate::*;
    use qjo_gatesim::StateVector;

    fn route_simple(circ: &Circuit, topo: &Topology) -> RoutedCircuit {
        let layout: Layout = (0..circ.num_qubits()).collect();
        route(circ, topo, &layout, RouterConfig::default()).expect("connected topology")
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.push(Cx(0, 1));
        c.push(Cx(1, 2));
        let r = route_simple(&c, &Topology::line(3));
        assert_eq!(r.swaps_inserted, 0);
        assert!(respects_topology(&r.circuit, &Topology::line(3)));
    }

    #[test]
    fn distant_gate_triggers_swaps() {
        let mut c = Circuit::new(4);
        c.push(Cx(0, 3));
        let topo = Topology::line(4);
        let r = route_simple(&c, &topo);
        assert!(r.swaps_inserted >= 2, "distance 3 needs ≥ 2 swaps");
        assert!(respects_topology(&r.circuit, &topo));
    }

    #[test]
    fn routed_circuit_is_semantically_equivalent() {
        // Compare the routed circuit (tracking the final layout) against
        // the logical circuit on a simulator.
        let mut c = Circuit::new(4);
        for g in [H(0), Cx(0, 3), Rz(3, 0.7), Cx(1, 2), Rzz(0, 2, 0.4), Cx(3, 0)] {
            c.push(g);
        }
        let topo = Topology::line(4);
        let r = route_simple(&c, &topo);
        assert!(respects_topology(&r.circuit, &topo));

        let mut logical = StateVector::zero(4);
        logical.apply_circuit(&c);

        let mut physical = StateVector::zero(4);
        physical.apply_circuit(&r.circuit);

        // The routed state holds logical qubit l on physical wire
        // final_layout[l]: relabel basis indices before comparing.
        let pl = logical.probabilities();
        let pp = physical.probabilities();
        let mut total_diff = 0.0;
        #[allow(clippy::needless_range_loop)] // z is a basis-state index
        for z in 0..16usize {
            let mut z_phys = 0usize;
            for l in 0..4 {
                if z >> l & 1 == 1 {
                    z_phys |= 1 << r.final_layout[l];
                }
            }
            total_diff += (pl[z] - pp[z_phys]).abs();
        }
        assert!(total_diff < 1e-9, "distributions diverged by {total_diff}");
    }

    #[test]
    fn final_layout_is_a_valid_permutation() {
        let mut c = Circuit::new(5);
        c.push(Cx(0, 4));
        c.push(Cx(1, 3));
        c.push(Cx(0, 2));
        let topo = Topology::ring(5);
        let r = route_simple(&c, &topo);
        let mut seen = [false; 5];
        for &p in &r.final_layout {
            assert!(!seen[p], "duplicate physical qubit {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn lookahead_zero_still_terminates_and_routes() {
        let mut c = Circuit::new(6);
        for a in 0..6 {
            for b in a + 1..6 {
                c.push(Rzz(a, b, 0.1));
            }
        }
        let topo = Topology::line(6);
        let layout: Layout = (0..6).collect();
        let r = route(&c, &topo, &layout, RouterConfig { lookahead: 0, decay: 0.5 }).unwrap();
        assert!(respects_topology(&r.circuit, &topo));
        assert!(r.swaps_inserted > 0);
    }

    #[test]
    fn lookahead_helps_on_repeated_pairs() {
        // Gate sequence alternating between two far pairs: lookahead should
        // use no more swaps than the blind greedy router.
        let mut c = Circuit::new(6);
        for _ in 0..3 {
            c.push(Cx(0, 5));
            c.push(Cx(1, 4));
        }
        let topo = Topology::line(6);
        let layout: Layout = (0..6).collect();
        let blind = route(&c, &topo, &layout, RouterConfig { lookahead: 0, decay: 0.5 }).unwrap();
        let ahead = route(&c, &topo, &layout, RouterConfig { lookahead: 6, decay: 0.6 }).unwrap();
        assert!(
            ahead.swaps_inserted <= blind.swaps_inserted,
            "lookahead {} vs blind {}",
            ahead.swaps_inserted,
            blind.swaps_inserted
        );
    }

    #[test]
    fn complete_graph_never_needs_swaps() {
        let mut c = Circuit::new(5);
        for a in 0..5 {
            for b in a + 1..5 {
                c.push(Cx(a, b));
            }
        }
        let r = route_simple(&c, &Topology::complete(5));
        assert_eq!(r.swaps_inserted, 0);
    }

    #[test]
    fn disconnected_operands_error_instead_of_panicking() {
        // Two 2-qubit islands: a gate across them has no routing.
        let topo = Topology::new(4, &[(0, 1), (2, 3)]);
        let mut c = Circuit::new(4);
        c.push(Cx(0, 2));
        let layout: Layout = (0..4).collect();
        let err = route(&c, &topo, &layout, RouterConfig::default()).unwrap_err();
        assert_eq!(err, crate::error::TranspileError::DisconnectedQubits { a: 0, b: 2 });
        // Gates inside one island still route fine on the same device.
        let mut ok = Circuit::new(4);
        ok.push(Cx(0, 1));
        ok.push(Cx(2, 3));
        assert!(route(&ok, &topo, &layout, RouterConfig::default()).is_ok());
    }

    #[test]
    fn respects_topology_detects_violations() {
        let mut c = Circuit::new(3);
        c.push(Cx(0, 2));
        assert!(!respects_topology(&c, &Topology::line(3)));
        let mut ok = Circuit::new(3);
        ok.push(Cx(0, 1));
        ok.push(H(2));
        assert!(respects_topology(&ok, &Topology::line(3)));
    }
}
