//! Density extrapolation of hardware topologies (paper Section 6.2).
//!
//! A topology with `n` qubits and `M` couplers is augmented with `m` extra
//! couplers drawn from the `N − M` missing pairs (`N = n(n−1)/2`), where the
//! *extended connectivity* `d = m / (N − M)` interpolates between the
//! baseline (`d = 0`) and a complete mesh (`d = 1`). Following the paper, we
//! favour physically plausible additions: candidate pairs are consumed in
//! order of increasing hop distance (`C_2` first, then `C_3`, ...), sampling
//! uniformly within each distance class.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::topology::Topology;

/// Augments `base` to extended connectivity `density ∈ [0, 1]`.
///
/// Deterministic for a fixed `seed`. `density = 0` returns the baseline
/// unchanged; `density = 1` returns the complete graph.
pub fn densify(base: &Topology, density: f64, seed: u64) -> Topology {
    assert!((0.0..=1.0).contains(&density), "density {density} outside [0, 1]");
    let n = base.num_qubits();
    let full = n.saturating_mul(n.saturating_sub(1)) / 2;
    let missing = full - base.num_edges();
    let to_add = (density * missing as f64).round() as usize;
    if to_add == 0 {
        return base.clone();
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut extra = Vec::with_capacity(to_add);
    let mut remaining = to_add;
    for mut class in base.missing_pairs_by_distance() {
        if remaining == 0 {
            break;
        }
        class.shuffle(&mut rng);
        let take = remaining.min(class.len());
        extra.extend_from_slice(&class[..take]);
        remaining -= take;
    }
    base.with_extra_edges(&extra)
}

/// The number of couplers a topology of `n` qubits has at extended
/// connectivity `d` over a baseline with `m_base` couplers.
pub fn edges_at_density(n: usize, m_base: usize, d: f64) -> usize {
    let full = n * (n - 1) / 2;
    m_base + (d * (full - m_base) as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heavy_hex::falcon_27;

    #[test]
    fn density_zero_is_identity() {
        let base = falcon_27();
        let same = densify(&base, 0.0, 1);
        assert_eq!(same.num_edges(), base.num_edges());
        assert_eq!(same.edges().collect::<Vec<_>>(), base.edges().collect::<Vec<_>>());
    }

    #[test]
    fn density_one_is_complete() {
        let base = Topology::line(8);
        let full = densify(&base, 1.0, 1);
        assert_eq!(full.num_edges(), 28);
        assert_eq!(full.density(), 1.0);
    }

    #[test]
    fn edge_count_matches_formula() {
        let base = falcon_27();
        for &d in &[0.05, 0.1, 0.25, 0.5, 0.75] {
            let t = densify(&base, d, 7);
            assert_eq!(t.num_edges(), edges_at_density(27, base.num_edges(), d), "density {d}");
        }
    }

    #[test]
    fn close_pairs_are_added_first() {
        // Line of 6: distance-2 pairs = 4. Adding exactly 4 edges at the
        // matching density must consume the whole distance-2 class before
        // touching any farther pair.
        let base = Topology::line(6);
        let missing = 15 - 5;
        let d = 4.0 / missing as f64;
        let t = densify(&base, d, 3);
        assert_eq!(t.num_edges(), 9);
        for (a, b) in t.edges() {
            assert!(base.distance(a, b).unwrap() <= 2, "({a},{b}) too far");
        }
    }

    #[test]
    fn densification_shrinks_diameter_monotonically() {
        let base = Topology::line(20);
        let mut last = base.diameter().unwrap();
        for &d in &[0.05, 0.1, 0.5, 1.0] {
            let t = densify(&base, d, 11);
            let dia = t.diameter().unwrap();
            assert!(dia <= last, "diameter grew at density {d}");
            last = dia;
        }
        assert_eq!(last, 1);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let base = falcon_27();
        let a = densify(&base, 0.1, 5);
        let b = densify(&base, 0.1, 5);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = densify(&base, 0.1, 6);
        // Same count, (almost surely) different sample.
        assert_eq!(a.num_edges(), c.num_edges());
        assert_ne!(
            a.edges().collect::<Vec<_>>(),
            c.edges().collect::<Vec<_>>(),
            "different seeds should sample different edges"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_density() {
        densify(&Topology::line(4), 1.5, 0);
    }
}
