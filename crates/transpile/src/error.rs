//! Transpilation errors.

use std::fmt;

/// Why a transpilation pipeline could not produce a hardware circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranspileError {
    /// A two-qubit gate's operands sit in different connected components
    /// of the device topology. SWAPs move states along couplers only, so
    /// no routing sequence can ever bring the pair together.
    DisconnectedQubits {
        /// Physical qubit holding the first operand.
        a: usize,
        /// Physical qubit holding the second operand.
        b: usize,
    },
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::DisconnectedQubits { a, b } => write!(
                f,
                "physical qubits {a} and {b} are in different connected components; \
                 no SWAP sequence can route a gate between them"
            ),
        }
    }
}

impl std::error::Error for TranspileError {}
