//! Decomposition of logical gates into native hardware gate sets.
//!
//! Each vendor exposes a small calibrated gate set; everything else must be
//! synthesised from it, which inflates gate count and depth — one of the
//! co-design levers studied in the paper (native vs. unrestricted gate sets
//! in Fig. 5).
//!
//! Single-qubit gates are decomposed through the ZXZXZ identity
//! `U ≅ RZ(φ+π) · √X · RZ(θ+π) · √X · RZ(λ)` (global phase ignored), where
//! `(θ, φ, λ)` are the U3 Euler angles extracted from the gate's unitary.
//! Two-qubit gates reduce to the vendor's entangler: CX (IBM), CZ (Rigetti),
//! or the Mølmer–Sørensen XX rotation (IonQ).

use qjo_gatesim::gate::Gate;
use qjo_gatesim::Circuit;

use std::f64::consts::{FRAC_PI_2, PI};

/// A vendor's native gate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeGateSet {
    /// IBM basis: `{CX, RZ, SX, X}`.
    Ibm,
    /// Rigetti basis: `{CZ, RZ, RX(±π/2), RX(π)}`.
    Rigetti,
    /// IonQ basis: `{RXX, RZ, RX(±π/2), RX(π)}` (GPi/GPi2 + MS).
    Ionq,
    /// Hypothetical QPU supporting every gate natively (paper's
    /// "unrestricted gate set" scenario).
    Unrestricted,
}

/// Angles equal up to 1e-9 modulo 2π.
fn angle_is(theta: f64, target: f64) -> bool {
    let two_pi = 2.0 * PI;
    let d = (theta - target).rem_euclid(two_pi);
    d < 1e-9 || two_pi - d < 1e-9
}

impl NativeGateSet {
    /// Whether `gate` can execute directly on this hardware.
    pub fn is_native(&self, gate: &Gate) -> bool {
        match self {
            NativeGateSet::Unrestricted => true,
            NativeGateSet::Ibm => {
                matches!(gate, Gate::Cx(..) | Gate::Rz(..) | Gate::Sx(_) | Gate::X(_))
            }
            NativeGateSet::Rigetti => match gate {
                Gate::Cz(..) | Gate::Rz(..) => true,
                Gate::Rx(_, t) => {
                    angle_is(*t, FRAC_PI_2) || angle_is(*t, -FRAC_PI_2) || angle_is(*t, PI)
                }
                _ => false,
            },
            NativeGateSet::Ionq => match gate {
                Gate::Rxx(..) | Gate::Rz(..) => true,
                Gate::Rx(_, t) => {
                    angle_is(*t, FRAC_PI_2) || angle_is(*t, -FRAC_PI_2) || angle_is(*t, PI)
                }
                _ => false,
            },
        }
    }

    /// Decomposes a single gate into an equivalent native sequence
    /// (application order). Native gates pass through unchanged.
    pub fn decompose_gate(&self, gate: &Gate) -> Vec<Gate> {
        if self.is_native(gate) {
            return vec![*gate];
        }
        match *gate {
            // --- two-qubit gates -------------------------------------
            Gate::Cx(c, t) => self.decompose_cx(c, t),
            Gate::Cz(a, b) => match self {
                // CZ = (I⊗H) CX (I⊗H)
                NativeGateSet::Ibm | NativeGateSet::Ionq => {
                    let mut seq = self.decompose_gate(&Gate::H(b));
                    seq.extend(self.decompose_cx(a, b));
                    seq.extend(self.decompose_gate(&Gate::H(b)));
                    seq
                }
                _ => unreachable!("CZ is native on Rigetti / unrestricted"),
            },
            Gate::Rzz(a, b, t) => match self {
                // RZZ(t) = (H⊗H) RXX(t) (H⊗H) — one entangler on IonQ.
                NativeGateSet::Ionq => {
                    let mut seq = self.decompose_gate(&Gate::H(a));
                    seq.extend(self.decompose_gate(&Gate::H(b)));
                    seq.push(Gate::Rxx(a, b, t));
                    seq.extend(self.decompose_gate(&Gate::H(a)));
                    seq.extend(self.decompose_gate(&Gate::H(b)));
                    seq
                }
                // RZZ(t) = CX · RZ_b(t) · CX.
                _ => {
                    let mut seq = self.decompose_cx(a, b);
                    seq.push(Gate::Rz(b, t));
                    seq.extend(self.decompose_cx(a, b));
                    seq
                }
            },
            Gate::Rxx(a, b, t) => {
                // RXX(t) = (H⊗H) RZZ(t) (H⊗H), with RZZ via CX.
                let mut seq = self.decompose_gate(&Gate::H(a));
                seq.extend(self.decompose_gate(&Gate::H(b)));
                seq.extend(self.decompose_cx(a, b));
                seq.push(Gate::Rz(b, t));
                seq.extend(self.decompose_cx(a, b));
                seq.extend(self.decompose_gate(&Gate::H(a)));
                seq.extend(self.decompose_gate(&Gate::H(b)));
                seq
            }
            Gate::Swap(a, b) => {
                let mut seq = self.decompose_cx(a, b);
                seq.extend(self.decompose_cx(b, a));
                seq.extend(self.decompose_cx(a, b));
                seq
            }
            // --- single-qubit gates ----------------------------------
            g => {
                let q = match g.qubits() {
                    qjo_gatesim::gate::GateQubits::One(q) => q,
                    _ => unreachable!("all 2q gates handled above"),
                };
                self.decompose_1q(q, &g.unitary_1q())
            }
        }
    }

    /// The vendor's CX synthesis.
    fn decompose_cx(&self, c: usize, t: usize) -> Vec<Gate> {
        match self {
            NativeGateSet::Ibm | NativeGateSet::Unrestricted => vec![Gate::Cx(c, t)],
            NativeGateSet::Rigetti => {
                // CX(c,t) = (I⊗H) CZ (I⊗H); H ≅ RZ(π/2) RX(π/2) RZ(π/2).
                let mut seq = self.decompose_1q(t, &Gate::H(t).unitary_1q());
                seq.push(Gate::Cz(c, t));
                seq.extend(self.decompose_1q(t, &Gate::H(t).unitary_1q()));
                seq
            }
            NativeGateSet::Ionq => {
                // CX(c,t) ≅ RY_c(π/2) · RXX(π/2) · RX_c(−π/2) · RX_t(−π/2)
                //           · RY_c(−π/2)  (matrix order; reversed below for
                // application order), with RY(θ) = RZ(π/2) RX(θ) RZ(−π/2).
                let ry = |q: usize, theta: f64| {
                    vec![Gate::Rz(q, -FRAC_PI_2), Gate::Rx(q, theta), Gate::Rz(q, FRAC_PI_2)]
                };
                let mut seq = ry(c, FRAC_PI_2);
                seq.push(Gate::Rxx(c, t, FRAC_PI_2));
                seq.push(Gate::Rx(c, -FRAC_PI_2));
                seq.push(Gate::Rx(t, -FRAC_PI_2));
                seq.extend(ry(c, -FRAC_PI_2));
                seq
            }
        }
    }

    /// ZXZXZ synthesis of an arbitrary single-qubit unitary, with the
    /// θ ≈ 0 shortcut (a single RZ) and zero-angle elision.
    fn decompose_1q(&self, q: usize, u: &[qjo_gatesim::C64; 4]) -> Vec<Gate> {
        let (theta, phi, lambda) = u3_angles(u);
        let sqrt_x = |out: &mut Vec<Gate>| match self {
            NativeGateSet::Ibm => out.push(Gate::Sx(q)),
            _ => out.push(Gate::Rx(q, FRAC_PI_2)),
        };
        let push_rz = |out: &mut Vec<Gate>, angle: f64| {
            if !angle_is(angle, 0.0) {
                out.push(Gate::Rz(q, angle));
            }
        };

        let mut seq = Vec::with_capacity(5);
        if angle_is(theta, 0.0) {
            push_rz(&mut seq, phi + lambda);
            return seq;
        }
        // Application order: RZ(λ), √X, RZ(θ+π), √X, RZ(φ+π).
        push_rz(&mut seq, lambda);
        sqrt_x(&mut seq);
        push_rz(&mut seq, theta + PI);
        sqrt_x(&mut seq);
        push_rz(&mut seq, phi + PI);
        seq
    }

    /// Decomposes a whole circuit.
    pub fn decompose_circuit(&self, circuit: &Circuit) -> Circuit {
        let mut out = Circuit::new(circuit.num_qubits());
        for g in circuit.gates() {
            for native in self.decompose_gate(g) {
                debug_assert!(self.is_native(&native), "{native:?} not native after decompose");
                out.push(native);
            }
        }
        out
    }
}

/// Extracts U3 Euler angles `(θ, φ, λ)` such that, up to global phase,
/// `U = [[cos(θ/2), −e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
pub fn u3_angles(u: &[qjo_gatesim::C64; 4]) -> (f64, f64, f64) {
    let c = u[0].norm();
    let s = u[2].norm();
    let theta = 2.0 * s.atan2(c);
    const EPS: f64 = 1e-12;
    if s < EPS {
        // Diagonal: only φ + λ is defined.
        let lambda = u[3].im.atan2(u[3].re) - u[0].im.atan2(u[0].re);
        return (0.0, 0.0, lambda);
    }
    if c < EPS {
        // Anti-diagonal (θ = π): only φ − λ matters; put it all into φ.
        let g = (-u[1]).im.atan2((-u[1]).re); // arg(-u01) with λ = 0
        let phi = u[2].im.atan2(u[2].re) - g;
        return (PI, phi, 0.0);
    }
    let g = u[0].im.atan2(u[0].re);
    let phi = u[2].im.atan2(u[2].re) - g;
    let m01 = -u[1];
    let lambda = m01.im.atan2(m01.re) - g;
    (theta, phi, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjo_gatesim::gate::Gate::*;
    use qjo_gatesim::StateVector;

    /// Full process equivalence up to one global phase: applies both gate
    /// sequences to every basis state and requires all output columns to
    /// differ by the *same* phase factor.
    fn equivalent(n: usize, original: &[Gate], replacement: &[Gate]) -> bool {
        use qjo_gatesim::C64;
        let dim = 1usize << n;
        let mut phase: Option<C64> = None;
        for basis in 0..dim {
            let mut start = StateVector::zero(n);
            // Prepare |basis> with X gates.
            for q in 0..n {
                if basis >> q & 1 == 1 {
                    start.apply(X(q));
                }
            }
            let mut a = start.clone();
            let mut b = start;
            for g in original {
                a.apply(*g);
            }
            for g in replacement {
                b.apply(*g);
            }
            for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
                if x.norm() < 1e-10 && y.norm() < 1e-10 {
                    continue;
                }
                if x.norm() < 1e-10 || y.norm() < 1e-10 {
                    return false;
                }
                let ratio = *x / *y;
                match phase {
                    None => phase = Some(ratio),
                    Some(p) => {
                        if (ratio - p).norm() > 1e-8 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn check_gate_on(set: NativeGateSet, gate: Gate, n: usize) {
        let seq = set.decompose_gate(&gate);
        for g in &seq {
            assert!(set.is_native(g), "{set:?}: {g:?} not native (from {gate:?})");
        }
        assert!(
            equivalent(n, &[gate], &seq),
            "{set:?}: decomposition of {gate:?} is not equivalent: {seq:?}"
        );
    }

    fn all_test_gates() -> Vec<(Gate, usize)> {
        vec![
            (H(0), 1),
            (X(0), 1),
            (Y(0), 1),
            (Z(0), 1),
            (S(0), 1),
            (Sdg(0), 1),
            (Sx(0), 1),
            (Rx(0, 0.7), 1),
            (Ry(0, -1.2), 1),
            (Rz(0, 2.3), 1),
            (Phase(0, 0.9), 1),
            (Cx(0, 1), 2),
            (Cx(1, 0), 2),
            (Cz(0, 1), 2),
            (Swap(0, 1), 2),
            (Rzz(0, 1, 0.8), 2),
            (Rxx(0, 1, -0.6), 2),
        ]
    }

    #[test]
    fn ibm_decompositions_are_equivalent_and_native() {
        for (g, n) in all_test_gates() {
            check_gate_on(NativeGateSet::Ibm, g, n);
        }
    }

    #[test]
    fn rigetti_decompositions_are_equivalent_and_native() {
        for (g, n) in all_test_gates() {
            check_gate_on(NativeGateSet::Rigetti, g, n);
        }
    }

    #[test]
    fn ionq_decompositions_are_equivalent_and_native() {
        for (g, n) in all_test_gates() {
            check_gate_on(NativeGateSet::Ionq, g, n);
        }
    }

    #[test]
    fn unrestricted_passes_everything_through() {
        for (g, _) in all_test_gates() {
            assert_eq!(NativeGateSet::Unrestricted.decompose_gate(&g), vec![g]);
        }
    }

    #[test]
    fn u3_angles_reconstruct_unitaries() {
        use qjo_gatesim::C64;
        let gates = [H(0), X(0), Y(0), S(0), Sx(0), Rx(0, 0.7), Ry(0, 1.9), Rz(0, -0.4)];
        for g in gates {
            let u = g.unitary_1q();
            let (theta, phi, lambda) = u3_angles(&u);
            let (st, ct) = ((theta / 2.0).sin(), (theta / 2.0).cos());
            let v = [
                C64::real(ct),
                -(C64::cis(lambda).scale(st)),
                C64::cis(phi).scale(st),
                C64::cis(phi + lambda).scale(ct),
            ];
            // Compare up to global phase: find the first big entry and align.
            let (pu, pv) = if u[0].norm() > 0.5 { (u[0], v[0]) } else { (u[2], v[2]) };
            let phase = pu / pv;
            for k in 0..4 {
                let diff = (u[k] - v[k] * phase).norm();
                assert!(diff < 1e-9, "{g:?} entry {k}: |Δ| = {diff}");
            }
        }
    }

    #[test]
    fn diagonal_gates_shortcut_to_single_rz() {
        let seq = NativeGateSet::Ibm.decompose_gate(&S(0));
        assert_eq!(seq.len(), 1);
        assert!(matches!(seq[0], Rz(0, _)));
        let seq = NativeGateSet::Rigetti.decompose_gate(&Phase(0, 0.3));
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn ionq_rzz_uses_a_single_entangler() {
        let seq = NativeGateSet::Ionq.decompose_gate(&Rzz(0, 1, 0.8));
        let entanglers = seq.iter().filter(|g| g.is_two_qubit()).count();
        assert_eq!(entanglers, 1, "IonQ should do RZZ with one MS gate: {seq:?}");
    }

    #[test]
    fn ibm_rzz_uses_two_cx() {
        let seq = NativeGateSet::Ibm.decompose_gate(&Rzz(0, 1, 0.8));
        assert_eq!(seq.iter().filter(|g| g.is_two_qubit()).count(), 2);
    }

    #[test]
    fn decompose_circuit_covers_whole_circuit() {
        let mut c = Circuit::new(3);
        for g in [H(0), H(1), H(2), Rzz(0, 1, 0.4), Rzz(1, 2, -0.3), Rx(0, 0.9)] {
            c.push(g);
        }
        for set in [NativeGateSet::Ibm, NativeGateSet::Rigetti, NativeGateSet::Ionq] {
            let d = set.decompose_circuit(&c);
            assert!(d.gates().iter().all(|g| set.is_native(g)));
            assert!(
                equivalent(3, c.gates(), d.gates()),
                "{set:?} full-circuit decomposition diverged"
            );
        }
    }

    #[test]
    fn native_gate_checks_handle_angle_wrapping() {
        // 5π/2 ≡ π/2 (mod 2π) is native RX on Rigetti.
        assert!(NativeGateSet::Rigetti.is_native(&Rx(0, 2.5 * PI)));
        assert!(NativeGateSet::Rigetti.is_native(&Rx(0, -FRAC_PI_2)));
        assert!(!NativeGateSet::Rigetti.is_native(&Rx(0, 0.3)));
    }
}
