//! Rigetti Aspen-style octagonal topologies.
//!
//! Rigetti's Aspen family arranges qubits in 8-qubit rings (octagons) tiled
//! on a grid; adjacent octagons are joined by two couplers. Aspen-M has 80
//! qubits (a 2 × 5 grid of octagons). The parametric generator also serves
//! the paper's size extrapolation.

use crate::topology::Topology;

/// A `rows × cols` grid of 8-qubit octagon rings.
///
/// Within octagon `(r, c)` the qubits `0..8` form a ring. Horizontally
/// adjacent octagons connect via two couplers between their facing sides
/// (positions 1,2 ↔ 6,5); vertically adjacent ones likewise (positions
/// 4,3? — see code; the exact positions mirror Aspen's two-coupler seams).
pub fn aspen(rows: usize, cols: usize) -> Topology {
    assert!(rows >= 1 && cols >= 1, "need at least one octagon");
    let cell = |r: usize, c: usize, k: usize| (r * cols + c) * 8 + k;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            // The octagon ring.
            for k in 0..8 {
                edges.push((cell(r, c, k), cell(r, c, (k + 1) % 8)));
            }
            // Two couplers to the right-hand neighbour.
            if c + 1 < cols {
                edges.push((cell(r, c, 1), cell(r, c + 1, 6)));
                edges.push((cell(r, c, 2), cell(r, c + 1, 5)));
            }
            // Two couplers to the neighbour below.
            if r + 1 < rows {
                edges.push((cell(r, c, 3), cell(r + 1, c, 0)));
                edges.push((cell(r, c, 4), cell(r + 1, c, 7)));
            }
        }
    }
    Topology::new(rows * cols * 8, &edges)
}

/// The 80-qubit Aspen-M layout (2 × 5 octagons).
pub fn aspen_m_80() -> Topology {
    aspen(2, 5)
}

/// Grows the Aspen family to at least `target` qubits, keeping the 2-row
/// shape of Aspen-M and widening the octagon columns.
pub fn aspen_at_least(target: usize) -> Topology {
    let mut cols = 1;
    loop {
        let t = aspen(2, cols);
        if t.num_qubits() >= target {
            return t;
        }
        cols += 1;
        assert!(cols < 10_000, "extrapolation target {target} is unreasonable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aspen_m_has_80_qubits() {
        let t = aspen_m_80();
        assert_eq!(t.num_qubits(), 80);
        assert!(t.is_connected());
    }

    #[test]
    fn degrees_match_octagonal_lattice() {
        let t = aspen_m_80();
        for q in 0..80 {
            let d = t.degree(q);
            assert!((2..=3).contains(&d), "qubit {q} degree {d}");
        }
        // Ring edges: 8 per octagon × 10; seams: 2 × (horizontal 2·4 + vertical 1·5).
        assert_eq!(t.num_edges(), 80 + 2 * (2 * 4 + 5));
    }

    #[test]
    fn single_octagon_is_a_ring() {
        let t = aspen(1, 1);
        assert_eq!(t.num_qubits(), 8);
        assert_eq!(t.num_edges(), 8);
        for q in 0..8 {
            assert_eq!(t.degree(q), 2);
        }
        assert_eq!(t.distance(0, 4), Some(4));
    }

    #[test]
    fn seam_couplers_link_adjacent_octagons() {
        let t = aspen(1, 2);
        // positions 1,2 of octagon 0 face 6,5 of octagon 1
        assert!(t.has_edge(1, 8 + 6));
        assert!(t.has_edge(2, 8 + 5));
        let t = aspen(2, 1);
        assert!(t.has_edge(3, 8));
        assert!(t.has_edge(4, 8 + 7));
    }

    #[test]
    fn extrapolation_reaches_targets() {
        for target in [80, 200, 400] {
            let t = aspen_at_least(target);
            assert!(t.num_qubits() >= target);
            assert!(t.is_connected());
            assert_eq!(t.num_qubits() % 16, 0, "two rows of octagons");
        }
    }
}
