//! Topology metrics for co-design comparisons.
//!
//! The paper's Section 6 reasons about coupling graphs through summary
//! quantities: how many couplers, how far apart qubits sit on average, how
//! the degree budget is spent. This module computes those figures so
//! hypothetical topologies can be compared numerically before paying for a
//! transpilation sweep.

use crate::topology::Topology;

/// Summary statistics of a coupling graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of couplers.
    pub num_edges: usize,
    /// Edge density relative to the complete graph.
    pub density: f64,
    /// Minimum / mean / maximum vertex degree.
    pub degree_min: usize,
    /// Mean degree.
    pub degree_mean: f64,
    /// Maximum degree.
    pub degree_max: usize,
    /// Mean pairwise hop distance (`None` when disconnected).
    pub mean_distance: Option<f64>,
    /// Graph diameter (`None` when disconnected).
    pub diameter: Option<usize>,
}

/// Computes the statistics. Mean distance costs a BFS per vertex — fine
/// for gate-model topologies (≤ a few hundred qubits); for annealer-scale
/// graphs prefer sampling or skip via [`stats_cheap`].
pub fn stats(topology: &Topology) -> TopologyStats {
    let n = topology.num_qubits();
    let degrees: Vec<usize> = (0..n).map(|q| topology.degree(q)).collect();
    let connected = topology.is_connected();
    let mean_distance = if n >= 2 && connected {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in a + 1..n {
                total += topology.distance(a, b).expect("connected") as u64;
                pairs += 1;
            }
        }
        Some(total as f64 / pairs as f64)
    } else {
        None
    };
    TopologyStats {
        num_qubits: n,
        num_edges: topology.num_edges(),
        density: topology.density(),
        degree_min: degrees.iter().copied().min().unwrap_or(0),
        degree_mean: if n == 0 { 0.0 } else { degrees.iter().sum::<usize>() as f64 / n as f64 },
        degree_max: degrees.iter().copied().max().unwrap_or(0),
        mean_distance,
        diameter: topology.diameter(),
    }
}

/// The O(V + E) subset of [`stats`] (no distance metrics) — safe for
/// annealer-scale graphs.
pub fn stats_cheap(topology: &Topology) -> TopologyStats {
    let n = topology.num_qubits();
    let degrees: Vec<usize> = (0..n).map(|q| topology.degree(q)).collect();
    TopologyStats {
        num_qubits: n,
        num_edges: topology.num_edges(),
        density: topology.density(),
        degree_min: degrees.iter().copied().min().unwrap_or(0),
        degree_mean: if n == 0 { 0.0 } else { degrees.iter().sum::<usize>() as f64 / n as f64 },
        degree_max: degrees.iter().copied().max().unwrap_or(0),
        mean_distance: None,
        diameter: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heavy_hex::falcon_27;

    #[test]
    fn complete_graph_stats() {
        let s = stats(&Topology::complete(6));
        assert_eq!(s.num_qubits, 6);
        assert_eq!(s.num_edges, 15);
        assert_eq!(s.density, 1.0);
        assert_eq!(s.degree_min, 5);
        assert_eq!(s.degree_max, 5);
        assert_eq!(s.mean_distance, Some(1.0));
        assert_eq!(s.diameter, Some(1));
    }

    #[test]
    fn line_graph_stats() {
        let s = stats(&Topology::line(5));
        assert_eq!(s.degree_min, 1);
        assert_eq!(s.degree_max, 2);
        assert!((s.degree_mean - 8.0 / 5.0).abs() < 1e-12);
        // Mean distance of P5: (4·1 + 3·2 + 2·3 + 1·4) / 10 = 2.0.
        assert_eq!(s.mean_distance, Some(2.0));
        assert_eq!(s.diameter, Some(4));
    }

    #[test]
    fn falcon_stats_match_known_shape() {
        let s = stats(&falcon_27());
        assert_eq!(s.num_qubits, 27);
        assert_eq!(s.num_edges, 28);
        assert_eq!(s.degree_max, 3);
        assert!(s.mean_distance.expect("connected") > 3.0, "heavy-hex is sparse");
    }

    #[test]
    fn densification_improves_the_metrics() {
        let base = falcon_27();
        let denser = crate::density::densify(&base, 0.25, 3);
        let a = stats(&base);
        let b = stats(&denser);
        assert!(b.num_edges > a.num_edges);
        assert!(b.mean_distance.unwrap() < a.mean_distance.unwrap());
        assert!(b.diameter.unwrap() <= a.diameter.unwrap());
    }

    #[test]
    fn disconnected_graphs_skip_distance_metrics() {
        let t = Topology::new(4, &[(0, 1), (2, 3)]);
        let s = stats(&t);
        assert_eq!(s.mean_distance, None);
        assert_eq!(s.diameter, None);
        assert_eq!(s.num_edges, 2);
    }

    #[test]
    fn cheap_stats_agree_on_the_cheap_fields() {
        let t = falcon_27();
        let full = stats(&t);
        let cheap = stats_cheap(&t);
        assert_eq!(cheap.num_qubits, full.num_qubits);
        assert_eq!(cheap.num_edges, full.num_edges);
        assert_eq!(cheap.degree_mean, full.degree_mean);
        assert_eq!(cheap.mean_distance, None);
    }

    #[test]
    fn empty_graph_is_handled() {
        let s = stats(&Topology::new(0, &[]));
        assert_eq!(s.num_qubits, 0);
        assert_eq!(s.degree_mean, 0.0);
    }
}
