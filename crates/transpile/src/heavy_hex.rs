//! IBM-style heavy-hex topologies.
//!
//! IBM's superconducting QPUs couple qubits in a *heavy-hexagon* lattice:
//! hexagonal cells whose edges carry an extra qubit, yielding degrees ≤ 3.
//! We provide the exact 27-qubit Falcon r5.11 coupling map (IBM Q Auckland)
//! and a parametric brick-lattice generator used both to approximate the
//! 127-qubit Eagle r1 (IBM Q Washington) and to *size-extrapolate* the
//! architecture for the co-design study (Section 6.2 of the paper).

use crate::topology::Topology;

/// The 27-qubit Falcon r5.11 coupling map (IBM Q Auckland and siblings).
pub fn falcon_27() -> Topology {
    const EDGES: &[(usize, usize)] = &[
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ];
    Topology::new(27, EDGES)
}

/// Parametric heavy-hex brick lattice: `rows` horizontal qubit rows of
/// `cols` qubits each, joined by bridge qubits every `spacing` columns with
/// the brick offset alternating by row parity.
///
/// Qubit numbering: row qubits first (row-major), then bridge qubits.
pub fn heavy_hex(rows: usize, cols: usize, spacing: usize) -> Topology {
    assert!(rows >= 1 && cols >= 2, "need at least one row of two qubits");
    assert!(spacing >= 2, "bridge spacing must be at least 2");
    let row_qubit = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    // Horizontal row chains.
    for r in 0..rows {
        for c in 1..cols {
            edges.push((row_qubit(r, c - 1), row_qubit(r, c)));
        }
    }
    // Bridges between consecutive rows.
    let mut next = rows * cols;
    for r in 0..rows.saturating_sub(1) {
        // Brick pattern: offset alternates by half the spacing per row.
        let offset = if r % 2 == 0 { 0 } else { spacing / 2 };
        let mut c = offset;
        while c < cols {
            let bridge = next;
            next += 1;
            edges.push((row_qubit(r, c), bridge));
            edges.push((bridge, row_qubit(r + 1, c)));
            c += spacing;
        }
    }
    Topology::new(next, &edges)
}

/// An Eagle-r1-sized heavy-hex lattice (127 qubits), standing in for IBM Q
/// Washington.
///
/// 7 rows × 15 columns with bridges every 4 columns gives 129 qubits; the
/// real Eagle trims the corner bridges, which we mirror by dropping the two
/// final bridge qubits — the result has exactly 127 qubits and the same
/// degree profile (≤ 3) and row structure as the production device.
pub fn eagle_127() -> Topology {
    let full = heavy_hex(7, 15, 4);
    debug_assert_eq!(full.num_qubits(), 129);
    let keep = 127;
    let edges: Vec<(usize, usize)> = full.edges().filter(|&(a, b)| a < keep && b < keep).collect();
    Topology::new(keep, &edges)
}

/// Grows the heavy-hex family until at least `target` qubits, keeping the
/// Eagle row shape (15 columns, bridges every 4). Returns the smallest
/// member with `num_qubits() >= target`.
pub fn heavy_hex_at_least(target: usize) -> Topology {
    let mut rows = 1;
    loop {
        let t = heavy_hex(rows, 15, 4);
        if t.num_qubits() >= target {
            return t;
        }
        rows += 1;
        assert!(rows < 10_000, "extrapolation target {target} is unreasonable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falcon_has_27_qubits_and_28_couplers() {
        let t = falcon_27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.num_edges(), 28);
        assert!(t.is_connected());
    }

    #[test]
    fn falcon_degrees_are_heavy_hex_bounded() {
        let t = falcon_27();
        for q in 0..27 {
            assert!(t.degree(q) <= 3, "qubit {q} has degree {}", t.degree(q));
        }
        // Heavy-hex hallmark: a mix of degree-1/2/3 vertices.
        let d3 = (0..27).filter(|&q| t.degree(q) == 3).count();
        assert!(d3 >= 6, "expected several degree-3 junctions, got {d3}");
    }

    #[test]
    fn eagle_has_127_qubits_and_is_connected() {
        let t = eagle_127();
        assert_eq!(t.num_qubits(), 127);
        assert!(t.is_connected());
        for q in 0..127 {
            assert!(t.degree(q) <= 3);
        }
    }

    #[test]
    fn eagle_is_sparser_than_falcon_in_relative_terms() {
        // Same family, larger instance -> lower density, larger diameter.
        let f = falcon_27();
        let e = eagle_127();
        assert!(e.density() < f.density());
        assert!(e.diameter().unwrap() > f.diameter().unwrap());
    }

    #[test]
    fn parametric_lattice_is_connected_and_bounded() {
        for rows in 1..6 {
            let t = heavy_hex(rows, 9, 4);
            assert!(t.is_connected(), "{rows} rows disconnected");
            for q in 0..t.num_qubits() {
                assert!(t.degree(q) <= 3);
            }
        }
    }

    #[test]
    fn bridge_qubits_have_degree_two() {
        let t = heavy_hex(3, 9, 4);
        for q in 3 * 9..t.num_qubits() {
            assert_eq!(t.degree(q), 2, "bridge {q}");
        }
    }

    #[test]
    fn extrapolation_reaches_targets_monotonically() {
        let sizes: Vec<usize> = [50, 127, 300, 500]
            .iter()
            .map(|&target| {
                let t = heavy_hex_at_least(target);
                assert!(t.num_qubits() >= target);
                assert!(t.is_connected());
                t.num_qubits()
            })
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn brick_offset_alternates_between_rows() {
        // With offset alternation, the bridges of consecutive row gaps must
        // attach at different columns.
        let t = heavy_hex(3, 9, 4);
        let row_qubits = 27;
        let gap0_cols: Vec<usize> = t
            .neighbors(row_qubits) // first bridge of gap 0 sits at column 0
            .iter()
            .map(|&q| q % 9)
            .collect();
        assert_eq!(gap0_cols, vec![0, 0]);
        // Gap 1 starts at spacing/2 = 2.
        let gap1_first = row_qubits + 3; // gap 0 has ceil(9/4)=3 bridges
        let gap1_cols: Vec<usize> = t.neighbors(gap1_first).iter().map(|&q| q % 9).collect();
        assert_eq!(gap1_cols, vec![2, 2]);
    }
}
