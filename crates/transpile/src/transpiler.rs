//! Transpiler pipelines: layout → routing → decomposition → optimisation.
//!
//! Two strategies model the two production compilers the paper evaluates:
//!
//! * [`Strategy::QiskitLike`] — Qiskit at optimisation level 1: moderate
//!   routing lookahead, then full peephole optimisation (pair cancellation
//!   and rotation fusion).
//! * [`Strategy::TketLike`] — a more conservative pipeline: short-sighted
//!   routing and pair cancellation only (no rotation fusion), which on
//!   sparse superconducting topologies produces the ≈2× depth overhead the
//!   paper reports, while remaining competitive on complete meshes.
//!
//! A `seed` perturbs the initial layout, reproducing the run-to-run spread
//! of heuristic compilation that Fig. 2 captures with 20 repetitions.

use qjo_gatesim::Circuit;

use crate::decompose::NativeGateSet;
use crate::error::TranspileError;
use crate::layout::{greedy_layout, Layout};
use crate::optimize::{cancel_pairs, merge_rotations};
use crate::routing::{route, RoutedCircuit, RouterConfig};
use crate::sabre::{sabre_layout, sabre_route, SabreConfig};
use crate::topology::Topology;

/// Which compilation pipeline to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Qiskit optimisation-level-1 analogue.
    QiskitLike,
    /// tket default-pass analogue.
    TketLike,
    /// SABRE (Li, Ding & Xie): DAG-based routing with look-ahead scoring
    /// and forward–backward layout refinement, plus full peephole
    /// optimisation — typically the strongest pipeline here.
    Sabre,
}

/// A configured transpiler.
#[derive(Debug, Clone, Copy)]
pub struct Transpiler {
    /// Pipeline flavour.
    pub strategy: Strategy,
    /// Seed for layout perturbation (vary to sample compiler variance).
    pub seed: u64,
}

/// Everything a transpilation run produces.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The hardware-executable circuit (physical qubit indices, native
    /// gates only, couplings respected).
    pub circuit: Circuit,
    /// Logical → physical mapping chosen before routing.
    pub initial_layout: Layout,
    /// Logical → physical mapping after all inserted SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates routing inserted (pre-decomposition).
    pub swaps_inserted: usize,
}

impl TranspileResult {
    /// Depth of the final circuit.
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }

    /// Two-qubit depth of the final circuit.
    pub fn two_qubit_depth(&self) -> usize {
        self.circuit.two_qubit_depth()
    }
}

impl Transpiler {
    /// Creates a transpiler.
    pub fn new(strategy: Strategy, seed: u64) -> Self {
        Transpiler { strategy, seed }
    }

    /// Compiles `circuit` for a device with the given coupling graph and
    /// native gate set.
    ///
    /// A routing failure injected at the `transpile.route` fault site
    /// (a device rejecting the mapped circuit) restarts the pipeline
    /// with a reseeded layout, bounded by an attempt budget.
    ///
    /// Returns [`TranspileError::DisconnectedQubits`] when the circuit
    /// needs a two-qubit gate between qubits the device cannot connect.
    pub fn transpile(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        gate_set: NativeGateSet,
    ) -> Result<TranspileResult, TranspileError> {
        let _span = qjo_obs::span!("transpile.run");
        qjo_obs::counter!("transpile.runs").incr();
        // Bounded pre-roll: each rejected route costs one attempt and
        // reseeds the layout stream; the final attempt always runs.
        const ROUTE_ATTEMPTS: u64 = 3;
        const ROUTE_RESEED_SALT: u64 = 0x726f_7574_655f_7273;
        let mut attempt: u64 = 0;
        while attempt + 1 < ROUTE_ATTEMPTS
            && qjo_resil::should_inject("transpile.route", self.seed, attempt)
        {
            qjo_obs::counter!("resil.transpile.route.retries").incr();
            attempt += 1;
        }
        let effective_seed = match attempt {
            0 => self.seed,
            _ => qjo_resil::stream_seed(self.seed ^ ROUTE_RESEED_SALT, attempt),
        };
        let perturbation = 2;
        let seed_layout = {
            let _pass = qjo_obs::span!("transpile.layout");
            greedy_layout(circuit, topology, effective_seed, perturbation)
        };
        let (initial_layout, routed) = match self.strategy {
            Strategy::QiskitLike | Strategy::TketLike => {
                let router = match self.strategy {
                    Strategy::QiskitLike => RouterConfig { lookahead: 4, decay: 0.5 },
                    _ => RouterConfig { lookahead: 1, decay: 0.5 },
                };
                let _pass = qjo_obs::span!("transpile.route");
                (seed_layout.clone(), route(circuit, topology, &seed_layout, router)?)
            }
            Strategy::Sabre => {
                let cfg = SabreConfig::default();
                let refined = {
                    let _pass = qjo_obs::span!("transpile.layout");
                    sabre_layout(circuit, topology, &seed_layout, &cfg)?
                };
                let _pass = qjo_obs::span!("transpile.route");
                let routed = sabre_route(circuit, topology, &refined, &cfg)?;
                (refined, routed)
            }
        };
        let RoutedCircuit { circuit: routed, final_layout, swaps_inserted } = routed;
        qjo_obs::counter!("transpile.swaps_inserted").add(swaps_inserted as u64);
        let decomposed = {
            let _pass = qjo_obs::span!("transpile.decompose");
            gate_set.decompose_circuit(&routed)
        };
        let optimised = {
            let _pass = qjo_obs::span!("transpile.optimize");
            match self.strategy {
                Strategy::QiskitLike | Strategy::Sabre => merge_rotations(&decomposed),
                Strategy::TketLike => cancel_pairs(&decomposed),
            }
        };
        // Pass-by-pass convergence series (stride 1: the step is a pass
        // index, not an iteration count): depth after input / routing /
        // decomposition / optimisation, plus the routing swap count.
        // `depth()` walks the whole gate list, so gate on an active
        // recorder before computing anything.
        let depth_curve = qjo_obs::convergence::series_with_stride("transpile", "depth", 1);
        if depth_curve.is_active() {
            for (pass, depth) in
                [circuit.depth(), routed.depth(), decomposed.depth(), optimised.depth()]
                    .into_iter()
                    .enumerate()
            {
                depth_curve.record(pass as u64, depth as f64);
            }
            qjo_obs::convergence::series_with_stride("transpile", "swaps", 1)
                .record(1, swaps_inserted as f64);
        }
        Ok(TranspileResult { circuit: optimised, initial_layout, final_layout, swaps_inserted })
    }

    /// Transpiles `repetitions` times with seeds `seed..seed+repetitions`,
    /// returning the depth of each run — the distribution Fig. 2 plots.
    pub fn depth_distribution(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        gate_set: NativeGateSet,
        repetitions: usize,
    ) -> Result<Vec<usize>, TranspileError> {
        (0..repetitions)
            .map(|r| {
                Transpiler { strategy: self.strategy, seed: self.seed + r as u64 }
                    .transpile(circuit, topology, gate_set)
                    .map(|result| result.depth())
            })
            .collect()
    }
}

/// Summary statistics over a depth distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthStats {
    /// Smallest observed depth.
    pub min: usize,
    /// Median depth.
    pub median: usize,
    /// Largest observed depth.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
}

impl DepthStats {
    /// Computes stats from raw samples (panics on empty input).
    pub fn from_samples(samples: &[usize]) -> DepthStats {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        DepthStats {
            min: sorted[0],
            median: sorted[sorted.len() / 2],
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<usize>() as f64 / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heavy_hex::falcon_27;
    use crate::routing::respects_topology;
    use qjo_qubo::Qubo;

    fn dense_qaoa_circuit(n: usize) -> Circuit {
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, 1.0);
            for j in i + 1..n {
                q.add_quadratic(i, j, 0.5 + (i + j) as f64 * 0.1);
            }
        }
        let params = qjo_gatesim::QaoaParams { gammas: vec![0.4], betas: vec![0.3] };
        qjo_gatesim::qaoa_circuit(&q.to_ising(), &params)
    }

    #[test]
    fn output_respects_topology_and_gate_set() {
        let c = dense_qaoa_circuit(8);
        let topo = falcon_27();
        for strategy in [Strategy::QiskitLike, Strategy::TketLike] {
            for set in [NativeGateSet::Ibm, NativeGateSet::Unrestricted] {
                let r = Transpiler::new(strategy, 0).transpile(&c, &topo, set).unwrap();
                assert!(respects_topology(&r.circuit, &topo), "{strategy:?}/{set:?}");
                assert!(
                    r.circuit.gates().iter().all(|g| set.is_native(g)),
                    "{strategy:?}/{set:?} emitted non-native gates"
                );
            }
        }
    }

    #[test]
    fn tket_like_is_deeper_on_sparse_topology() {
        let c = dense_qaoa_circuit(10);
        let topo = falcon_27();
        let qk = Transpiler::new(Strategy::QiskitLike, 0)
            .transpile(&c, &topo, NativeGateSet::Ibm)
            .unwrap()
            .depth();
        let tk = Transpiler::new(Strategy::TketLike, 0)
            .transpile(&c, &topo, NativeGateSet::Ibm)
            .unwrap()
            .depth();
        assert!(tk > qk, "tket-like {tk} should exceed qiskit-like {qk}");
    }

    #[test]
    fn strategies_are_comparable_on_complete_mesh() {
        let c = dense_qaoa_circuit(8);
        let topo = Topology::complete(8);
        let qk = Transpiler::new(Strategy::QiskitLike, 0)
            .transpile(&c, &topo, NativeGateSet::Ionq)
            .unwrap()
            .depth();
        let tk = Transpiler::new(Strategy::TketLike, 0)
            .transpile(&c, &topo, NativeGateSet::Ionq)
            .unwrap()
            .depth();
        let ratio = tk as f64 / qk as f64;
        assert!(ratio < 1.8, "mesh ratio {ratio} too large (qk={qk}, tk={tk})");
    }

    #[test]
    fn unrestricted_gates_give_shallower_circuits() {
        let c = dense_qaoa_circuit(10);
        let topo = falcon_27();
        let t = Transpiler::new(Strategy::QiskitLike, 0);
        let native = t.transpile(&c, &topo, NativeGateSet::Ibm).unwrap().depth();
        let unrestricted = t.transpile(&c, &topo, NativeGateSet::Unrestricted).unwrap().depth();
        assert!(unrestricted < native, "unrestricted {unrestricted} should beat native {native}");
    }

    #[test]
    fn depth_distribution_shows_seed_variance() {
        let c = dense_qaoa_circuit(9);
        let topo = falcon_27();
        let depths = Transpiler::new(Strategy::QiskitLike, 0)
            .depth_distribution(&c, &topo, NativeGateSet::Ibm, 10)
            .unwrap();
        assert_eq!(depths.len(), 10);
        let stats = DepthStats::from_samples(&depths);
        assert!(stats.max >= stats.median && stats.median >= stats.min);
        assert!(stats.max > stats.min, "heuristic should show spread: {depths:?}");
    }

    #[test]
    fn same_seed_reproduces_identical_output() {
        let c = dense_qaoa_circuit(7);
        let topo = falcon_27();
        let t = Transpiler::new(Strategy::QiskitLike, 42);
        let a = t.transpile(&c, &topo, NativeGateSet::Ibm).unwrap();
        let b = t.transpile(&c, &topo, NativeGateSet::Ibm).unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.initial_layout, b.initial_layout);
    }

    #[test]
    fn sabre_pipeline_is_sound_and_competitive() {
        let c = dense_qaoa_circuit(10);
        let topo = falcon_27();
        let sabre =
            Transpiler::new(Strategy::Sabre, 0).transpile(&c, &topo, NativeGateSet::Ibm).unwrap();
        assert!(respects_topology(&sabre.circuit, &topo));
        assert!(sabre.circuit.gates().iter().all(|g| NativeGateSet::Ibm.is_native(g)));
        let qk = Transpiler::new(Strategy::QiskitLike, 0)
            .transpile(&c, &topo, NativeGateSet::Ibm)
            .unwrap()
            .depth();
        // SABRE should be in the same league or better than the greedy
        // pipeline (allow slack: heuristics vary per instance).
        assert!(
            (sabre.depth() as f64) < 1.3 * qk as f64,
            "sabre {} vs qiskit-like {qk}",
            sabre.depth()
        );
    }

    #[test]
    fn convergence_recorder_captures_pass_depths() {
        let c = dense_qaoa_circuit(6);
        let topo = falcon_27();
        qjo_obs::convergence::start(4);
        let r = Transpiler::new(Strategy::QiskitLike, 0)
            .transpile(&c, &topo, NativeGateSet::Ibm)
            .unwrap();
        let drained = qjo_obs::convergence::drain_csv();
        let csv =
            &drained.iter().find(|(g, _)| g == "transpile").expect("transpile group recorded").1;
        // Stride 1 keeps every pass even though the default stride is 4.
        // Concurrent tests may also transpile while the recorder is live,
        // so assert over all recorded instances rather than instance 0.
        let steps: std::collections::BTreeSet<u64> = csv
            .lines()
            .filter(|l| l.contains(",depth,"))
            .map(|l| l.split(',').nth(4).unwrap().parse().unwrap())
            .collect();
        assert_eq!(steps, (0..4).collect(), "stride 1 keeps every pass: {csv}");
        assert!(
            csv.lines()
                .any(|l| l.contains(",swaps,") && l.ends_with(&format!(",1,{}", r.swaps_inserted))),
            "{csv}"
        );
    }

    #[test]
    fn disconnected_device_errors_for_every_strategy() {
        // A two-island device cannot host a circuit that entangles across
        // the islands; every pipeline must surface TranspileError instead
        // of panicking (greedy) or looping forever (SABRE).
        let topo = Topology::new(4, &[(0, 1), (2, 3)]);
        let mut c = Circuit::new(4);
        c.push(qjo_gatesim::gate::Gate::Cx(0, 1));
        c.push(qjo_gatesim::gate::Gate::Cx(1, 2));
        for strategy in [Strategy::QiskitLike, Strategy::TketLike, Strategy::Sabre] {
            let err = Transpiler::new(strategy, 0)
                .transpile(&c, &topo, NativeGateSet::Unrestricted)
                .unwrap_err();
            assert!(
                matches!(err, TranspileError::DisconnectedQubits { .. }),
                "{strategy:?}: {err:?}"
            );
            assert!(err.to_string().contains("different connected components"));
        }
        assert!(Transpiler::new(Strategy::QiskitLike, 0)
            .depth_distribution(&c, &topo, NativeGateSet::Unrestricted, 3)
            .is_err());
    }

    #[test]
    fn depth_stats_computation() {
        let s = DepthStats::from_samples(&[5, 1, 3]);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 3);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }
}
