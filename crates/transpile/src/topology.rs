//! Hardware connectivity graphs.
//!
//! A [`Topology`] is the undirected coupling graph of a QPU: vertices are
//! physical qubits, edges are pairs that can interact directly. Routing
//! inserts SWAPs along shortest paths, so all-pairs distances are
//! precomputed (BFS from every vertex) when the topology is frozen.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Above this size the all-pairs distance matrix is skipped and distance
/// queries go through a lazy per-source row cache instead (annealer graphs
/// have thousands of qubits and are consumed by the embedder, which runs
/// its own searches).
const EAGER_DISTANCE_LIMIT: usize = 2048;

/// An undirected coupling graph over `num_qubits` physical qubits.
#[derive(Debug)]
pub struct Topology {
    num_qubits: usize,
    edges: BTreeSet<(u32, u32)>,
    adjacency: Vec<Vec<usize>>,
    /// All-pairs hop distances (`u16::MAX` marks disconnected pairs);
    /// `None` for graphs above `EAGER_DISTANCE_LIMIT`.
    distances: Option<Vec<Vec<u16>>>,
    /// Lazily filled single-source BFS rows for graphs above the eager
    /// cutoff: routing asks for distances from the same few sources over
    /// and over (one per SWAP candidate endpoint), so each row is computed
    /// once and reused instead of re-running BFS per query. The topology
    /// is immutable after construction, so entries never go stale.
    row_cache: Mutex<BTreeMap<usize, Arc<Vec<u16>>>>,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        Topology {
            num_qubits: self.num_qubits,
            edges: self.edges.clone(),
            adjacency: self.adjacency.clone(),
            distances: self.distances.clone(),
            row_cache: Mutex::new(self.row_cache.lock().expect("row cache poisoned").clone()),
        }
    }
}

/// Equality is over the graph itself (vertex count + edge set); derived
/// caches never disagree for equal graphs and the lazy row cache is just
/// a warm-up detail.
impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits == other.num_qubits && self.edges == other.edges
    }
}

impl Eq for Topology {}

impl Topology {
    /// Builds a topology from an edge list (self-loops are rejected,
    /// duplicates collapse).
    pub fn new(num_qubits: usize, edge_list: &[(usize, usize)]) -> Self {
        let mut edges = BTreeSet::new();
        for &(a, b) in edge_list {
            assert!(a < num_qubits && b < num_qubits, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop at {a}");
            edges.insert((a.min(b) as u32, a.max(b) as u32));
        }
        let mut t = Topology {
            num_qubits,
            edges,
            adjacency: Vec::new(),
            distances: None,
            row_cache: Mutex::new(BTreeMap::new()),
        };
        t.rebuild_caches();
        t
    }

    fn rebuild_caches(&mut self) {
        let n = self.num_qubits;
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adjacency[a as usize].push(b as usize);
            adjacency[b as usize].push(a as usize);
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        self.adjacency = adjacency;
        self.distances =
            (n <= EAGER_DISTANCE_LIMIT).then(|| (0..n).map(|start| self.bfs_row(start)).collect());
    }

    /// Single-source BFS distances from `start`.
    fn bfs_row(&self, start: usize) -> Vec<u16> {
        let mut row = vec![u16::MAX; self.num_qubits];
        row[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let d = row[v];
            for &w in &self.adjacency[v] {
                if row[w] == u16::MAX {
                    row[w] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        row
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of couplers.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether qubits `a` and `b` are directly coupled.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        self.edges.contains(&(a.min(b) as u32, a.max(b) as u32))
    }

    /// Iterates edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().map(|&(a, b)| (a as usize, b as usize))
    }

    /// Direct neighbours of `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adjacency[q].len()
    }

    /// The BFS distance row from `a`, computed at most once per source.
    fn cached_row(&self, a: usize) -> Arc<Vec<u16>> {
        let mut cache = self.row_cache.lock().expect("row cache poisoned");
        Arc::clone(cache.entry(a).or_insert_with(|| Arc::new(self.bfs_row(a))))
    }

    /// Number of BFS rows currently held by the lazy cache (0 whenever the
    /// eager all-pairs matrix exists).
    pub fn cached_distance_rows(&self) -> usize {
        self.row_cache.lock().expect("row cache poisoned").len()
    }

    /// Hop distance between two qubits (`None` when disconnected).
    ///
    /// O(1) for topologies small enough to hold the all-pairs matrix;
    /// above `EAGER_DISTANCE_LIMIT` the source's BFS row is computed on
    /// first use and cached.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        let d = match &self.distances {
            Some(m) => m[a][b],
            None => self.cached_row(a)[b],
        };
        (d != u16::MAX).then_some(d as usize)
    }

    /// True when every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        match &self.distances {
            Some(m) => m[0].iter().all(|&d| d != u16::MAX),
            None => self.bfs_row(0).iter().all(|&d| d != u16::MAX),
        }
    }

    /// Graph diameter (`None` when disconnected or empty).
    ///
    /// For large, uncached topologies this runs a BFS per vertex.
    pub fn diameter(&self) -> Option<usize> {
        if self.num_qubits == 0 || !self.is_connected() {
            return None;
        }
        let row_max = |row: &[u16]| row.iter().map(|&d| d as usize).max().unwrap_or(0);
        match &self.distances {
            Some(m) => m.iter().map(|r| row_max(r)).max(),
            None => (0..self.num_qubits).map(|s| row_max(&self.bfs_row(s))).max(),
        }
    }

    /// Edge density `M / (n(n−1)/2)` relative to the complete graph.
    pub fn density(&self) -> f64 {
        if self.num_qubits < 2 {
            return 1.0;
        }
        let full = self.num_qubits * (self.num_qubits - 1) / 2;
        self.edges.len() as f64 / full as f64
    }

    /// One shortest path from `a` to `b` (inclusive); `None` when
    /// disconnected. Deterministic: prefers lower-index neighbours.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let row_owned;
        let row: &[u16] = match &self.distances {
            Some(m) => &m[a],
            None => {
                row_owned = self.cached_row(a);
                &row_owned
            }
        };
        if row[b] == u16::MAX {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            let d = row[cur] as usize;
            let prev = *self.adjacency[cur]
                .iter()
                .find(|&&w| (row[w] as usize) + 1 == d)
                .expect("BFS predecessor must exist");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    /// Returns a copy with extra edges added (used by density extrapolation).
    pub fn with_extra_edges(&self, extra: &[(usize, usize)]) -> Topology {
        let mut edges: Vec<(usize, usize)> = self.edges().collect();
        edges.extend_from_slice(extra);
        Topology::new(self.num_qubits, &edges)
    }

    /// Missing (uncoupled) pairs grouped by current hop distance:
    /// `result[d]` holds pairs at distance `d + 2` (distance-1 pairs are the
    /// existing edges). Disconnected pairs are appended as a final group.
    pub fn missing_pairs_by_distance(&self) -> Vec<Vec<(usize, usize)>> {
        let mut groups: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut disconnected: Vec<(usize, usize)> = Vec::new();
        for a in 0..self.num_qubits {
            for b in a + 1..self.num_qubits {
                match self.distance(a, b) {
                    Some(0) | Some(1) => {}
                    Some(d) => {
                        let idx = d - 2;
                        if groups.len() <= idx {
                            groups.resize_with(idx + 1, Vec::new);
                        }
                        groups[idx].push((a, b));
                    }
                    None => disconnected.push((a, b)),
                }
            }
        }
        if !disconnected.is_empty() {
            groups.push(disconnected);
        }
        groups
    }

    // ---- stock shapes -------------------------------------------------

    /// The complete graph `K_n` (IonQ-style all-to-all connectivity).
    pub fn complete(n: usize) -> Topology {
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Topology::new(n, &edges)
    }

    /// A path (line) graph.
    pub fn line(n: usize) -> Topology {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::new(n, &edges)
    }

    /// A ring (cycle) graph.
    pub fn ring(n: usize) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 vertices");
        let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        edges.push((n - 1, 0));
        Topology::new(n, &edges)
    }

    /// A `w × h` rectangular grid.
    pub fn grid(w: usize, h: usize) -> Topology {
        let idx = |x: usize, y: usize| y * w + x;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        Topology::new(w * h, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances_and_paths() {
        let t = Topology::line(5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.distance(0, 4), Some(4));
        assert_eq!(t.distance(2, 2), Some(0));
        assert_eq!(t.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn complete_graph_is_distance_one_everywhere() {
        let t = Topology::complete(6);
        assert_eq!(t.num_edges(), 15);
        assert_eq!(t.density(), 1.0);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(t.distance(a, b), Some(1));
                    assert!(t.has_edge(a, b));
                }
            }
        }
        assert!(t.missing_pairs_by_distance().is_empty());
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(3, 2);
        assert_eq!(t.num_qubits(), 6);
        assert_eq!(t.num_edges(), 7);
        assert_eq!(t.distance(0, 5), Some(3)); // (0,0) -> (2,1)
        assert_eq!(t.degree(1), 3); // middle of top row
    }

    #[test]
    fn ring_wraps_around() {
        let t = Topology::ring(6);
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.distance(0, 5), Some(1));
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn disconnected_graph_reports_none() {
        let t = Topology::new(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.distance(0, 2), None);
        assert_eq!(t.diameter(), None);
        assert_eq!(t.shortest_path(1, 3), None);
        // Disconnected pairs land in the final group.
        let groups = t.missing_pairs_by_distance();
        assert_eq!(groups.last().unwrap().len(), 4);
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let t = Topology::new(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(t.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Topology::new(2, &[(1, 1)]);
    }

    #[test]
    fn missing_pairs_grouped_by_distance() {
        let t = Topology::line(4); // distances: 0-2:2, 0-3:3, 1-3:2
        let groups = t.missing_pairs_by_distance();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![(0, 2), (1, 3)]); // distance 2
        assert_eq!(groups[1], vec![(0, 3)]); // distance 3
    }

    #[test]
    fn with_extra_edges_shortens_distances() {
        let t = Topology::line(5);
        let t2 = t.with_extra_edges(&[(0, 4)]);
        assert_eq!(t2.distance(0, 4), Some(1));
        assert_eq!(t2.num_edges(), 5);
        // Original untouched.
        assert_eq!(t.distance(0, 4), Some(4));
    }

    #[test]
    fn shortest_path_is_deterministic() {
        let t = Topology::grid(3, 3);
        let p1 = t.shortest_path(0, 8).unwrap();
        let p2 = t.shortest_path(0, 8).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 5); // 4 hops
                                 // Consecutive path vertices are actually coupled.
        for w in p1.windows(2) {
            assert!(t.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn density_of_line_matches_formula() {
        let t = Topology::line(5);
        assert!((t.density() - 4.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn large_topology_caches_bfs_rows_lazily() {
        // 2100 qubits is above EAGER_DISTANCE_LIMIT: no all-pairs matrix,
        // but repeated queries from the same source reuse one BFS row.
        let t = Topology::line(2100);
        assert_eq!(t.cached_distance_rows(), 0);
        assert_eq!(t.distance(7, 2050), Some(2043));
        assert_eq!(t.cached_distance_rows(), 1);
        for b in [0, 6, 8, 2099] {
            assert_eq!(t.distance(7, b), Some(7usize.abs_diff(b)));
        }
        assert_eq!(t.cached_distance_rows(), 1, "same source must reuse its row");
        assert_eq!(t.distance(9, 7), Some(2));
        assert_eq!(t.cached_distance_rows(), 2);
        // shortest_path shares the cache too.
        assert_eq!(t.shortest_path(9, 12), Some(vec![9, 10, 11, 12]));
        assert_eq!(t.cached_distance_rows(), 2);
    }

    #[test]
    fn small_topology_never_populates_the_row_cache() {
        let t = Topology::grid(4, 4);
        assert_eq!(t.distance(0, 15), Some(6));
        assert_eq!(t.cached_distance_rows(), 0, "eager matrix answers directly");
    }

    #[test]
    fn clone_and_equality_ignore_cache_state() {
        let a = Topology::line(2100);
        let b = a.clone();
        assert_eq!(a, b);
        a.distance(0, 1); // warms a's cache only
        assert_eq!(a, b, "cache warmth must not affect equality");
        let c = Topology::line(2100);
        assert_eq!(a, c);
        assert_ne!(a, Topology::ring(2100));
    }
}
