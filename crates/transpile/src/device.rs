//! Device presets: topology + native gate set + calibration data.

use qjo_gatesim::NoiseModel;

use crate::aspen::{aspen_at_least, aspen_m_80};
use crate::decompose::NativeGateSet;
use crate::heavy_hex::{eagle_127, falcon_27, heavy_hex_at_least};
use crate::topology::Topology;

/// A gate-based QPU description.
#[derive(Debug, Clone)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Coupling graph.
    pub topology: Topology,
    /// Native gate set.
    pub gate_set: NativeGateSet,
    /// Calibration / noise data.
    pub noise: NoiseModel,
}

impl Device {
    /// IBM Q Auckland: 27 qubits, Falcon r5.11.
    pub fn ibm_auckland() -> Device {
        Device {
            name: "ibm_auckland".into(),
            topology: falcon_27(),
            gate_set: NativeGateSet::Ibm,
            noise: NoiseModel::ibm_auckland(),
        }
    }

    /// IBM Q Washington: 127 qubits, Eagle r1.
    pub fn ibm_washington() -> Device {
        Device {
            name: "ibm_washington".into(),
            topology: eagle_127(),
            gate_set: NativeGateSet::Ibm,
            noise: NoiseModel::ibm_washington(),
        }
    }

    /// Rigetti Aspen-M: 80 qubits, octagonal lattice.
    pub fn rigetti_aspen_m() -> Device {
        Device {
            name: "rigetti_aspen_m".into(),
            topology: aspen_m_80(),
            gate_set: NativeGateSet::Rigetti,
            noise: NoiseModel {
                t1: 30e-6,
                t2: 20e-6,
                time_1q: 40e-9,
                time_2q: 240e-9,
                p_depol_1q: 8e-4,
                p_depol_2q: 2e-2,
                readout_error: 3e-2,
            },
        }
    }

    /// IonQ trapped-ion device with `n` fully-connected qubits.
    ///
    /// Trapped ions: excellent coherence, slow gates, all-to-all coupling.
    pub fn ionq(n: usize) -> Device {
        Device {
            name: format!("ionq_{n}"),
            topology: Topology::complete(n),
            gate_set: NativeGateSet::Ionq,
            noise: NoiseModel {
                t1: 10.0, // ~seconds-scale T1
                t2: 1.0,  // ~second-scale T2
                time_1q: 10e-6,
                time_2q: 200e-6,
                p_depol_1q: 5e-4,
                p_depol_2q: 4e-3,
                readout_error: 5e-3,
            },
        }
    }

    /// Size-extrapolated IBM heavy-hex device with at least `n` qubits
    /// (paper Section 6.2, "size extrapolation").
    pub fn ibm_extrapolated(n: usize) -> Device {
        Device {
            name: format!("ibm_hh_{n}"),
            topology: heavy_hex_at_least(n),
            gate_set: NativeGateSet::Ibm,
            noise: NoiseModel::ibm_washington(),
        }
    }

    /// Size-extrapolated Rigetti octagonal device with at least `n` qubits.
    pub fn rigetti_extrapolated(n: usize) -> Device {
        Device {
            name: format!("rigetti_oct_{n}"),
            topology: aspen_at_least(n),
            gate_set: NativeGateSet::Rigetti,
            noise: Device::rigetti_aspen_m().noise,
        }
    }

    /// Replaces the topology with a density-extrapolated variant
    /// (paper Section 6.2, "density extrapolation").
    pub fn with_density(&self, density: f64, seed: u64) -> Device {
        Device {
            name: format!("{}@d{density:.2}", self.name),
            topology: crate::density::densify(&self.topology, density, seed),
            gate_set: self.gate_set,
            noise: self.noise,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_advertised_sizes() {
        assert_eq!(Device::ibm_auckland().num_qubits(), 27);
        assert_eq!(Device::ibm_washington().num_qubits(), 127);
        assert_eq!(Device::rigetti_aspen_m().num_qubits(), 80);
        assert_eq!(Device::ionq(25).num_qubits(), 25);
    }

    #[test]
    fn gate_sets_match_vendors() {
        assert_eq!(Device::ibm_auckland().gate_set, NativeGateSet::Ibm);
        assert_eq!(Device::rigetti_aspen_m().gate_set, NativeGateSet::Rigetti);
        assert_eq!(Device::ionq(10).gate_set, NativeGateSet::Ionq);
    }

    #[test]
    fn extrapolated_devices_reach_targets() {
        assert!(Device::ibm_extrapolated(300).num_qubits() >= 300);
        assert!(Device::rigetti_extrapolated(300).num_qubits() >= 300);
        assert!(Device::ibm_extrapolated(300).topology.is_connected());
    }

    #[test]
    fn density_extrapolation_adds_couplers_and_renames() {
        let base = Device::ibm_auckland();
        let dense = base.with_density(0.1, 7);
        assert!(dense.topology.num_edges() > base.topology.num_edges());
        assert!(dense.name.contains("d0.10"));
        assert_eq!(dense.num_qubits(), base.num_qubits());
    }

    #[test]
    fn ion_traps_trade_speed_for_coherence() {
        let ibm = Device::ibm_auckland().noise;
        let ion = Device::ionq(25).noise;
        assert!(ion.t1 > ibm.t1 && ion.t2 > ibm.t2);
        assert!(ion.time_2q > ibm.time_2q);
    }
}
