//! Criterion benchmarks for the annealing substrate (Fig. 3 / Table 3
//! machinery): minor embedding and path-integral SQA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qjo_anneal::hardware::{chimera, pegasus_like};
use qjo_anneal::sqa::{sample, SqaConfig};
use qjo_anneal::{pegasus_clique_embedding, AnnealerSampler, Embedder};
use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};
use qjo_qubo::IsingModel;

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");
    group.sample_size(10);
    for &t in &[3usize, 4] {
        let query = QueryGenerator::paper_defaults(QueryGraph::Chain, t).generate(0);
        let enc = JoEncoder::default().encode(&query);
        let edges: Vec<(usize, usize)> =
            enc.qubo.quadratic_iter().map(|(i, j, _)| (i, j)).collect();
        let target = pegasus_like(10);
        group.bench_with_input(BenchmarkId::new("jo_on_pegasus", t), &t, |b, _| {
            let embedder = Embedder::default();
            b.iter(|| {
                embedder
                    .embed(black_box(enc.num_qubits()), &edges, &target)
                    .expect("small problems embed")
            });
        });
    }
    group.bench_function("clique_template_k32", |b| {
        b.iter(|| pegasus_clique_embedding(32, 8).expect("fits"));
    });
    group.bench_function("k6_on_chimera", |b| {
        let mut edges = Vec::new();
        for a in 0..6 {
            for bb in a + 1..6 {
                edges.push((a, bb));
            }
        }
        let target = chimera(4);
        let embedder = Embedder::default();
        b.iter(|| embedder.embed(6, black_box(&edges), &target).expect("K6 fits"));
    });
    group.finish();
}

fn bench_sqa(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqa");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        // Ferromagnetic ring of n spins.
        let mut ising = IsingModel::new(n);
        for i in 0..n {
            ising.add_coupling(i, (i + 1) % n, -1.0);
        }
        group.bench_with_input(BenchmarkId::new("ring_20us", n), &n, |b, _| {
            let cfg = SqaConfig::default();
            b.iter(|| sample(black_box(&ising), &cfg, 20.0, 5));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("annealer_pipeline");
    group.sample_size(10);
    let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(0);
    let enc = JoEncoder::default().encode(&query);
    group.bench_function("end_to_end_50_reads", |b| {
        let sampler = AnnealerSampler { num_reads: 50, ..AnnealerSampler::new(pegasus_like(6)) };
        b.iter(|| sampler.sample_qubo(black_box(&enc.qubo)).expect("embeds"));
    });
    group.finish();
}

criterion_group!(benches, bench_embedding, bench_sqa);
criterion_main!(benches);
