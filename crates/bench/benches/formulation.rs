//! Criterion benchmarks for the formulation chain (Table 1 / Fig. 4
//! machinery): MILP construction, BILP conversion, QUBO encoding, and the
//! closed-form qubit bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qjo_core::bounds::qubit_upper_bound_raw;
use qjo_core::formulate::{bilp_to_qubo, build_milp, milp_to_bilp, JoMilpConfig, QuboEncodeConfig};
use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};

fn bench_formulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("formulation");
    for &t in &[3usize, 6, 10, 15] {
        let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, t).generate(0);
        group.bench_with_input(BenchmarkId::new("milp_build", t), &t, |b, _| {
            let cfg = JoMilpConfig::minimal(&query);
            b.iter(|| build_milp(black_box(&query), &cfg));
        });
        group.bench_with_input(BenchmarkId::new("full_encode", t), &t, |b, _| {
            let enc = JoEncoder::default();
            b.iter(|| enc.encode(black_box(&query)));
        });
        group.bench_with_input(BenchmarkId::new("bilp_and_qubo", t), &t, |b, _| {
            let milp = build_milp(&query, &JoMilpConfig::minimal(&query));
            b.iter(|| {
                let bilp = milp_to_bilp(black_box(&milp));
                bilp_to_qubo(&bilp, &QuboEncodeConfig::paper_default(1.0))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("qubit_bound");
    for &t in &[16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let logs = vec![3.0; t];
            b.iter(|| qubit_upper_bound_raw(t, t - 1, t, 20, black_box(0.0001), &logs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formulation);
criterion_main!(benches);
