//! Criterion benchmarks for the classical solvers: join-ordering DP,
//! exhaustive search, QUBO exact enumeration, simulated annealing, tabu
//! search, and the BILP branch-and-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qjo_core::classical::{dp_optimal, greedy_min_cost};
use qjo_core::formulate::BilpSolver;
use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};
use qjo_qubo::fix_variables;
use qjo_qubo::solve::{ExactSolver, SimulatedAnnealing, TabuSearch};

fn bench_classical_jo(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_jo");
    for &t in &[6usize, 10, 14, 18] {
        let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, t).generate(0);
        group.bench_with_input(BenchmarkId::new("dp_optimal", t), &t, |b, _| {
            b.iter(|| dp_optimal(black_box(&query)));
        });
        group.bench_with_input(BenchmarkId::new("greedy", t), &t, |b, _| {
            b.iter(|| greedy_min_cost(black_box(&query)));
        });
    }
    group.finish();
}

fn bench_qubo_solvers(c: &mut Criterion) {
    let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, 3).generate(0);
    let enc = JoEncoder::default().encode(&query);
    let mut group = c.benchmark_group("qubo_solvers");
    group.sample_size(10);
    if enc.num_qubits() <= 24 {
        group.bench_function("exact_gray_code", |b| {
            let solver = ExactSolver::new();
            b.iter(|| solver.solve(black_box(&enc.qubo)).unwrap());
        });
    }
    group.bench_function("simulated_annealing", |b| {
        let solver = SimulatedAnnealing { restarts: 10, sweeps: 200, ..Default::default() };
        b.iter(|| solver.solve(black_box(&enc.qubo)).unwrap());
    });
    group.bench_function("tabu_search", |b| {
        let solver = TabuSearch { restarts: 5, iterations: 1000, ..Default::default() };
        b.iter(|| solver.solve(black_box(&enc.qubo)).unwrap());
    });
    group.bench_function("bilp_branch_and_bound", |b| {
        let solver = BilpSolver::default();
        b.iter(|| solver.solve(black_box(&enc.bilp)).unwrap());
    });
    group.bench_function("preprocess_fix_variables", |b| {
        b.iter(|| fix_variables(black_box(&enc.qubo)));
    });
    group.finish();
}

criterion_group!(benches, bench_classical_jo, bench_qubo_solvers);
criterion_main!(benches);
