//! Criterion benchmarks for the gate-based substrate (Table 2 machinery):
//! state-vector gate application, QAOA expectation evaluation, sampling,
//! and noisy trajectory execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};
use qjo_gatesim::{
    qaoa_circuit, Gate, NoiseModel, NoisySimulator, QaoaParams, QaoaSimulator, StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for &n in &[12usize, 16, 20] {
        group.bench_with_input(BenchmarkId::new("h_layer", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = StateVector::zero(n);
                for q in 0..n {
                    s.apply(Gate::H(q));
                }
                black_box(s)
            });
        });
        group.bench_with_input(BenchmarkId::new("rzz_chain", n), &n, |b, &n| {
            let mut s = StateVector::plus(n);
            b.iter(|| {
                for q in 0..n - 1 {
                    s.apply(Gate::Rzz(q, q + 1, 0.3));
                }
            });
        });
    }
    group.finish();
}

fn bench_qaoa(c: &mut Criterion) {
    let query = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    }
    .with_predicate_count(0, 0);
    let enc = JoEncoder::default().encode(&query);
    let sim = QaoaSimulator::new(&enc.qubo);
    let params = QaoaParams { gammas: vec![0.4], betas: vec![0.3] };

    let mut group = c.benchmark_group("qaoa");
    group.sample_size(10);
    group.bench_function("expectation_p1", |b| {
        b.iter(|| sim.expectation(black_box(&params)));
    });
    group.bench_function("sample_256_shots", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| sim.sample(black_box(&params), 256, &mut rng));
    });
    group.bench_function("noisy_sample_128_shots", |b| {
        let circuit = qaoa_circuit(&enc.qubo.to_ising(), &params);
        let noisy = NoisySimulator {
            trajectories: 4,
            ..NoisySimulator::new(NoiseModel::ibm_auckland(), 0)
        };
        b.iter(|| noisy.sample(black_box(&circuit), 128));
    });
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_qaoa);
criterion_main!(benches);
