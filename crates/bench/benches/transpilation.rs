//! Criterion benchmarks for the transpilation pipeline (Figs. 2 and 5
//! machinery): layout, routing, decomposition, and density extrapolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qjo_core::{JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};
use qjo_gatesim::{qaoa_circuit, QaoaParams};
use qjo_transpile::density::densify;
use qjo_transpile::{Device, NativeGateSet, Strategy, Transpiler};

fn workload(t: usize) -> qjo_gatesim::Circuit {
    // Cardinality 10 keeps the 3-relation encoding at the paper's
    // 18-qubit base case (must fit the 27-qubit Auckland device).
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, t)
    };
    let query = gen.generate(0);
    let enc = JoEncoder { thresholds: ThresholdSpec::Auto(1), ..Default::default() }.encode(&query);
    qaoa_circuit(&enc.qubo.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] })
}

fn bench_transpile(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    group.sample_size(20);
    let circuit = workload(3);
    for (label, strategy) in [
        ("qiskit_like", Strategy::QiskitLike),
        ("tket_like", Strategy::TketLike),
        ("sabre", Strategy::Sabre),
    ] {
        group.bench_function(BenchmarkId::new("auckland", label), |b| {
            let device = Device::ibm_auckland();
            let t = Transpiler::new(strategy, 0);
            b.iter(|| t.transpile(black_box(&circuit), &device.topology, device.gate_set));
        });
    }
    for (label, gate_set) in
        [("ibm_native", NativeGateSet::Ibm), ("unrestricted", NativeGateSet::Unrestricted)]
    {
        group.bench_function(BenchmarkId::new("gate_set", label), |b| {
            let device = Device::ibm_auckland();
            let t = Transpiler::new(Strategy::QiskitLike, 0);
            b.iter(|| t.transpile(black_box(&circuit), &device.topology, gate_set));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("density_extrapolation");
    group.sample_size(20);
    let base = Device::ibm_extrapolated(60).topology;
    for &d in &[0.05f64, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| densify(black_box(&base), d, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transpile);
criterion_main!(benches);
