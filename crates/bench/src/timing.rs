//! Section 4.2.1's timing decomposition: sampling time `t_s` vs. total QPU
//! time `t_qpu`, and the local-coprocessor comparison motivating Figure 1.

use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};
use qjo_gatesim::{qaoa_circuit, NoiseModel, QaoaParams, QpuTimingModel};

use crate::report::Table;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Predicate counts swept at 3 relations (paper reports 0 and 3).
    pub predicate_counts: Vec<usize>,
    /// Shots per job (paper: 1024).
    pub shots: usize,
    /// Query seed.
    pub seed: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig { predicate_counts: vec![0, 1, 2, 3], shots: 1024, seed: 0 }
    }
}

/// One timing row.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Number of predicates.
    pub predicates: usize,
    /// Logical qubits.
    pub qubits: usize,
    /// Sampling time `t_s`, seconds (cloud model).
    pub t_sampling: f64,
    /// Total QPU time `t_qpu`, seconds (cloud model).
    pub t_qpu: f64,
    /// Total time on a hypothetical local coprocessor, seconds.
    pub t_local: f64,
}

/// Runs the decomposition.
pub fn run(config: &TimingConfig) -> Vec<TimingRow> {
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let cloud = QpuTimingModel::ibm_cloud();
    let local = QpuTimingModel::local_coprocessor();
    let noise = NoiseModel::ibm_auckland();
    let mut rows = Vec::new();
    for &p in &config.predicate_counts {
        let query = gen.with_predicate_count(config.seed, p);
        let enc = JoEncoder::default().encode(&query);
        let circuit =
            qaoa_circuit(&enc.qubo.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });
        rows.push(TimingRow {
            predicates: p,
            qubits: enc.num_qubits(),
            t_sampling: cloud.sampling_time(&circuit, &noise, config.shots),
            t_qpu: cloud.total_qpu_time(&circuit, &noise, config.shots),
            t_local: local.total_qpu_time(&circuit, &noise, config.shots),
        });
    }
    rows
}

/// Renders the rows.
pub fn render(rows: &[TimingRow]) -> Table {
    let mut t = Table::new(vec![
        "predicates",
        "qubits",
        "t_s [ms]",
        "t_qpu [s]",
        "local [ms]",
        "overhead ×",
    ]);
    for r in rows {
        t.push_row(vec![
            r.predicates.to_string(),
            r.qubits.to_string(),
            format!("{:.1}", r.t_sampling * 1e3),
            format!("{:.2}", r.t_qpu),
            format!("{:.1}", r.t_local * 1e3),
            format!("{:.0}", r.t_qpu / r.t_sampling),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_orders_of_magnitude() {
        let rows = run(&TimingConfig::default());
        for r in &rows {
            // t_s tens of milliseconds, t_qpu ~10 s.
            assert!(r.t_sampling > 0.01 && r.t_sampling < 0.5, "t_s = {}", r.t_sampling);
            assert!(r.t_qpu > 5.0 && r.t_qpu < 15.0, "t_qpu = {}", r.t_qpu);
            // Local execution eliminates the overhead.
            assert!(r.t_local < 2.0 * r.t_sampling);
        }
    }

    #[test]
    fn problem_size_barely_moves_total_time() {
        let rows = run(&TimingConfig::default());
        let small = rows.first().expect("rows").t_qpu;
        let large = rows.last().expect("rows").t_qpu;
        assert!((large - small).abs() / small < 0.05);
        // But sampling time does grow with the circuit.
        assert!(rows.last().unwrap().t_sampling >= rows.first().unwrap().t_sampling);
    }
}
