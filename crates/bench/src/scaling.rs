//! Scaling studies framing the quantum results.
//!
//! Three sweeps the paper's narrative leans on but does not tabulate:
//!
//! * [`run_classical`] — wall-clock scaling of the classical optimisers
//!   (exact DP is exponential in relations; greedy and the Steinbrunn
//!   heuristics are polynomial). This is the bar a QPU must clear.
//! * [`run_hardware_generations`] — embedding efficiency of Chimera
//!   (D-Wave 2X generation, degree 6) vs. the Pegasus-like lattice
//!   (Advantage generation, degree 15) on identical problems: the
//!   connectivity co-design argument measured on the annealer side.
//! * [`run_qaoa_depth`] — QAOA quality vs. circuit depth `p`, noiseless:
//!   the approximation-ratio gains that deeper circuits would buy if
//!   coherence allowed them (the paper is limited to p = 1 by hardware).

use std::time::Instant;

use qjo_anneal::hardware::{chimera, pegasus_like, zephyr_like};
use qjo_anneal::Embedder;
use qjo_core::classical::{
    dp_optimal, greedy_min_cost, iterative_improvement, simulated_annealing_jo,
};
use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};
use qjo_gatesim::optim::NelderMead;
use qjo_gatesim::{QaoaParams, QaoaSimulator};

use crate::report::{num, pct, Table};

/// Classical-scaling configuration.
#[derive(Debug, Clone)]
pub struct ClassicalScalingConfig {
    /// Relation counts to time.
    pub relations: Vec<usize>,
    /// Query seed.
    pub seed: u64,
}

impl Default for ClassicalScalingConfig {
    fn default() -> Self {
        ClassicalScalingConfig { relations: vec![6, 10, 14, 18, 22], seed: 0 }
    }
}

/// One classical-scaling row.
#[derive(Debug, Clone)]
pub struct ClassicalRow {
    /// Relations.
    pub relations: usize,
    /// DP time (µs); `None` beyond the practical cut-off.
    pub dp_us: Option<f64>,
    /// Greedy time (µs) and its cost ratio to the best known.
    pub greedy_us: f64,
    /// Greedy cost / best-known cost.
    pub greedy_ratio: f64,
    /// Iterative improvement time (µs) and ratio.
    pub ii_us: f64,
    /// II cost / best-known cost.
    pub ii_ratio: f64,
    /// Simulated annealing (orders) time (µs) and ratio.
    pub sa_us: f64,
    /// SA cost / best-known cost.
    pub sa_ratio: f64,
}

/// Times the classical optimisers.
pub fn run_classical(config: &ClassicalScalingConfig) -> Vec<ClassicalRow> {
    let mut rows = Vec::new();
    for &t in &config.relations {
        let query = QueryGenerator::paper_defaults(QueryGraph::Cycle, t).generate(config.seed);

        let (dp_us, dp_cost) = if t <= 20 {
            let start = Instant::now();
            let (_, cost) = dp_optimal(&query);
            (Some(start.elapsed().as_secs_f64() * 1e6), Some(cost))
        } else {
            (None, None)
        };

        let start = Instant::now();
        let (_, greedy_cost) = greedy_min_cost(&query);
        let greedy_us = start.elapsed().as_secs_f64() * 1e6;

        let start = Instant::now();
        let (_, ii_cost) = iterative_improvement(&query, 5, 40, config.seed);
        let ii_us = start.elapsed().as_secs_f64() * 1e6;

        let start = Instant::now();
        let (_, sa_cost) = simulated_annealing_jo(&query, 60, config.seed);
        let sa_us = start.elapsed().as_secs_f64() * 1e6;

        let best = dp_cost.unwrap_or(f64::INFINITY).min(greedy_cost).min(ii_cost).min(sa_cost);
        rows.push(ClassicalRow {
            relations: t,
            dp_us,
            greedy_us,
            greedy_ratio: greedy_cost / best,
            ii_us,
            ii_ratio: ii_cost / best,
            sa_us,
            sa_ratio: sa_cost / best,
        });
    }
    rows
}

/// Renders the classical-scaling rows.
pub fn render_classical(rows: &[ClassicalRow]) -> Table {
    let mut t = Table::new(vec![
        "relations",
        "DP [µs]",
        "greedy [µs]",
        "greedy ×",
        "II [µs]",
        "II ×",
        "SA [µs]",
        "SA ×",
    ]);
    for r in rows {
        t.push_row(vec![
            r.relations.to_string(),
            r.dp_us.map_or("-".into(), |v| format!("{v:.0}")),
            format!("{:.0}", r.greedy_us),
            num(r.greedy_ratio),
            format!("{:.0}", r.ii_us),
            num(r.ii_ratio),
            format!("{:.0}", r.sa_us),
            num(r.sa_ratio),
        ]);
    }
    t
}

/// One hardware-generation comparison row.
#[derive(Debug, Clone)]
pub struct GenerationRow {
    /// Relations.
    pub relations: usize,
    /// Logical qubits.
    pub logical: usize,
    /// Physical qubits on Chimera (2X generation); `None` = failed.
    pub chimera_physical: Option<usize>,
    /// Physical qubits on the Pegasus-like lattice (Advantage generation).
    pub pegasus_physical: Option<usize>,
    /// Physical qubits on the Zephyr-like lattice (Advantage2 generation).
    pub zephyr_physical: Option<usize>,
}

/// Embeds identical problems on all three annealer generations, at equal
/// qubit budgets (`8m²` qubits each).
pub fn run_hardware_generations(relations: &[usize], seed: u64, m: usize) -> Vec<GenerationRow> {
    let chimera_graph = chimera(m);
    let pegasus_graph = pegasus_like(m);
    let zephyr_graph = zephyr_like(m);
    let embedder = Embedder { seed, ..Default::default() };
    relations
        .iter()
        .map(|&t| {
            let query = QueryGenerator::paper_defaults(QueryGraph::Chain, t).generate(seed);
            let enc = JoEncoder::default().encode(&query);
            let edges: Vec<(usize, usize)> =
                enc.qubo.quadratic_iter().map(|(i, j, _)| (i, j)).collect();
            let on = |target| {
                embedder.embed(enc.num_qubits(), &edges, target).map(|e| e.num_physical_qubits())
            };
            GenerationRow {
                relations: t,
                logical: enc.num_qubits(),
                chimera_physical: on(&chimera_graph),
                pegasus_physical: on(&pegasus_graph),
                zephyr_physical: on(&zephyr_graph),
            }
        })
        .collect()
}

/// Renders the hardware-generation rows.
pub fn render_generations(rows: &[GenerationRow]) -> Table {
    let mut t = Table::new(vec![
        "relations",
        "logical",
        "Chimera (deg 6)",
        "Pegasus-like (deg 15)",
        "Zephyr-like (deg 20)",
    ]);
    for r in rows {
        let f = |v: Option<usize>| v.map_or("FAIL".into(), |x| x.to_string());
        t.push_row(vec![
            r.relations.to_string(),
            r.logical.to_string(),
            f(r.chimera_physical),
            f(r.pegasus_physical),
            f(r.zephyr_physical),
        ]);
    }
    t
}

/// One QAOA-depth row.
#[derive(Debug, Clone)]
pub struct QaoaDepthRow {
    /// Number of QAOA layers `p`.
    pub p: usize,
    /// Optimised energy expectation.
    pub expectation: f64,
    /// Probability mass on ground states at the optimum.
    pub ground_probability: f64,
}

/// Sweeps QAOA depth noiselessly on a small JO instance.
pub fn run_qaoa_depth(max_p: usize, seed: u64) -> Vec<QaoaDepthRow> {
    let gen = QueryGenerator {
        log_card_range: (1.0, 2.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let query = gen.with_predicate_count(seed, 1);
    let enc = JoEncoder::default().encode(&query);
    let sim = QaoaSimulator::new(&enc.qubo);
    let ground = sim.hamiltonian().min_energy();
    let energies = sim.hamiltonian().energies().to_vec();

    let mut rows = Vec::new();
    let mut warm = QaoaParams { gammas: vec![0.1], betas: vec![0.1] };
    for p in 1..=max_p {
        // INTERP warm start: stretch the previous depth's schedule.
        warm = warm.interpolate_to(p);
        let result = NelderMead { max_iterations: 120, ..Default::default() }
            .minimize(|x| sim.expectation(&QaoaParams::from_flat(p, x)), &warm.to_flat());
        warm = QaoaParams::from_flat(p, &result.x);
        let state = sim.state(&QaoaParams::from_flat(p, &result.x));
        let probs = state.probabilities();
        let ground_probability = probs
            .iter()
            .zip(&energies)
            .filter(|&(_, &e)| (e - ground).abs() < 1e-9)
            .map(|(p, _)| p)
            .sum();
        rows.push(QaoaDepthRow { p, expectation: result.fx, ground_probability });
    }
    rows
}

/// Renders the QAOA-depth rows.
pub fn render_qaoa_depth(rows: &[QaoaDepthRow]) -> Table {
    let mut t = Table::new(vec!["p", "⟨H⟩ at optimum", "ground-state probability"]);
    for r in rows {
        t.push_row(vec![r.p.to_string(), num(r.expectation), pct(r.ground_probability)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_scaling_produces_sane_timings() {
        let rows = run_classical(&ClassicalScalingConfig { relations: vec![5, 8], seed: 0 });
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.dp_us.is_some());
            assert!(r.greedy_ratio >= 1.0 - 1e-9);
            assert!(r.ii_ratio >= 1.0 - 1e-9);
            assert!(r.sa_ratio >= 1.0 - 1e-9);
        }
        // DP time grows with relations.
        assert!(rows[1].dp_us.unwrap() > rows[0].dp_us.unwrap());
        assert_eq!(render_classical(&rows).num_rows(), 2);
    }

    #[test]
    fn newer_generations_embed_more_efficiently() {
        let rows = run_hardware_generations(&[3, 4], 0, 10);
        for r in &rows {
            let p = r.pegasus_physical.expect("pegasus should embed small JO");
            let z = r.zephyr_physical.expect("zephyr should embed small JO");
            if let Some(c) = r.chimera_physical {
                assert!(
                    p <= c + c / 4,
                    "T={}: pegasus {p} should not be much worse than chimera {c}",
                    r.relations
                );
            }
            assert!(
                z <= p + p / 4,
                "T={}: zephyr {z} should not be much worse than pegasus {p}",
                r.relations
            );
        }
        assert_eq!(render_generations(&rows).num_rows(), 2);
    }

    #[test]
    fn deeper_qaoa_does_not_get_worse() {
        let rows = run_qaoa_depth(2, 0);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].expectation <= rows[0].expectation + 1e-6,
            "p=2 ⟨H⟩ {} vs p=1 {}",
            rows[1].expectation,
            rows[0].expectation
        );
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.ground_probability));
        }
    }
}
