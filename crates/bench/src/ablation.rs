//! Ablation studies for the encoding's design choices.
//!
//! Two knobs the paper motivates but does not sweep explicitly:
//!
//! * **Penalty weight `A`** (Section 3.4): the paper argues for the
//!   smallest `A` that makes any constraint violation unprofitable
//!   (`A = C/ω² + ε`), citing that oversized penalties hurt annealers
//!   (limited analogue resolution compresses the objective signal). The
//!   sweep scales the paper's `A` by several factors and measures annealed
//!   solution quality.
//! * **Model pruning** (Section 3.2): the pruned model's qubit savings and
//!   their end-to-end effect on annealed solution quality.

use qjo_anneal::hardware::pegasus_like;
use qjo_anneal::{AnnealerSampler, SqaConfig};
use qjo_core::classical::dp_optimal;
use qjo_core::{assess_samples, JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Relations of the test query.
    pub relations: usize,
    /// Multipliers applied to the paper's penalty weight.
    pub penalty_factors: Vec<f64>,
    /// Annealing reads per configuration.
    pub num_reads: usize,
    /// Random instances averaged per configuration.
    pub instances: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            relations: 3,
            penalty_factors: vec![0.05, 0.25, 1.0, 5.0, 25.0],
            num_reads: 200,
            instances: 3,
            seed: 0,
        }
    }
}

/// One penalty-sweep row.
#[derive(Debug, Clone)]
pub struct PenaltyRow {
    /// Multiplier on the paper's `A`.
    pub factor: f64,
    /// Mean fraction of valid reads.
    pub valid: f64,
    /// Mean fraction of optimal reads.
    pub optimal: f64,
}

/// One pruning-comparison row.
#[derive(Debug, Clone)]
pub struct PruneRow {
    /// Whether the pruned model was used.
    pub pruned: bool,
    /// Logical qubits.
    pub qubits: usize,
    /// Physical qubits after embedding.
    pub physical: usize,
    /// Valid fraction.
    pub valid: f64,
    /// Optimal fraction.
    pub optimal: f64,
}

/// One noise-sensitivity row.
#[derive(Debug, Clone)]
pub struct NoiseRow {
    /// Multiplier on the Auckland error rates (depolarising + readout).
    pub factor: f64,
    /// Fraction of shots decoding to valid join orders.
    pub valid: f64,
    /// Fraction decoding to optimal join orders.
    pub optimal: f64,
}

/// Sweeps the gate-based noise scale on the Table 2 pipeline: how quickly
/// QAOA solution quality erodes as error rates grow (and how much an
/// error-free QPU of the same size would gain).
pub fn run_noise(factors: &[f64], shots: usize, seed: u64) -> Vec<NoiseRow> {
    use qjo_gatesim::optim::GradientDescent;
    use qjo_gatesim::{qaoa_circuit, NoiseModel, NoisySimulator, QaoaParams, QaoaSimulator};
    use qjo_qubo::SampleSet;

    let gen = QueryGenerator {
        log_card_range: (1.0, 3.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let query = gen.with_predicate_count(seed, 1);
    let enc = JoEncoder::default().encode(&query);
    let (_, optimal_cost) = dp_optimal(&query);
    let sim = QaoaSimulator::new(&enc.qubo);
    let opt = GradientDescent { iterations: 20, learning_rate: 0.05, fd_step: 1e-3 }
        .minimize(|x| sim.expectation(&qjo_gatesim::QaoaParams::from_flat(1, x)), &[0.1, 0.1]);
    let params = QaoaParams::from_flat(1, &opt.x);
    let circuit = qaoa_circuit(&enc.qubo.to_ising(), &params);

    // Each noise factor is an independent work unit; the simulator inside
    // is pinned to sequential so the sweep is the only source of threads.
    qjo_exec::par_map(factors.to_vec(), qjo_exec::Parallelism::auto(), |factor| {
        let base = NoiseModel::ibm_auckland();
        let model = NoiseModel {
            p_depol_1q: base.p_depol_1q * factor,
            p_depol_2q: base.p_depol_2q * factor,
            readout_error: (base.readout_error * factor).min(0.45),
            // Scale decoherence by shrinking T1/T2 proportionally
            // (guarding the noiseless case).
            t1: if factor > 0.0 { base.t1 / factor } else { f64::INFINITY },
            t2: if factor > 0.0 { base.t2 / factor } else { f64::INFINITY },
            ..base
        };
        let sim = NoisySimulator {
            trajectories: 8,
            parallelism: qjo_exec::Parallelism::sequential(),
            ..NoisySimulator::new(model, seed)
        };
        let reads = sim.sample(&circuit, shots);
        let samples = SampleSet::from_shots(&reads, |x| enc.qubo.energy(x).expect("length"));
        let quality = assess_samples(&samples, &enc.registry, &query, optimal_cost);
        NoiseRow { factor, valid: quality.valid_fraction, optimal: quality.optimal_fraction }
    })
}

/// Renders the noise sweep.
pub fn render_noise(rows: &[NoiseRow]) -> Table {
    let mut t = Table::new(vec!["noise ×", "valid", "optimal"]);
    for r in rows {
        t.push_row(vec![format!("{}", r.factor), pct(r.valid), pct(r.optimal)]);
    }
    t
}

/// Sweeps the penalty weight.
pub fn run_penalty(config: &AblationConfig) -> Vec<PenaltyRow> {
    let gen = QueryGenerator::paper_defaults(QueryGraph::Cycle, config.relations);
    let target = pegasus_like(8);
    let mut rows = Vec::new();
    for &factor in &config.penalty_factors {
        let mut valid = 0.0;
        let mut optimal = 0.0;
        for inst in 0..config.instances {
            let seed = config.seed + inst as u64;
            let query = gen.generate(seed);
            // Determine the paper's A first, then scale it.
            let reference = JoEncoder::default().encode(&query);
            let enc = JoEncoder {
                penalty_override: Some(reference.penalty_a * factor),
                ..Default::default()
            }
            .encode(&query);
            let sampler = AnnealerSampler {
                num_reads: config.num_reads,
                sqa: SqaConfig { seed, ..Default::default() },
                ..AnnealerSampler::new(target.clone())
            };
            let outcome = sampler.sample_qubo(&enc.qubo).expect("3-relation embeds");
            let (_, opt) = dp_optimal(&query);
            let quality = assess_samples(&outcome.samples, &enc.registry, &query, opt);
            valid += quality.valid_fraction;
            optimal += quality.optimal_fraction;
        }
        rows.push(PenaltyRow {
            factor,
            valid: valid / config.instances as f64,
            optimal: optimal / config.instances as f64,
        });
    }
    rows
}

/// Compares pruned vs. original models end to end.
pub fn run_pruning(config: &AblationConfig) -> Vec<PruneRow> {
    let gen = QueryGenerator::paper_defaults(QueryGraph::Cycle, config.relations);
    let target = pegasus_like(8);
    let mut rows = Vec::new();
    for pruned in [true, false] {
        let mut valid = 0.0;
        let mut optimal = 0.0;
        let mut qubits = 0usize;
        let mut physical = 0usize;
        for inst in 0..config.instances {
            let seed = config.seed + inst as u64;
            let query = gen.generate(seed);
            let enc = JoEncoder {
                prune: pruned,
                thresholds: ThresholdSpec::Auto(1),
                ..Default::default()
            }
            .encode(&query);
            qubits += enc.num_qubits();
            let sampler = AnnealerSampler {
                num_reads: config.num_reads,
                sqa: SqaConfig { seed, ..Default::default() },
                ..AnnealerSampler::new(target.clone())
            };
            let outcome = sampler.sample_qubo(&enc.qubo).expect("3-relation embeds");
            physical += outcome.physical_qubits;
            let (_, opt) = dp_optimal(&query);
            let quality = assess_samples(&outcome.samples, &enc.registry, &query, opt);
            valid += quality.valid_fraction;
            optimal += quality.optimal_fraction;
        }
        let n = config.instances as f64;
        rows.push(PruneRow {
            pruned,
            qubits: qubits / config.instances,
            physical: physical / config.instances,
            valid: valid / n,
            optimal: optimal / n,
        });
    }
    rows
}

/// Renders the penalty sweep.
pub fn render_penalty(rows: &[PenaltyRow]) -> Table {
    let mut t = Table::new(vec!["A multiplier", "valid", "optimal"]);
    for r in rows {
        t.push_row(vec![format!("{}×", r.factor), pct(r.valid), pct(r.optimal)]);
    }
    t
}

/// Renders the pruning comparison.
pub fn render_pruning(rows: &[PruneRow]) -> Table {
    let mut t = Table::new(vec!["model", "logical qubits", "physical qubits", "valid", "optimal"]);
    for r in rows {
        t.push_row(vec![
            if r.pruned { "pruned" } else { "original" }.to_string(),
            r.qubits.to_string(),
            r.physical.to_string(),
            pct(r.valid),
            pct(r.optimal),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            relations: 3,
            penalty_factors: vec![0.05, 1.0],
            num_reads: 80,
            instances: 2,
            seed: 0,
        }
    }

    #[test]
    fn noise_sweep_produces_sane_fractions() {
        // Note: validity is NOT monotone in noise — scrambling toward the
        // uniform distribution can *raise* the fraction of valid bitstrings
        // while destroying optimality, which is exactly the paper's
        // observation that quality trends are inconsistent on NISQ devices.
        // We assert ranges plus a loose degradation bound at heavy noise.
        let rows = run_noise(&[0.0, 4.0], 512, 0);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.valid));
            assert!(r.optimal <= r.valid + 1e-12);
        }
        assert!(
            rows[1].optimal <= rows[0].optimal + 0.10,
            "4× noise optimal {} should not dramatically beat noiseless {}",
            rows[1].optimal,
            rows[0].optimal
        );
        assert_eq!(render_noise(&rows).num_rows(), 2);
    }

    #[test]
    fn paper_penalty_beats_severely_undersized_penalty() {
        // With A far below the valid threshold, violating constraints pays:
        // optimal fraction should not exceed the paper's choice.
        let rows = run_penalty(&tiny());
        let tiny_a = &rows[0];
        let paper_a = &rows[1];
        assert!(
            paper_a.optimal >= tiny_a.optimal,
            "paper A optimal {} vs tiny A {}",
            paper_a.optimal,
            tiny_a.optimal
        );
    }

    #[test]
    fn pruning_saves_qubits_without_hurting_quality_much() {
        let rows = run_pruning(&tiny());
        let pruned = rows.iter().find(|r| r.pruned).expect("row");
        let original = rows.iter().find(|r| !r.pruned).expect("row");
        assert!(pruned.qubits < original.qubits);
        assert!(pruned.physical < original.physical);
        // Smaller embeddings should not be *worse* by a large margin.
        assert!(pruned.valid + 0.15 >= original.valid);
    }
}
