//! Figure 4: logical-qubit upper bounds (Theorem 5.3) across problem sizes.
//!
//! Pure closed-form evaluation: cyclic query graphs (the worst case — one
//! more predicate than chains) with up to 64 relations, swept over
//! threshold counts and discretisation precisions.

use qjo_core::bounds::qubit_upper_bound_raw;

use crate::report::Table;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Relation counts to sweep.
    pub relations: Vec<usize>,
    /// Threshold counts `R`.
    pub threshold_counts: Vec<usize>,
    /// Discretisation precisions ω.
    pub omegas: Vec<f64>,
    /// Log cardinality assumed for every relation.
    pub log_card: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            relations: vec![4, 8, 13, 16, 24, 32, 48, 60, 64],
            threshold_counts: vec![1, 2, 5, 10, 20],
            omegas: vec![1.0, 0.1, 0.01, 0.0001],
            log_card: 3.0,
        }
    }
}

/// One bound evaluation.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Relations `T`.
    pub relations: usize,
    /// Threshold count `R`.
    pub thresholds: usize,
    /// Precision ω.
    pub omega: f64,
    /// The Theorem 5.3 bound.
    pub qubits: usize,
}

/// Runs the sweep (cyclic graphs: `P = T`).
pub fn run(config: &Fig4Config) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &t in &config.relations {
        let logs = vec![config.log_card; t];
        for &r in &config.threshold_counts {
            for &omega in &config.omegas {
                let bound = qubit_upper_bound_raw(t, t - 1, t, r, omega, &logs);
                rows.push(Fig4Row { relations: t, thresholds: r, omega, qubits: bound.total() });
            }
        }
    }
    rows
}

/// Renders the rows.
pub fn render(rows: &[Fig4Row]) -> Table {
    let mut t = Table::new(vec!["relations", "thresholds", "omega", "qubit bound"]);
    for r in rows {
        t.push_row(vec![
            r.relations.to_string(),
            r.thresholds.to_string(),
            format!("{}", r.omega),
            r.qubits.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_full_grid() {
        let cfg = Fig4Config::default();
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.relations.len() * cfg.threshold_counts.len() * cfg.omegas.len());
    }

    #[test]
    fn relations_dominate_scaling() {
        let rows = run(&Fig4Config::default());
        let get = |t: usize, r: usize, omega: f64| {
            rows.iter()
                .find(|x| x.relations == t && x.thresholds == r && x.omega == omega)
                .expect("cell")
                .qubits as f64
        };
        // Doubling relations roughly quadruples the bound…
        let rel_ratio = get(32, 2, 1.0) / get(16, 2, 1.0);
        assert!((3.0..=5.0).contains(&rel_ratio), "relations ratio {rel_ratio}");
        // …while four decimal digits of precision stay under ~2×
        // ("comparatively little impact", though >50% in some scenarios).
        let prec_ratio = get(32, 2, 0.0001) / get(32, 2, 1.0);
        assert!((1.05..=2.0).contains(&prec_ratio), "precision ratio {prec_ratio}");
    }

    #[test]
    fn headline_numbers_match_section_6_1() {
        let rows = run(&Fig4Config::default());
        // 13 relations fits a 1,000-qubit QPU at modest precision.
        let t13 = rows
            .iter()
            .find(|x| x.relations == 13 && x.thresholds == 1 && x.omega == 1.0)
            .expect("cell");
        assert!(t13.qubits <= 1000, "13 relations needs {}", t13.qubits);
        // 60 relations exceeds 20,000 qubits at high precision.
        let t60 = rows
            .iter()
            .find(|x| x.relations == 60 && x.thresholds == 20 && x.omega == 0.0001)
            .expect("cell");
        assert!(t60.qubits > 20_000, "60 relations bound {}", t60.qubits);
    }

    #[test]
    fn bound_is_monotone_in_every_knob() {
        let cfg = Fig4Config::default();
        let rows = run(&cfg);
        let get = |t: usize, r: usize, omega: f64| {
            rows.iter()
                .find(|x| x.relations == t && x.thresholds == r && x.omega == omega)
                .expect("cell")
                .qubits
        };
        assert!(get(24, 2, 1.0) < get(48, 2, 1.0));
        assert!(get(24, 1, 1.0) < get(24, 10, 1.0));
        assert!(get(24, 2, 1.0) < get(24, 2, 0.01));
    }
}
