//! Experiment harness for the paper's evaluation.
//!
//! One module per table/figure, each with a `Config` (defaults scaled to
//! simulator throughput; the paper's exact parameters are reachable by
//! raising the knobs), a `run` producing typed rows, and a `render`
//! producing the text table / CSV.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — original vs. pruned MILP size |
//! | [`fig2`] | Fig. 2 — transpiled QAOA depths on IBM Q |
//! | [`table2`] | Table 2 — QAOA valid/optimal fractions under noise |
//! | [`fig3`] | Fig. 3 — Pegasus embedding sizes |
//! | [`table3`] | Table 3 — annealing valid/optimal fractions |
//! | [`fig4`] | Fig. 4 — Theorem 5.3 qubit bounds |
//! | [`fig5`] | Fig. 5 — co-design topology/gate-set extrapolation |
//! | [`timing`] | §4.2.1 — `t_s` vs. `t_qpu` decomposition |

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod timing;
