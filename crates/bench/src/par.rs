//! Tiny scoped-thread parallel map for embarrassingly parallel experiment
//! sweeps (crossbeam scoped threads; results returned in input order).

/// Applies `f` to every item on `threads` worker threads, preserving order.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(jobs);
    let results = std::sync::Mutex::new(Vec::<(usize, R)>::with_capacity(n));
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let job = queue.lock().expect("queue lock").pop();
                match job {
                    Some((idx, item)) => {
                        let out = f(item);
                        results.lock().expect("results lock").push((idx, out));
                    }
                    None => break,
                }
            });
        }
    })
    .expect("worker panicked");
    let mut results = results.into_inner().expect("results lock");
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..100).collect(), 4, |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        assert_eq!(par_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map(Vec::<i32>::new(), 4, |x| x), Vec::<i32>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(vec![7], 8, |x| x * 2), vec![14]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        par_map(vec![0, 1], 2, |x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }
}
