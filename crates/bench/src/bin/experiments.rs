//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [table1|fig2|table2|fig3|table3|fig4|fig5|timing|ablation|scaling|all]
//!             [--full|--smoke] [--csv DIR] [--metrics-out PATH]
//!             [--trace-out PATH] [--bench-out PATH] [--convergence]
//!             [--faults SPEC] [--resume] [--halt-after STAGE]
//! experiments bench [STAGES]... [--full|--smoke] [--bench-out PATH] ...
//! experiments manifest-diff BASELINE CURRENT
//! experiments trace-check TRACE
//! experiments bench-compare BASELINE CURRENT
//! ```
//!
//! Defaults are scaled to simulator throughput; `--full` raises the knobs
//! toward the paper's exact parameters (slower), `--smoke` lowers them to
//! a CI-sized sweep that finishes in a couple of minutes. `--csv DIR`
//! additionally writes each result as CSV into `DIR`.
//!
//! Every run also emits a machine-readable **run manifest** (see
//! `EXPERIMENTS.md`): per-stage durations and counter deltas, final
//! metrics, and a content fingerprint of every table. The manifest goes to
//! `--metrics-out PATH` if given, else `DIR/run_manifest.json` under
//! `--csv`, else `results/run_manifest.json`; set `QJO_MANIFEST=off` to
//! disable. `manifest-diff` compares the deterministic sections of two
//! manifests and exits non-zero on drift — CI's experiments gate.
//!
//! Resilience (all deterministic, see `EXPERIMENTS.md`):
//!
//! * `--faults SPEC` (or the `QJO_FAULTS` env var) installs a seeded
//!   fault-injection plan; every injection and recovery event lands in
//!   the manifest's `resilience` section, so chaos runs drift-gate like
//!   any other sweep.
//! * The driver checkpoints each completed stage under
//!   `DIR/.checkpoints/`; `--resume` replays completed stages from those
//!   checkpoints and reproduces the exact final manifest an uninterrupted
//!   run would have written. `--halt-after STAGE` exits cleanly after
//!   checkpointing STAGE — a deterministic stand-in for a mid-sweep kill.
//! * Every artifact is written atomically (temp file + rename), so a real
//!   crash never leaves a torn CSV/JSON behind.
//!
//! Observability extras (all opt-in, see `EXPERIMENTS.md`):
//!
//! * `--trace-out PATH` records a Chrome `trace_event` JSON of every span
//!   and `par_map` work unit — open it in Perfetto or `chrome://tracing`.
//!   `trace-check` re-parses such a file and verifies slice nesting.
//! * `--convergence` turns on the solver convergence recorder (energy
//!   curves, acceptance rates, chain breaks, optimiser trajectories),
//!   exported as deterministic `convergence_*.csv` artifacts. `--smoke`
//!   implies it, so the smoke baseline gates on the curves too.
//! * `bench` (or `--bench-out PATH`) emits `BENCH.json`: per-stage wall
//!   time, counter-derived work rates, span percentiles, and trace-buffer
//!   statistics — the perf-trajectory record CI uploads per PR.
//!   `bench-compare` diffs the work rates of two snapshots and fails when
//!   a gated rate (the noisy-sampling `shots/s`) regresses beyond the 2×
//!   noise allowance — CI's perf gate against the committed smoke
//!   baseline.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use qjo_bench::report::Table;
use qjo_bench::{ablation, fig2, fig3, fig4, fig5, scaling, table1, table2, table3, timing};
use qjo_obs::json::Json;
use qjo_obs::manifest::{Artifact, RunManifest, StageRecord};

/// Knob scaling: the default simulator-throughput sweep, the paper-exact
/// `--full` sweep, or the CI-sized `--smoke` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Default,
    Full,
    Smoke,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Default => "default",
            Mode::Full => "full",
            Mode::Smoke => "smoke",
        }
    }
}

/// Every stage the driver knows, in `all` execution order.
const STAGE_NAMES: &[&str] = &[
    "table1", "fig2", "table2", "fig3", "table3", "fig4", "fig5", "timing", "ablation", "scaling",
];

#[derive(Debug)]
struct Options {
    which: Vec<String>,
    mode: Mode,
    csv_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    convergence: bool,
    faults: Option<String>,
    resume: bool,
    halt_after: Option<String>,
}

const USAGE: &str = "usage: experiments [table1|fig2|table2|fig3|table3|fig4|fig5|timing|ablation|scaling|all]... \
     [--full|--smoke] [--csv DIR] [--metrics-out PATH] [--trace-out PATH] [--bench-out PATH] [--convergence] \
     [--faults SPEC] [--resume] [--halt-after STAGE]\n       \
     experiments bench [STAGES]... (as above; BENCH.json unless --bench-out)\n       \
     experiments manifest-diff BASELINE CURRENT\n       \
     experiments trace-check TRACE\n       \
     experiments bench-compare BASELINE CURRENT";

/// Parses the sweep arguments. Returns a one-line error (the caller adds
/// the usage text and exits 2) instead of panicking on malformed input.
fn parse_args(raw: &[String]) -> Result<Options, String> {
    let mut which = Vec::new();
    let mut mode = Mode::Default;
    let mut csv_dir = None;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut bench_out = None;
    let mut bench = false;
    let mut convergence = false;
    let mut faults = None;
    let mut resume = false;
    let mut halt_after: Option<String> = None;
    let mut args = raw.iter();
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--full" => mode = Mode::Full,
            "--smoke" => mode = Mode::Smoke,
            "--convergence" => convergence = true,
            "--resume" => resume = true,
            "bench" => bench = true,
            "--csv" => csv_dir = Some(PathBuf::from(value("--csv")?)),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--bench-out" => bench_out = Some(PathBuf::from(value("--bench-out")?)),
            "--faults" => faults = Some(value("--faults")?),
            "--halt-after" => halt_after = Some(value("--halt-after")?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            stage if STAGE_NAMES.contains(&stage) || stage == "all" => {
                which.push(stage.to_string());
            }
            other => return Err(format!("unknown experiment '{other}'")),
        }
    }
    if bench && bench_out.is_none() {
        bench_out = Some(PathBuf::from("BENCH.json"));
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = STAGE_NAMES.iter().map(|s| s.to_string()).collect();
    }
    // Stage names double as convergence phases and checkpoint keys, both
    // of which must be unique: drop repeats, keeping first-run order.
    let mut seen = std::collections::BTreeSet::new();
    which.retain(|w| seen.insert(w.clone()));
    if let Some(halt) = &halt_after {
        if !which.iter().any(|w| w == halt) {
            return Err(format!("--halt-after '{halt}' is not part of this sweep"));
        }
    }
    Ok(Options {
        which,
        mode,
        csv_dir,
        metrics_out,
        trace_out,
        bench_out,
        convergence,
        faults,
        resume,
        halt_after,
    })
}

/// Collects the tables a run produces: prints them, optionally writes the
/// CSVs, and fingerprints every artifact for the run manifest.
struct Driver {
    options: Options,
    artifacts: Vec<Artifact>,
}

/// Tables whose cells contain wall-clock measurements; their manifest
/// entries are flagged volatile so the drift gate checks shape only.
const VOLATILE_ARTIFACTS: &[&str] = &["scaling_classical"];

impl Driver {
    fn emit(&mut self, name: &str, title: &str, table: Table) {
        println!("== {title} ==\n");
        println!("{}", table.render());
        let csv = table.to_csv();
        self.artifacts.push(Artifact {
            name: format!("{name}.csv"),
            rows: table.num_rows() as u64,
            bytes: csv.len() as u64,
            hash: qjo_obs::fnv1a64_hex(csv.as_bytes()),
            volatile: VOLATILE_ARTIFACTS.contains(&name),
        });
        if let Some(dir) = &self.options.csv_dir {
            let path = dir.join(format!("{name}.csv"));
            match table.write_csv(&path) {
                Ok(()) => qjo_obs::info!("wrote {}", path.display()),
                Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
            }
        }
    }

    fn run_stage(&mut self, which: &str) {
        let mode = self.options.mode;
        let full = mode == Mode::Full;
        let smoke = mode == Mode::Smoke;
        match which {
            "table1" => {
                let cfg = table1::Table1Config::default();
                self.emit(
                    "table1",
                    "Table 1: original vs pruned MILP model",
                    table1::render(&table1::run(&cfg)),
                );
            }
            "fig2" => {
                let cfg = fig2::Fig2Config {
                    repetitions: if full {
                        20
                    } else if smoke {
                        3
                    } else {
                        10
                    },
                    ..Default::default()
                };
                self.emit(
                    "fig2",
                    "Figure 2: transpiled QAOA circuit depths on IBM Q",
                    fig2::render(&fig2::run(&cfg)),
                );
            }
            "table2" => {
                let cfg = table2::Table2Config {
                    max_predicates: if full { 3 } else { usize::from(!smoke) },
                    trajectories: if full {
                        16
                    } else if smoke {
                        2
                    } else {
                        8
                    },
                    shots: if smoke { 256 } else { 1024 },
                    iteration_budgets: if smoke { vec![20] } else { vec![20, 50] },
                    ..Default::default()
                };
                self.emit(
                    "table2",
                    "Table 2: QAOA solution quality under the Auckland noise model",
                    table2::render(&table2::run(&cfg)),
                );
            }
            "fig3" => {
                let cfg = fig3::Fig3Config {
                    relations: if full {
                        (3..=10).collect()
                    } else if smoke {
                        (3..=4).collect()
                    } else {
                        (3..=6).collect()
                    },
                    pegasus_m: if full {
                        26
                    } else if smoke {
                        8
                    } else {
                        16
                    },
                    threshold_counts: if full {
                        vec![1, 2, 4, 6, 10, 20]
                    } else if smoke {
                        vec![1, 2]
                    } else {
                        vec![1, 2, 4, 6]
                    },
                    ..Default::default()
                };
                self.emit(
                    "fig3",
                    "Figure 3: physical qubits to embed JO on the Pegasus-like annealer",
                    fig3::render(&fig3::run(&cfg)),
                );
            }
            "table3" => {
                let cfg = table3::Table3Config {
                    relations: if smoke { vec![3, 4] } else { vec![3, 4, 5] },
                    annealing_times_us: if smoke {
                        vec![20.0, 100.0]
                    } else {
                        vec![20.0, 60.0, 100.0]
                    },
                    instances: if full {
                        20
                    } else if smoke {
                        2
                    } else {
                        5
                    },
                    num_reads: if full {
                        1000
                    } else if smoke {
                        50
                    } else {
                        200
                    },
                    ..Default::default()
                };
                self.emit(
                    "table3",
                    "Table 3: annealing solution quality (SQA + ICE noise)",
                    table3::render(&table3::run(&cfg)),
                );
            }
            "fig4" => {
                let cfg = fig4::Fig4Config::default();
                self.emit(
                    "fig4",
                    "Figure 4: Theorem 5.3 logical-qubit upper bounds",
                    fig4::render(&fig4::run(&cfg)),
                );
            }
            "fig5" => {
                let cfg = fig5::Fig5Config {
                    relations: if full {
                        vec![3, 4, 5, 6]
                    } else if smoke {
                        vec![3, 4]
                    } else {
                        vec![3, 4, 5]
                    },
                    seeds: if full {
                        5
                    } else if smoke {
                        2
                    } else {
                        3
                    },
                    ..Default::default()
                };
                self.emit(
                    "fig5",
                    "Figure 5: circuit depths on hypothetical co-designed QPUs",
                    fig5::render(&fig5::run(&cfg)),
                );
            }
            "ablation" => {
                let cfg = ablation::AblationConfig {
                    num_reads: if smoke { 50 } else { 200 },
                    instances: if smoke { 1 } else { 3 },
                    ..Default::default()
                };
                self.emit(
                    "ablation_penalty",
                    "Ablation: penalty weight A vs annealed quality",
                    ablation::render_penalty(&ablation::run_penalty(&cfg)),
                );
                self.emit(
                    "ablation_pruning",
                    "Ablation: pruned vs original model, end to end",
                    ablation::render_pruning(&ablation::run_pruning(&cfg)),
                );
                let (noise_factors, noise_shots): (&[f64], usize) = if smoke {
                    (&[0.0, 1.0, 4.0], 256)
                } else {
                    (&[0.0, 0.5, 1.0, 2.0, 4.0], 1024)
                };
                self.emit(
                    "ablation_noise",
                    "Ablation: gate-noise scale vs QAOA quality",
                    ablation::render_noise(&ablation::run_noise(noise_factors, noise_shots, 0)),
                );
            }
            "scaling" => {
                let cfg = scaling::ClassicalScalingConfig {
                    relations: if smoke { vec![6, 10, 14] } else { vec![6, 10, 14, 18, 22] },
                    ..Default::default()
                };
                self.emit(
                    "scaling_classical",
                    "Scaling: classical join-ordering optimisers",
                    scaling::render_classical(&scaling::run_classical(&cfg)),
                );
                self.emit(
                    "scaling_generations",
                    "Scaling: annealer hardware generations (equal 2048-qubit budgets)",
                    scaling::render_generations(&scaling::run_hardware_generations(
                        if smoke { &[3, 4] } else { &[3, 4, 5] },
                        0,
                        16,
                    )),
                );
                let max_p = if full {
                    3
                } else if smoke {
                    1
                } else {
                    2
                };
                self.emit(
                    "scaling_qaoa_depth",
                    "Scaling: QAOA quality vs depth p (noiseless)",
                    scaling::render_qaoa_depth(&scaling::run_qaoa_depth(max_p, 0)),
                );
            }
            "timing" => {
                let cfg = timing::TimingConfig::default();
                self.emit(
                    "timing",
                    "Section 4.2.1: sampling vs total QPU time",
                    timing::render(&timing::run(&cfg)),
                );
            }
            other => unreachable!("stage names are validated in parse_args: {other}"),
        }
    }
}

/// The commit the binary runs from, for the manifest's volatile section.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------------------
// Per-stage checkpoints (crash-safe resume)

/// Checkpoint document layout version.
const CHECKPOINT_SCHEMA: u64 = 1;

/// Where stage checkpoints live for this invocation's output directory.
fn checkpoint_dir(options: &Options) -> PathBuf {
    options.csv_dir.as_deref().unwrap_or(Path::new("results")).join(".checkpoints")
}

/// Fingerprint of everything that shapes a stage's deterministic output.
///
/// A `--resume` only replays checkpoints carrying the same fingerprint:
/// same mode, same stage list, same fault plan, and the same convergence
/// setting. Deliberately excludes the thread count — results are
/// thread-count invariant, so a sweep may resume at a different
/// `QJO_THREADS`.
fn config_fingerprint(options: &Options, convergence_on: bool) -> String {
    let faults = qjo_resil::fault::active().map(|p| p.render()).unwrap_or_default();
    let text = format!(
        "v{CHECKPOINT_SCHEMA}|{}|{}|{faults}|{convergence_on}",
        options.mode.name(),
        options.which.join(",")
    );
    qjo_obs::fnv1a64_hex(text.as_bytes())
}

/// Everything `--resume` needs to replay one completed stage.
struct StageCheckpoint {
    duration_ms: f64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    artifacts: Vec<Artifact>,
    /// Header-stripped convergence CSV rows, by group.
    convergence: BTreeMap<String, String>,
}

fn artifact_to_json(a: &Artifact) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("name".to_string(), Json::from(a.name.as_str()));
    obj.insert("rows".to_string(), Json::from(a.rows));
    obj.insert("bytes".to_string(), Json::from(a.bytes));
    obj.insert("hash".to_string(), Json::from(a.hash.as_str()));
    if a.volatile {
        obj.insert("volatile".to_string(), Json::Bool(true));
    }
    Json::Obj(obj)
}

fn artifact_from_json(a: &Json) -> Option<Artifact> {
    Some(Artifact {
        name: a.get("name")?.as_str()?.to_string(),
        rows: a.get("rows")?.as_u64()?,
        bytes: a.get("bytes")?.as_u64()?,
        hash: a.get("hash")?.as_str()?.to_string(),
        volatile: matches!(a.get("volatile"), Some(Json::Bool(true))),
    })
}

fn checkpoint_doc(
    fingerprint: &str,
    record: &StageRecord,
    artifacts: &[Artifact],
    convergence: &BTreeMap<String, String>,
) -> Json {
    let gauges = qjo_obs::global().snapshot().gauges;
    let mut root = BTreeMap::new();
    root.insert("schema".to_string(), Json::from(CHECKPOINT_SCHEMA));
    root.insert("fingerprint".to_string(), Json::from(fingerprint));
    root.insert("stage".to_string(), Json::from(record.name.as_str()));
    root.insert("duration_ms".to_string(), Json::from(record.duration_ms));
    root.insert(
        "counters".to_string(),
        Json::Obj(record.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect()),
    );
    root.insert(
        "gauges".to_string(),
        Json::Obj(gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect()),
    );
    root.insert(
        "artifacts".to_string(),
        Json::Arr(artifacts.iter().map(artifact_to_json).collect()),
    );
    root.insert(
        "convergence".to_string(),
        Json::Obj(convergence.iter().map(|(k, v)| (k.clone(), Json::from(v.as_str()))).collect()),
    );
    Json::Obj(root)
}

/// Loads and validates the checkpoint for `stage`; any mismatch (absent,
/// torn, wrong schema/fingerprint/stage) means the stage reruns live.
fn load_stage_checkpoint(path: &Path, fingerprint: &str, stage: &str) -> Option<StageCheckpoint> {
    let doc = qjo_resil::checkpoint::load(path).ok()??;
    if doc.get("schema").and_then(Json::as_u64) != Some(CHECKPOINT_SCHEMA)
        || doc.get("fingerprint").and_then(Json::as_str) != Some(fingerprint)
        || doc.get("stage").and_then(Json::as_str) != Some(stage)
    {
        return None;
    }
    let counters = doc
        .get("counters")?
        .as_obj()?
        .iter()
        .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
        .collect::<Option<_>>()?;
    let gauges = doc
        .get("gauges")?
        .as_obj()?
        .iter()
        .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
        .collect::<Option<_>>()?;
    let artifacts =
        doc.get("artifacts")?.as_arr()?.iter().map(artifact_from_json).collect::<Option<_>>()?;
    let convergence = doc
        .get("convergence")?
        .as_obj()?
        .iter()
        .map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
        .collect::<Option<_>>()?;
    Some(StageCheckpoint {
        duration_ms: doc.get("duration_ms").and_then(Json::as_f64).unwrap_or(0.0),
        counters,
        gauges,
        artifacts,
        convergence,
    })
}

/// Replays a checkpointed stage into the live process: counter deltas are
/// re-added, gauges re-set, and artifacts re-fingerprinted from record.
fn replay_stage(ckpt: &StageCheckpoint, name: &str, driver: &mut Driver) -> StageRecord {
    for (counter, &delta) in &ckpt.counters {
        qjo_obs::counter(counter).add(delta);
    }
    for (gauge, &value) in &ckpt.gauges {
        qjo_obs::gauge(gauge).set(value);
    }
    driver.artifacts.extend(ckpt.artifacts.iter().cloned());
    StageRecord {
        name: name.to_string(),
        duration_ms: ckpt.duration_ms,
        counters: ckpt.counters.clone(),
    }
}

// ---------------------------------------------------------------------------
// Convergence (per-stage drain, crash-safe reassembly)

/// Drains the recorder after a stage and restarts it for the next one,
/// returning this stage's header-stripped rows per group. Draining per
/// stage (rather than once at the end) is what makes the curves
/// checkpointable; because rows sort by phase first and each stage is one
/// phase, per-stage blocks concatenated in phase order are byte-identical
/// to a single end-of-run drain.
fn drain_stage_convergence(convergence_on: bool) -> BTreeMap<String, String> {
    if !convergence_on {
        return BTreeMap::new();
    }
    let blocks = qjo_obs::convergence::drain_csv()
        .into_iter()
        .map(|(group, csv)| {
            let body = csv.split_once('\n').map(|(_, b)| b.to_string()).unwrap_or_default();
            (group, body)
        })
        .collect();
    qjo_obs::convergence::start(qjo_obs::convergence::DEFAULT_STRIDE);
    blocks
}

/// Reassembles the final `convergence_<group>.csv` artifacts from the
/// per-stage blocks (live or replayed): fingerprinted in the run manifest
/// (non-volatile — the curves are thread-count independent by
/// construction) and written under `--csv` when set.
fn assemble_convergence(driver: &mut Driver, blocks: &BTreeMap<String, BTreeMap<String, String>>) {
    for (group, phases) in blocks {
        let mut csv = String::from("phase,series,unit,instance,step,value\n");
        for block in phases.values() {
            csv.push_str(block);
        }
        let name = format!("convergence_{group}.csv");
        driver.artifacts.push(Artifact {
            name: name.clone(),
            rows: csv.lines().count().saturating_sub(1) as u64,
            bytes: csv.len() as u64,
            hash: qjo_obs::fnv1a64_hex(csv.as_bytes()),
            volatile: false,
        });
        if let Some(dir) = &driver.options.csv_dir {
            let path = dir.join(&name);
            match qjo_resil::atomic_write(&path, csv.as_bytes()) {
                Ok(()) => qjo_obs::info!("wrote {}", path.display()),
                Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Final outputs

/// Where the manifest goes; `None` when `QJO_MANIFEST` opts out.
fn manifest_path(options: &Options) -> Option<PathBuf> {
    if let Ok(v) = std::env::var("QJO_MANIFEST") {
        if matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false" | "no") {
            return None;
        }
    }
    Some(options.metrics_out.clone().unwrap_or_else(|| {
        options.csv_dir.as_deref().unwrap_or(Path::new("results")).join("run_manifest.json")
    }))
}

fn write_manifest(
    options: &Options,
    stages: Vec<StageRecord>,
    artifacts: Vec<Artifact>,
    total: f64,
) {
    let Some(path) = manifest_path(options) else {
        qjo_obs::debug!("run manifest disabled via QJO_MANIFEST");
        return;
    };
    let mut manifest = RunManifest::default();
    manifest.run.insert("git_rev".to_string(), Json::from(git_rev()));
    manifest
        .run
        .insert("threads".to_string(), Json::from(qjo_exec::Parallelism::auto().resolve() as u64));
    manifest.run.insert("mode".to_string(), Json::from(options.mode.name()));
    manifest.run.insert(
        "experiments".to_string(),
        Json::Arr(options.which.iter().map(|w| Json::from(w.as_str())).collect()),
    );
    if let Some(plan) = qjo_resil::fault::active() {
        manifest.run.insert("faults".to_string(), Json::from(plan.render()));
    }
    if options.resume {
        manifest.run.insert("resumed".to_string(), Json::Bool(true));
    }
    manifest.run.insert("total_duration_ms".to_string(), Json::from((total * 1e3).round() / 1e3));
    manifest.stages = stages;
    manifest.set_metrics(&qjo_obs::global().snapshot());
    manifest.artifacts = artifacts;
    match qjo_resil::atomic_write(&path, manifest.render().as_bytes()) {
        Ok(()) => qjo_obs::info!("wrote {}", path.display()),
        Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
    }
}

/// `manifest-diff BASELINE CURRENT`: compare deterministic sections, exit
/// 1 on drift. Drift is reported as a per-key table of expected
/// (baseline) vs. actual (current) values.
fn manifest_diff(baseline_path: &str, current_path: &str) -> ! {
    let load = |p: &str| -> RunManifest {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            qjo_obs::error!("cannot read manifest {p}: {e}");
            std::process::exit(2);
        });
        RunManifest::parse(&text).unwrap_or_else(|e| {
            qjo_obs::error!("cannot parse manifest {p}: {e}");
            std::process::exit(2);
        })
    };
    let entries = qjo_obs::manifest::diff_entries(&load(baseline_path), &load(current_path));
    if entries.is_empty() {
        qjo_obs::info!("no drift: {current_path} matches {baseline_path}");
        std::process::exit(0);
    }
    qjo_obs::error!(
        "{} drift finding(s) between {baseline_path} and {current_path}:",
        entries.len()
    );
    for line in qjo_obs::manifest::render_drift_table(&entries).lines() {
        qjo_obs::error!("  {line}");
    }
    std::process::exit(1);
}

/// Work rates whose regression fails `bench-compare`. The shot hot path
/// dominates the smoke profile's quantum stages; the SQA sweep and anneal
/// read rates gate the packed bit-parallel annealing kernel so a future
/// change cannot silently give back its speedup. All three are stable
/// enough that a 2× drop clears run-to-run noise on the 1-core CI
/// runner. The other `RATE_PAIRS` are reported informationally.
const GATED_RATES: &[&str] =
    &["gatesim.shots_per_sec", "sqa.sweeps_per_sec", "anneal.reads_per_sec"];

/// `bench-compare BASELINE CURRENT`: compare the work rates of two
/// `BENCH.json` snapshots. Exits 1 if a gated rate regressed by more than
/// the 2× noise allowance, 2 if either file is unreadable, 0 otherwise.
fn bench_compare(baseline_path: &str, current_path: &str) -> ! {
    let load = |p: &str| -> Json {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            qjo_obs::error!("cannot read bench snapshot {p}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            qjo_obs::error!("cannot parse bench snapshot {p}: {e}");
            std::process::exit(2);
        })
    };
    let rates_of = |doc: &Json, p: &str| -> std::collections::BTreeMap<String, f64> {
        let Some(obj) = doc.get("rates").and_then(Json::as_obj) else {
            qjo_obs::error!("bench snapshot {p} has no rates section");
            std::process::exit(2);
        };
        obj.iter().filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f))).collect()
    };
    let baseline_doc = load(baseline_path);
    let current_doc = load(current_path);
    let baseline = rates_of(&baseline_doc, baseline_path);
    let current = rates_of(&current_doc, current_path);

    // Timing noise allowance: fail only when a gated rate falls below
    // half its baseline. Wall-clock rates on a shared 1-core runner jitter
    // far too much for a tight threshold, and genuine hot-path regressions
    // land well past 2×.
    const MAX_REGRESSION: f64 = 2.0;
    let mut failed = false;
    for (name, &base) in &baseline {
        let Some(&cur) = current.get(name) else {
            qjo_obs::warn!("rate {name}: present in baseline, missing from current");
            continue;
        };
        let ratio = cur / base;
        let gated = GATED_RATES.contains(&name.as_str());
        if gated && base > 0.0 && ratio < 1.0 / MAX_REGRESSION {
            qjo_obs::error!(
                "rate {name} regressed {:.2}×: {base:.1} -> {cur:.1} (gated, allowance {MAX_REGRESSION}×)",
                base / cur
            );
            failed = true;
        } else {
            qjo_obs::info!(
                "rate {name}: {base:.1} -> {cur:.1} ({ratio:.2}×{})",
                if gated { ", gated" } else { "" }
            );
        }
    }
    for name in current.keys().filter(|n| !baseline.contains_key(*n)) {
        qjo_obs::info!("rate {name}: new in current");
    }
    if failed {
        qjo_obs::error!("bench-compare: gated work rate regressed beyond the noise allowance");
        std::process::exit(1);
    }
    qjo_obs::info!("bench-compare: no gated regression vs {baseline_path}");
    std::process::exit(0);
}

/// `trace-check TRACE`: parse a Chrome trace JSON and verify its slices
/// nest. Exit 0 on a valid trace, 1 on an invalid one, 2 if unreadable.
fn trace_check(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        qjo_obs::error!("cannot read trace {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        qjo_obs::error!("trace {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    match qjo_obs::trace::validate_chrome_trace(&doc) {
        Ok(check) => {
            qjo_obs::info!(
                "trace OK: {} slices across {} threads nest to depth {} in {path}",
                check.events,
                check.threads,
                check.max_depth
            );
            std::process::exit(0);
        }
        Err(e) => {
            qjo_obs::error!("trace {path} is malformed: {e}");
            std::process::exit(1);
        }
    }
}

/// Stops the trace collector and writes the Chrome trace when requested
/// (atomically, like every other artifact), returning collector
/// statistics for `BENCH.json`.
fn finish_trace(options: &Options) -> Option<qjo_obs::trace::TraceStats> {
    options.trace_out.as_ref().map(|path| {
        qjo_obs::trace::stop();
        let stats = qjo_obs::trace::stats();
        match qjo_resil::atomic_write(path, qjo_obs::trace::to_chrome_json().render().as_bytes()) {
            Ok(()) => qjo_obs::info!(
                "wrote {} ({} events, {} dropped, peak buffer occupancy {})",
                path.display(),
                stats.stored,
                stats.dropped,
                stats.peak_occupancy
            ),
            Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
        }
        stats
    })
}

/// Counter / span pairs whose ratio is a meaningful work rate, and the
/// rate's name in `BENCH.json` (work units per wall-clock second spent
/// inside the span).
const RATE_PAIRS: &[(&str, &str, &str)] = &[
    ("anneal.reads", "anneal.sample", "anneal.reads_per_sec"),
    ("gatesim.shots", "gatesim.noisy.sample", "gatesim.shots_per_sec"),
    ("sa.sweeps", "qubo.sa.sample", "sa.sweeps_per_sec"),
    ("sqa.sweeps", "anneal.sample", "sqa.sweeps_per_sec"),
    ("tabu.iterations", "qubo.tabu.solve", "tabu.iterations_per_sec"),
    ("transpile.runs", "transpile.run", "transpile.runs_per_sec"),
];

/// Schema version of `BENCH.json`.
const BENCH_SCHEMA_VERSION: u64 = 1;

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// Writes `BENCH.json`: the per-run performance trajectory record (wall
/// times, work rates, span percentiles, trace-buffer statistics). All
/// values here are timing-derived and therefore volatile — `BENCH.json`
/// is never diffed, only archived per PR for trend analysis.
fn write_bench(
    options: &Options,
    stages: &[StageRecord],
    total_ms: f64,
    trace_stats: Option<qjo_obs::trace::TraceStats>,
) {
    let Some(path) = &options.bench_out else {
        return;
    };
    let snapshot = qjo_obs::global().snapshot();
    let mut root = BTreeMap::new();
    root.insert("schema_version".to_string(), Json::from(BENCH_SCHEMA_VERSION));

    let mut run = BTreeMap::new();
    run.insert("git_rev".to_string(), Json::from(git_rev()));
    run.insert("threads".to_string(), Json::from(qjo_exec::Parallelism::auto().resolve() as u64));
    run.insert("mode".to_string(), Json::from(options.mode.name()));
    run.insert("total_ms".to_string(), Json::from(round3(total_ms)));
    root.insert("run".to_string(), Json::Obj(run));

    let stage_list = stages
        .iter()
        .map(|stage| {
            let mut obj = BTreeMap::new();
            obj.insert("name".to_string(), Json::from(stage.name.as_str()));
            obj.insert("duration_ms".to_string(), Json::from(round3(stage.duration_ms)));
            Json::Obj(obj)
        })
        .collect();
    root.insert("stages".to_string(), Json::Arr(stage_list));

    let mut rates = BTreeMap::new();
    for &(counter, span, rate) in RATE_PAIRS {
        let Some(&work) = snapshot.counters.get(counter) else { continue };
        // Spans nest into slash-separated paths (one histogram per call
        // path), so total the span's time across every path it appears in.
        let suffix = format!("/{span}");
        let span_ns: u64 = snapshot
            .histograms
            .iter()
            .filter(|(path, _)| path.as_str() == span || path.ends_with(&suffix))
            .map(|(_, h)| h.sum_ns)
            .sum();
        if work == 0 || span_ns == 0 {
            continue;
        }
        rates.insert(rate.to_string(), Json::from(round3(work as f64 / (span_ns as f64 / 1e9))));
    }
    root.insert("rates".to_string(), Json::Obj(rates));

    let spans = snapshot
        .histograms
        .iter()
        .map(|(span_path, h)| {
            let mut obj = BTreeMap::new();
            obj.insert("count".to_string(), Json::from(h.count));
            obj.insert("total_ms".to_string(), Json::from(round3(h.sum_ns as f64 / 1e6)));
            obj.insert("p50_ms".to_string(), Json::from(round3(h.percentile_ms(0.50))));
            obj.insert("p90_ms".to_string(), Json::from(round3(h.percentile_ms(0.90))));
            obj.insert("p99_ms".to_string(), Json::from(round3(h.percentile_ms(0.99))));
            (span_path.clone(), Json::Obj(obj))
        })
        .collect();
    root.insert("spans".to_string(), Json::Obj(spans));

    root.insert(
        "counters".to_string(),
        Json::Obj(snapshot.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect()),
    );

    if let Some(stats) = trace_stats {
        let mut t = BTreeMap::new();
        t.insert("events".to_string(), Json::from(stats.stored));
        t.insert("recorded".to_string(), Json::from(stats.recorded));
        t.insert("dropped".to_string(), Json::from(stats.dropped));
        t.insert("peak_occupancy".to_string(), Json::from(stats.peak_occupancy));
        root.insert("trace".to_string(), Json::Obj(t));
    }

    match qjo_resil::atomic_write(path, Json::Obj(root).render().as_bytes()) {
        Ok(()) => qjo_obs::info!("wrote {}", path.display()),
        Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    if raw.first().map(String::as_str) == Some("manifest-diff") {
        match raw.as_slice() {
            [_, baseline, current] => manifest_diff(baseline, current),
            _ => {
                qjo_obs::error!("manifest-diff takes exactly two manifest paths (see --help)");
                std::process::exit(2);
            }
        }
    }
    if raw.first().map(String::as_str) == Some("trace-check") {
        match raw.as_slice() {
            [_, trace] => trace_check(trace),
            _ => {
                qjo_obs::error!("trace-check takes exactly one trace path (see --help)");
                std::process::exit(2);
            }
        }
    }
    if raw.first().map(String::as_str) == Some("bench-compare") {
        match raw.as_slice() {
            [_, baseline, current] => bench_compare(baseline, current),
            _ => {
                qjo_obs::error!("bench-compare takes exactly two BENCH.json paths (see --help)");
                std::process::exit(2);
            }
        }
    }

    let options = parse_args(&raw).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    // Fault plan: --faults wins over QJO_FAULTS; a malformed spec from
    // either source is a usage error.
    if let Some(spec) = &options.faults {
        match qjo_resil::FaultPlan::parse(spec) {
            Ok(plan) => qjo_resil::fault::install(plan),
            Err(e) => {
                eprintln!("error: --faults: {e}");
                std::process::exit(2);
            }
        }
    } else if let Err(e) = qjo_resil::fault::install_from_env() {
        eprintln!("error: QJO_FAULTS: {e}");
        std::process::exit(2);
    }
    if let Some(plan) = qjo_resil::fault::active() {
        qjo_obs::info!("fault injection active: {}", plan.render());
    }

    let tracing = options.trace_out.is_some();
    if tracing {
        qjo_obs::trace::start(qjo_obs::trace::DEFAULT_THREAD_CAPACITY);
    }
    // Smoke runs always record convergence so the committed smoke baseline
    // gates on the curves; other modes opt in with --convergence.
    let convergence_on = options.convergence || options.mode == Mode::Smoke;
    if convergence_on {
        qjo_obs::convergence::start(qjo_obs::convergence::DEFAULT_STRIDE);
    }

    let ckpt_dir = checkpoint_dir(&options);
    let fingerprint = config_fingerprint(&options, convergence_on);
    if !options.resume {
        // A fresh run owes nothing to previous partial sweeps.
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    let run_start = Instant::now();
    let mut driver = Driver { options, artifacts: Vec::new() };
    let mut stages = Vec::new();
    // group -> phase (stage) -> header-stripped CSV rows.
    let mut convergence_blocks: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut replaying = driver.options.resume;
    let mut halted = false;
    for which in driver.options.which.clone() {
        let ckpt_path = ckpt_dir.join(format!("{which}.json"));
        if replaying {
            if let Some(ckpt) = load_stage_checkpoint(&ckpt_path, &fingerprint, &which) {
                for (group, block) in &ckpt.convergence {
                    convergence_blocks
                        .entry(group.clone())
                        .or_default()
                        .insert(which.clone(), block.clone());
                }
                stages.push(replay_stage(&ckpt, &which, &mut driver));
                qjo_obs::info!("[{which} replayed from checkpoint]");
                if driver.options.halt_after.as_deref() == Some(which.as_str()) {
                    halted = true;
                    break;
                }
                continue;
            }
            // First missing or stale checkpoint: everything from here on
            // runs live (later checkpoints, if any, are now meaningless).
            replaying = false;
        }
        let artifacts_before = driver.artifacts.len();
        let before = qjo_obs::global().snapshot();
        let start = Instant::now();
        {
            let _span = qjo_obs::span!("experiments.stage");
            let _slice = tracing.then(|| qjo_obs::trace::slice_scope(format!("stage:{which}")));
            if convergence_on {
                qjo_obs::convergence::set_phase(&which);
            }
            driver.run_stage(&which);
        }
        let elapsed = start.elapsed();
        let stage_blocks = drain_stage_convergence(convergence_on);
        for (group, block) in &stage_blocks {
            convergence_blocks
                .entry(group.clone())
                .or_default()
                .insert(which.clone(), block.clone());
        }
        let record = StageRecord {
            name: which.clone(),
            duration_ms: elapsed.as_secs_f64() * 1e3,
            counters: qjo_obs::global().snapshot().counter_deltas_since(&before),
        };
        let doc = checkpoint_doc(
            &fingerprint,
            &record,
            &driver.artifacts[artifacts_before..],
            &stage_blocks,
        );
        if let Err(e) = qjo_resil::checkpoint::save(&ckpt_path, &doc) {
            qjo_obs::warn!("failed to checkpoint {which}: {e}");
        }
        stages.push(record);
        qjo_obs::info!("[{which} took {elapsed:.1?}]");
        if driver.options.halt_after.as_deref() == Some(which.as_str()) {
            halted = true;
            break;
        }
    }
    if halted {
        // Simulated crash: keep the checkpoints, skip the final outputs —
        // exactly what a kill -9 after the last checkpoint write leaves.
        let halt = driver.options.halt_after.as_deref().unwrap_or_default();
        qjo_obs::info!("halted after {halt}; resume with --resume");
        return;
    }
    assemble_convergence(&mut driver, &convergence_blocks);
    let trace_stats = finish_trace(&driver.options);
    let total_ms = run_start.elapsed().as_secs_f64() * 1e3;
    let Driver { options, artifacts } = driver;
    write_bench(&options, &stages, total_ms, trace_stats);
    write_manifest(&options, stages, artifacts, total_ms);
    // The sweep finished and every output is on disk: the checkpoints
    // have served their purpose.
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_expands_to_every_stage() {
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts.which, STAGE_NAMES.to_vec());
        assert_eq!(opts.mode, Mode::Default);
        assert!(opts.csv_dir.is_none() && opts.faults.is_none() && !opts.resume);
    }

    #[test]
    fn flags_and_stage_selection_parse() {
        let opts = parse_args(&args(&[
            "table1",
            "fig3",
            "--smoke",
            "--csv",
            "out",
            "--faults",
            "seed=7;io.write=0.5",
            "--resume",
            "--halt-after",
            "fig3",
        ]))
        .unwrap();
        assert_eq!(opts.which, vec!["table1", "fig3"]);
        assert_eq!(opts.mode, Mode::Smoke);
        assert_eq!(opts.csv_dir.as_deref(), Some(Path::new("out")));
        assert_eq!(opts.faults.as_deref(), Some("seed=7;io.write=0.5"));
        assert!(opts.resume);
        assert_eq!(opts.halt_after.as_deref(), Some("fig3"));
    }

    #[test]
    fn bench_keyword_defaults_the_bench_output() {
        let opts = parse_args(&args(&["bench", "table1"])).unwrap();
        assert_eq!(opts.bench_out.as_deref(), Some(Path::new("BENCH.json")));
        let opts = parse_args(&args(&["bench", "--bench-out", "x.json"])).unwrap();
        assert_eq!(opts.bench_out.as_deref(), Some(Path::new("x.json")));
    }

    #[test]
    fn repeated_stages_are_deduplicated_in_order() {
        let opts = parse_args(&args(&["fig3", "table1", "fig3", "table1"])).unwrap();
        assert_eq!(opts.which, vec!["fig3", "table1"]);
    }

    #[test]
    fn missing_flag_values_are_errors_not_panics() {
        for flag in
            ["--csv", "--metrics-out", "--trace-out", "--bench-out", "--faults", "--halt-after"]
        {
            let err = parse_args(&args(&[flag])).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
            assert!(err.contains("requires a value"), "{flag}: {err}");
        }
    }

    #[test]
    fn unknown_input_is_rejected() {
        assert!(parse_args(&args(&["--frobnicate"])).unwrap_err().contains("unknown flag"));
        assert!(parse_args(&args(&["table9"])).unwrap_err().contains("unknown experiment"));
    }

    #[test]
    fn halt_after_must_name_a_selected_stage() {
        let err = parse_args(&args(&["table1", "--halt-after", "fig3"])).unwrap_err();
        assert!(err.contains("not part of this sweep"), "{err}");
        // With the implicit `all` expansion every stage qualifies.
        assert!(parse_args(&args(&["--halt-after", "fig3"])).is_ok());
        // But a non-stage name is caught even before membership.
        assert!(parse_args(&args(&["--halt-after", "nope"])).is_err());
    }

    #[test]
    fn checkpoint_documents_round_trip() {
        let record = StageRecord {
            name: "table1".to_string(),
            duration_ms: 12.5,
            counters: BTreeMap::from([("sa.restarts".to_string(), 40u64)]),
        };
        let artifacts = vec![Artifact {
            name: "table1.csv".to_string(),
            rows: 4,
            bytes: 210,
            hash: "a1b2".to_string(),
            volatile: false,
        }];
        let blocks = BTreeMap::from([("solver".to_string(), "table1,e,-,0,0,1.5\n".to_string())]);
        let doc = checkpoint_doc("fp", &record, &artifacts, &blocks);
        let dir = std::env::temp_dir().join(format!("qjo-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("table1.json");
        qjo_resil::checkpoint::save(&path, &doc).unwrap();
        let ckpt = load_stage_checkpoint(&path, "fp", "table1").expect("valid checkpoint");
        assert_eq!(ckpt.duration_ms, 12.5);
        assert_eq!(ckpt.counters, record.counters);
        assert_eq!(ckpt.artifacts, artifacts);
        assert_eq!(ckpt.convergence, blocks);
        // Any identity mismatch invalidates the checkpoint.
        assert!(load_stage_checkpoint(&path, "other-fp", "table1").is_none());
        assert!(load_stage_checkpoint(&path, "fp", "fig2").is_none());
        assert!(load_stage_checkpoint(&dir.join("absent.json"), "fp", "table1").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
