//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [table1|fig2|table2|fig3|table3|fig4|fig5|timing|ablation|scaling|all]
//!             [--full|--smoke] [--csv DIR] [--metrics-out PATH]
//! experiments manifest-diff BASELINE CURRENT
//! ```
//!
//! Defaults are scaled to simulator throughput; `--full` raises the knobs
//! toward the paper's exact parameters (slower), `--smoke` lowers them to
//! a CI-sized sweep that finishes in a couple of minutes. `--csv DIR`
//! additionally writes each result as CSV into `DIR`.
//!
//! Every run also emits a machine-readable **run manifest** (see
//! `EXPERIMENTS.md`): per-stage durations and counter deltas, final
//! metrics, and a content fingerprint of every table. The manifest goes to
//! `--metrics-out PATH` if given, else `DIR/run_manifest.json` under
//! `--csv`, else `results/run_manifest.json`; set `QJO_MANIFEST=off` to
//! disable. `manifest-diff` compares the deterministic sections of two
//! manifests and exits non-zero on drift — CI's experiments gate.

use std::path::{Path, PathBuf};
use std::time::Instant;

use qjo_bench::report::Table;
use qjo_bench::{ablation, fig2, fig3, fig4, fig5, scaling, table1, table2, table3, timing};
use qjo_obs::json::Json;
use qjo_obs::manifest::{Artifact, RunManifest, StageRecord};

/// Knob scaling: the default simulator-throughput sweep, the paper-exact
/// `--full` sweep, or the CI-sized `--smoke` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Default,
    Full,
    Smoke,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Default => "default",
            Mode::Full => "full",
            Mode::Smoke => "smoke",
        }
    }
}

struct Options {
    which: Vec<String>,
    mode: Mode,
    csv_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

const USAGE: &str = "usage: experiments [table1|fig2|table2|fig3|table3|fig4|fig5|timing|ablation|scaling|all]... \
     [--full|--smoke] [--csv DIR] [--metrics-out PATH]\n       experiments manifest-diff BASELINE CURRENT";

fn parse_args() -> Options {
    let mut which = Vec::new();
    let mut mode = Mode::Default;
    let mut csv_dir = None;
    let mut metrics_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => mode = Mode::Full,
            "--smoke" => mode = Mode::Smoke,
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv requires a directory")));
            }
            "--metrics-out" => {
                metrics_out =
                    Some(PathBuf::from(args.next().expect("--metrics-out requires a path")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1", "fig2", "table2", "fig3", "table3", "fig4", "fig5", "timing", "ablation",
            "scaling",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Options { which, mode, csv_dir, metrics_out }
}

/// Collects the tables a run produces: prints them, optionally writes the
/// CSVs, and fingerprints every artifact for the run manifest.
struct Driver {
    options: Options,
    artifacts: Vec<Artifact>,
}

/// Tables whose cells contain wall-clock measurements; their manifest
/// entries are flagged volatile so the drift gate checks shape only.
const VOLATILE_ARTIFACTS: &[&str] = &["scaling_classical"];

/// Counters whose value depends on wall-clock (the embedder stops
/// retrying when its time budget runs out, so the attempt count varies
/// run to run even though results do not); the drift gate skips them.
const VOLATILE_COUNTERS: &[&str] = &["embed.tries"];

impl Driver {
    fn emit(&mut self, name: &str, title: &str, table: Table) {
        println!("== {title} ==\n");
        println!("{}", table.render());
        let csv = table.to_csv();
        self.artifacts.push(Artifact {
            name: format!("{name}.csv"),
            rows: table.num_rows() as u64,
            bytes: csv.len() as u64,
            hash: qjo_obs::fnv1a64_hex(csv.as_bytes()),
            volatile: VOLATILE_ARTIFACTS.contains(&name),
        });
        if let Some(dir) = &self.options.csv_dir {
            let path = dir.join(format!("{name}.csv"));
            match table.write_csv(&path) {
                Ok(()) => qjo_obs::info!("wrote {}", path.display()),
                Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
            }
        }
    }

    fn run_stage(&mut self, which: &str) {
        let mode = self.options.mode;
        let full = mode == Mode::Full;
        let smoke = mode == Mode::Smoke;
        match which {
            "table1" => {
                let cfg = table1::Table1Config::default();
                self.emit(
                    "table1",
                    "Table 1: original vs pruned MILP model",
                    table1::render(&table1::run(&cfg)),
                );
            }
            "fig2" => {
                let cfg = fig2::Fig2Config {
                    repetitions: if full {
                        20
                    } else if smoke {
                        3
                    } else {
                        10
                    },
                    ..Default::default()
                };
                self.emit(
                    "fig2",
                    "Figure 2: transpiled QAOA circuit depths on IBM Q",
                    fig2::render(&fig2::run(&cfg)),
                );
            }
            "table2" => {
                let cfg = table2::Table2Config {
                    max_predicates: if full { 3 } else { usize::from(!smoke) },
                    trajectories: if full {
                        16
                    } else if smoke {
                        2
                    } else {
                        8
                    },
                    shots: if smoke { 256 } else { 1024 },
                    iteration_budgets: if smoke { vec![20] } else { vec![20, 50] },
                    ..Default::default()
                };
                self.emit(
                    "table2",
                    "Table 2: QAOA solution quality under the Auckland noise model",
                    table2::render(&table2::run(&cfg)),
                );
            }
            "fig3" => {
                let cfg = fig3::Fig3Config {
                    relations: if full {
                        (3..=10).collect()
                    } else if smoke {
                        (3..=4).collect()
                    } else {
                        (3..=6).collect()
                    },
                    pegasus_m: if full {
                        26
                    } else if smoke {
                        8
                    } else {
                        16
                    },
                    threshold_counts: if full {
                        vec![1, 2, 4, 6, 10, 20]
                    } else if smoke {
                        vec![1, 2]
                    } else {
                        vec![1, 2, 4, 6]
                    },
                    ..Default::default()
                };
                self.emit(
                    "fig3",
                    "Figure 3: physical qubits to embed JO on the Pegasus-like annealer",
                    fig3::render(&fig3::run(&cfg)),
                );
            }
            "table3" => {
                let cfg = table3::Table3Config {
                    relations: if smoke { vec![3, 4] } else { vec![3, 4, 5] },
                    annealing_times_us: if smoke {
                        vec![20.0, 100.0]
                    } else {
                        vec![20.0, 60.0, 100.0]
                    },
                    instances: if full {
                        20
                    } else if smoke {
                        2
                    } else {
                        5
                    },
                    num_reads: if full {
                        1000
                    } else if smoke {
                        50
                    } else {
                        200
                    },
                    ..Default::default()
                };
                self.emit(
                    "table3",
                    "Table 3: annealing solution quality (SQA + ICE noise)",
                    table3::render(&table3::run(&cfg)),
                );
            }
            "fig4" => {
                let cfg = fig4::Fig4Config::default();
                self.emit(
                    "fig4",
                    "Figure 4: Theorem 5.3 logical-qubit upper bounds",
                    fig4::render(&fig4::run(&cfg)),
                );
            }
            "fig5" => {
                let cfg = fig5::Fig5Config {
                    relations: if full {
                        vec![3, 4, 5, 6]
                    } else if smoke {
                        vec![3, 4]
                    } else {
                        vec![3, 4, 5]
                    },
                    seeds: if full {
                        5
                    } else if smoke {
                        2
                    } else {
                        3
                    },
                    ..Default::default()
                };
                self.emit(
                    "fig5",
                    "Figure 5: circuit depths on hypothetical co-designed QPUs",
                    fig5::render(&fig5::run(&cfg)),
                );
            }
            "ablation" => {
                let cfg = ablation::AblationConfig {
                    num_reads: if smoke { 50 } else { 200 },
                    instances: if smoke { 1 } else { 3 },
                    ..Default::default()
                };
                self.emit(
                    "ablation_penalty",
                    "Ablation: penalty weight A vs annealed quality",
                    ablation::render_penalty(&ablation::run_penalty(&cfg)),
                );
                self.emit(
                    "ablation_pruning",
                    "Ablation: pruned vs original model, end to end",
                    ablation::render_pruning(&ablation::run_pruning(&cfg)),
                );
                let (noise_factors, noise_shots): (&[f64], usize) = if smoke {
                    (&[0.0, 1.0, 4.0], 256)
                } else {
                    (&[0.0, 0.5, 1.0, 2.0, 4.0], 1024)
                };
                self.emit(
                    "ablation_noise",
                    "Ablation: gate-noise scale vs QAOA quality",
                    ablation::render_noise(&ablation::run_noise(noise_factors, noise_shots, 0)),
                );
            }
            "scaling" => {
                let cfg = scaling::ClassicalScalingConfig {
                    relations: if smoke { vec![6, 10, 14] } else { vec![6, 10, 14, 18, 22] },
                    ..Default::default()
                };
                self.emit(
                    "scaling_classical",
                    "Scaling: classical join-ordering optimisers",
                    scaling::render_classical(&scaling::run_classical(&cfg)),
                );
                self.emit(
                    "scaling_generations",
                    "Scaling: annealer hardware generations (equal 2048-qubit budgets)",
                    scaling::render_generations(&scaling::run_hardware_generations(
                        if smoke { &[3, 4] } else { &[3, 4, 5] },
                        0,
                        16,
                    )),
                );
                let max_p = if full {
                    3
                } else if smoke {
                    1
                } else {
                    2
                };
                self.emit(
                    "scaling_qaoa_depth",
                    "Scaling: QAOA quality vs depth p (noiseless)",
                    scaling::render_qaoa_depth(&scaling::run_qaoa_depth(max_p, 0)),
                );
            }
            "timing" => {
                let cfg = timing::TimingConfig::default();
                self.emit(
                    "timing",
                    "Section 4.2.1: sampling vs total QPU time",
                    timing::render(&timing::run(&cfg)),
                );
            }
            other => {
                qjo_obs::error!("unknown experiment '{other}' (see --help)");
                std::process::exit(1);
            }
        }
    }
}

/// The commit the binary runs from, for the manifest's volatile section.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Where the manifest goes; `None` when `QJO_MANIFEST` opts out.
fn manifest_path(options: &Options) -> Option<PathBuf> {
    if let Ok(v) = std::env::var("QJO_MANIFEST") {
        if matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false" | "no") {
            return None;
        }
    }
    Some(options.metrics_out.clone().unwrap_or_else(|| {
        options.csv_dir.as_deref().unwrap_or(Path::new("results")).join("run_manifest.json")
    }))
}

fn write_manifest(
    options: &Options,
    stages: Vec<StageRecord>,
    artifacts: Vec<Artifact>,
    total: f64,
) {
    let Some(path) = manifest_path(options) else {
        qjo_obs::debug!("run manifest disabled via QJO_MANIFEST");
        return;
    };
    let mut manifest = RunManifest::default();
    manifest.run.insert("git_rev".to_string(), Json::from(git_rev()));
    manifest
        .run
        .insert("threads".to_string(), Json::from(qjo_exec::Parallelism::auto().resolve() as u64));
    manifest.run.insert("mode".to_string(), Json::from(options.mode.name()));
    manifest.run.insert(
        "experiments".to_string(),
        Json::Arr(options.which.iter().map(|w| Json::from(w.as_str())).collect()),
    );
    manifest.run.insert("total_duration_ms".to_string(), Json::from((total * 1e3).round() / 1e3));
    manifest.stages = stages;
    manifest.set_metrics(&qjo_obs::global().snapshot());
    manifest.artifacts = artifacts;
    manifest.volatile_counters = VOLATILE_COUNTERS.iter().map(|s| s.to_string()).collect();
    let rendered = manifest.render();
    let write = |path: &Path| -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, rendered.as_bytes())
    };
    match write(&path) {
        Ok(()) => qjo_obs::info!("wrote {}", path.display()),
        Err(e) => qjo_obs::error!("failed to write {}: {e}", path.display()),
    }
}

/// `manifest-diff BASELINE CURRENT`: compare deterministic sections, exit
/// 1 on drift.
fn manifest_diff(baseline_path: &str, current_path: &str) -> ! {
    let load = |p: &str| -> RunManifest {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            qjo_obs::error!("cannot read manifest {p}: {e}");
            std::process::exit(2);
        });
        RunManifest::parse(&text).unwrap_or_else(|e| {
            qjo_obs::error!("cannot parse manifest {p}: {e}");
            std::process::exit(2);
        })
    };
    let drift = qjo_obs::manifest::diff(&load(baseline_path), &load(current_path));
    if drift.is_empty() {
        qjo_obs::info!("no drift: {current_path} matches {baseline_path}");
        std::process::exit(0);
    }
    qjo_obs::error!("{} drift finding(s) between {baseline_path} and {current_path}:", drift.len());
    for line in &drift {
        qjo_obs::error!("  {line}");
    }
    std::process::exit(1);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("manifest-diff") {
        match raw.as_slice() {
            [_, baseline, current] => manifest_diff(baseline, current),
            _ => {
                qjo_obs::error!("manifest-diff takes exactly two manifest paths (see --help)");
                std::process::exit(2);
            }
        }
    }

    let options = parse_args();
    let run_start = Instant::now();
    let mut driver = Driver { options, artifacts: Vec::new() };
    let mut stages = Vec::new();
    for which in driver.options.which.clone() {
        let before = qjo_obs::global().snapshot();
        let start = Instant::now();
        {
            let _span = qjo_obs::span!("experiments.stage");
            driver.run_stage(&which);
        }
        let elapsed = start.elapsed();
        stages.push(StageRecord {
            name: which.clone(),
            duration_ms: elapsed.as_secs_f64() * 1e3,
            counters: qjo_obs::global().snapshot().counter_deltas_since(&before),
        });
        qjo_obs::info!("[{which} took {elapsed:.1?}]");
    }
    let Driver { options, artifacts } = driver;
    write_manifest(&options, stages, artifacts, run_start.elapsed().as_secs_f64() * 1e3);
}
