//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [table1|fig2|table2|fig3|table3|fig4|fig5|timing|ablation|scaling|all] [--full] [--csv DIR]
//! ```
//!
//! Defaults are scaled to simulator throughput; `--full` raises the knobs
//! toward the paper's exact parameters (slower). `--csv DIR` additionally
//! writes each result as CSV into `DIR`.

use std::path::PathBuf;

use qjo_bench::report::Table;
use qjo_bench::{ablation, fig2, fig3, fig4, fig5, scaling, table1, table2, table3, timing};

struct Options {
    which: Vec<String>,
    full: bool,
    csv_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut which = Vec::new();
    let mut full = false;
    let mut csv_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv requires a directory")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [table1|fig2|table2|fig3|table3|fig4|fig5|timing|ablation|scaling|all]... [--full] [--csv DIR]"
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1", "fig2", "table2", "fig3", "table3", "fig4", "fig5", "timing", "ablation",
            "scaling",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Options { which, full, csv_dir }
}

fn emit(options: &Options, name: &str, title: &str, table: Table) {
    println!("== {title} ==\n");
    println!("{}", table.render());
    if let Some(dir) = &options.csv_dir {
        let path = dir.join(format!("{name}.csv"));
        match table.write_csv(&path) {
            Ok(()) => println!("(wrote {})\n", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn main() {
    let options = parse_args();
    for which in options.which.clone() {
        let start = std::time::Instant::now();
        match which.as_str() {
            "table1" => {
                let cfg = table1::Table1Config::default();
                emit(
                    &options,
                    "table1",
                    "Table 1: original vs pruned MILP model",
                    table1::render(&table1::run(&cfg)),
                );
            }
            "fig2" => {
                let cfg = fig2::Fig2Config {
                    repetitions: if options.full { 20 } else { 10 },
                    ..Default::default()
                };
                emit(
                    &options,
                    "fig2",
                    "Figure 2: transpiled QAOA circuit depths on IBM Q",
                    fig2::render(&fig2::run(&cfg)),
                );
            }
            "table2" => {
                let cfg = table2::Table2Config {
                    max_predicates: if options.full { 3 } else { 1 },
                    trajectories: if options.full { 16 } else { 8 },
                    ..Default::default()
                };
                emit(
                    &options,
                    "table2",
                    "Table 2: QAOA solution quality under the Auckland noise model",
                    table2::render(&table2::run(&cfg)),
                );
            }
            "fig3" => {
                let cfg = fig3::Fig3Config {
                    relations: if options.full { (3..=10).collect() } else { (3..=6).collect() },
                    pegasus_m: if options.full { 26 } else { 16 },
                    threshold_counts: if options.full {
                        vec![1, 2, 4, 6, 10, 20]
                    } else {
                        vec![1, 2, 4, 6]
                    },
                    ..Default::default()
                };
                emit(
                    &options,
                    "fig3",
                    "Figure 3: physical qubits to embed JO on the Pegasus-like annealer",
                    fig3::render(&fig3::run(&cfg)),
                );
            }
            "table3" => {
                let cfg = table3::Table3Config {
                    instances: if options.full { 20 } else { 5 },
                    num_reads: if options.full { 1000 } else { 200 },
                    ..Default::default()
                };
                emit(
                    &options,
                    "table3",
                    "Table 3: annealing solution quality (SQA + ICE noise)",
                    table3::render(&table3::run(&cfg)),
                );
            }
            "fig4" => {
                let cfg = fig4::Fig4Config::default();
                emit(
                    &options,
                    "fig4",
                    "Figure 4: Theorem 5.3 logical-qubit upper bounds",
                    fig4::render(&fig4::run(&cfg)),
                );
            }
            "fig5" => {
                let cfg = fig5::Fig5Config {
                    relations: if options.full { vec![3, 4, 5, 6] } else { vec![3, 4, 5] },
                    seeds: if options.full { 5 } else { 3 },
                    ..Default::default()
                };
                emit(
                    &options,
                    "fig5",
                    "Figure 5: circuit depths on hypothetical co-designed QPUs",
                    fig5::render(&fig5::run(&cfg)),
                );
            }
            "ablation" => {
                let cfg = ablation::AblationConfig::default();
                emit(
                    &options,
                    "ablation_penalty",
                    "Ablation: penalty weight A vs annealed quality",
                    ablation::render_penalty(&ablation::run_penalty(&cfg)),
                );
                emit(
                    &options,
                    "ablation_pruning",
                    "Ablation: pruned vs original model, end to end",
                    ablation::render_pruning(&ablation::run_pruning(&cfg)),
                );
                emit(
                    &options,
                    "ablation_noise",
                    "Ablation: gate-noise scale vs QAOA quality",
                    ablation::render_noise(&ablation::run_noise(
                        &[0.0, 0.5, 1.0, 2.0, 4.0],
                        1024,
                        0,
                    )),
                );
            }
            "scaling" => {
                let cfg = scaling::ClassicalScalingConfig::default();
                emit(
                    &options,
                    "scaling_classical",
                    "Scaling: classical join-ordering optimisers",
                    scaling::render_classical(&scaling::run_classical(&cfg)),
                );
                emit(
                    &options,
                    "scaling_generations",
                    "Scaling: annealer hardware generations (equal 2048-qubit budgets)",
                    scaling::render_generations(&scaling::run_hardware_generations(
                        &[3, 4, 5],
                        0,
                        16,
                    )),
                );
                emit(
                    &options,
                    "scaling_qaoa_depth",
                    "Scaling: QAOA quality vs depth p (noiseless)",
                    scaling::render_qaoa_depth(&scaling::run_qaoa_depth(
                        if options.full { 3 } else { 2 },
                        0,
                    )),
                );
            }
            "timing" => {
                let cfg = timing::TimingConfig::default();
                emit(
                    &options,
                    "timing",
                    "Section 4.2.1: sampling vs total QPU time",
                    timing::render(&timing::run(&cfg)),
                );
            }
            other => {
                eprintln!("unknown experiment '{other}' (see --help)");
                std::process::exit(1);
            }
        }
        println!("[{which} took {:.1?}]\n", start.elapsed());
    }
}
