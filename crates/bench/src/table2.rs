//! Table 2: QAOA solution quality on (simulated) IBM Q Auckland.
//!
//! Three-relation queries with 0–3 predicates are encoded, the p = 1 QAOA
//! parameters are optimised classically (gradient descent standing in for
//! Qiskit's AQGD, with the paper's 20 and 50 iteration budgets), and 1024
//! shots are sampled from the circuit under the Auckland noise model. Shots
//! are decoded per Section 3.5 into valid/optimal fractions.
//!
//! Simulation-scale note: dense state-vector simulation costs O(2^n) per
//! gate, so the default configuration covers the 0- and 1-predicate
//! scenarios (18–22 qubits); the full 0–3 sweep (up to ~27 qubits) is
//! reachable via [`Table2Config::max_predicates`] given time and memory.

use qjo_core::classical::dp_optimal;
use qjo_core::{assess_samples, JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};
use qjo_exec::{par_map, Parallelism};
use qjo_gatesim::optim::GradientDescent;
use qjo_gatesim::{qaoa_circuit, NoiseModel, NoisySimulator, QaoaParams, QaoaSimulator};
use qjo_qubo::SampleSet;

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Largest predicate count swept (paper: 3).
    pub max_predicates: usize,
    /// Optimiser iteration budgets (paper: 20 and 50).
    pub iteration_budgets: Vec<usize>,
    /// Shots per sampled circuit (paper: 1024).
    pub shots: usize,
    /// Noise trajectories the shots are split over.
    pub trajectories: usize,
    /// Query seed.
    pub seed: u64,
    /// Cardinality log range. Varied cardinalities keep join orders
    /// cost-distinguishable (equal cardinalities make every valid order
    /// optimal); the resulting 19–28 qubit progression is one above the
    /// paper's 18–27, which only matters for transpilation, not sampling.
    pub log_card_range: (f64, f64),
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            max_predicates: 1,
            iteration_budgets: vec![20, 50],
            shots: 1024,
            trajectories: 8,
            seed: 0,
            log_card_range: (1.0, 3.0),
        }
    }
}

/// One (predicates, iterations) cell.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Number of predicates.
    pub predicates: usize,
    /// Logical qubits.
    pub qubits: usize,
    /// Optimiser iterations.
    pub iterations: usize,
    /// Fraction of shots decoding to a valid join order.
    pub valid: f64,
    /// Fraction of shots decoding to an optimal join order.
    pub optimal: f64,
}

/// Runs the sweep.
///
/// The per-predicate scenarios are independent and run in parallel; the
/// samplers inside each scenario are pinned to [`Parallelism::sequential`]
/// so the sweep-level fan-out is the only source of threads.
pub fn run(config: &Table2Config) -> Vec<Table2Row> {
    let gen = QueryGenerator {
        log_card_range: config.log_card_range,
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let predicate_counts: Vec<usize> = (0..=config.max_predicates).collect();
    let per_predicate = par_map(predicate_counts, Parallelism::auto(), |predicates| {
        let query = gen.with_predicate_count(config.seed, predicates);
        let enc =
            JoEncoder { thresholds: ThresholdSpec::Auto(1), ..Default::default() }.encode(&query);
        let (_, optimal_cost) = dp_optimal(&query);
        let sim = QaoaSimulator::new(&enc.qubo);
        let ising = enc.qubo.to_ising();

        let mut rows = Vec::new();
        for &iterations in &config.iteration_budgets {
            // Classical loop: the fast diagonal engine evaluates ⟨H⟩, the
            // optimiser is the AQGD stand-in at the paper's budget.
            let opt = GradientDescent { iterations, learning_rate: 0.05, fd_step: 1e-3 }
                .minimize(|x| sim.expectation(&QaoaParams::from_flat(1, x)), &[0.1, 0.1]);
            let params = QaoaParams::from_flat(1, &opt.x);

            // Quantum step: sample the tuned circuit under Auckland noise.
            let circuit = qaoa_circuit(&ising, &params);
            let noisy = NoisySimulator {
                model: NoiseModel::ibm_auckland(),
                trajectories: config.trajectories,
                seed: config.seed ^ (iterations as u64) << 8 ^ (predicates as u64),
                parallelism: Parallelism::sequential(),
            };
            let reads = noisy.sample(&circuit, config.shots);
            let samples = SampleSet::from_shots(&reads, |x| {
                enc.qubo.energy(x).expect("read length matches model")
            });
            let quality = assess_samples(&samples, &enc.registry, &query, optimal_cost);
            rows.push(Table2Row {
                predicates,
                qubits: enc.num_qubits(),
                iterations,
                valid: quality.valid_fraction,
                optimal: quality.optimal_fraction,
            });
        }
        rows
    });
    per_predicate.into_iter().flatten().collect()
}

/// Renders the rows.
pub fn render(rows: &[Table2Row]) -> Table {
    let mut t = Table::new(vec!["predicates", "qubits", "iterations", "valid", "optimal"]);
    for r in rows {
        t.push_row(vec![
            r.predicates.to_string(),
            r.qubits.to_string(),
            r.iterations.to_string(),
            pct(r.valid),
            pct(r.optimal),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Table2Config {
        Table2Config {
            max_predicates: 0,
            iteration_budgets: vec![4],
            shots: 256,
            trajectories: 4,
            seed: 0,
            log_card_range: (1.0, 1.0),
        }
    }

    #[test]
    fn produces_row_per_cell_with_sane_fractions() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.qubits >= 12, "3-relation encodings need ≥ 12 qubits");
        assert!((0.0..=1.0).contains(&r.valid));
        assert!((0.0..=1.0).contains(&r.optimal));
        assert!(r.optimal <= r.valid + 1e-12, "optimal shots are valid shots");
        assert_eq!(render(&rows).num_rows(), 1);
    }

    #[test]
    fn noisy_qaoa_still_finds_some_valid_solutions() {
        // The paper's qualitative finding: even with every sample set
        // containing constraint violations, a nonzero fraction of shots
        // decodes to valid join trees.
        let rows = run(&Table2Config { shots: 1024, ..tiny() });
        assert!(rows[0].valid > 0.0, "no valid shots at all");
    }
}
