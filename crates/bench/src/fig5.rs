//! Figure 5: circuit depths on hypothetical future QPUs (co-design study).
//!
//! For each relation count, the QAOA circuit (two thresholds, ω = 1) is
//! transpiled onto size-extrapolated IBM heavy-hex and Rigetti octagonal
//! devices — augmented to a range of extended-connectivity densities — and
//! onto fully-connected IonQ devices, with both native and unrestricted
//! gate sets and both transpiler pipelines (Qiskit-like and tket-like).

use qjo_core::{JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};
use qjo_gatesim::{qaoa_circuit, QaoaParams};
use qjo_transpile::{Device, NativeGateSet, Strategy, Transpiler};

use crate::report::Table;

/// Vendor families studied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vendor {
    /// IBM heavy-hex (superconducting, CX basis).
    Ibm,
    /// Rigetti octagonal (superconducting, CZ basis).
    Rigetti,
    /// IonQ trapped-ion (complete mesh, MS basis).
    Ionq,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Relation counts to sweep.
    pub relations: Vec<usize>,
    /// Extended-connectivity densities for the superconducting vendors.
    pub densities: Vec<f64>,
    /// Transpilation seeds averaged per point.
    pub seeds: usize,
    /// Query seed.
    pub query_seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            relations: vec![3, 4, 5],
            densities: vec![0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0],
            seeds: 3,
            query_seed: 0,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Vendor family.
    pub vendor: Vendor,
    /// Relations.
    pub relations: usize,
    /// Logical qubits of the problem.
    pub qubits: usize,
    /// Extended connectivity (0 for IonQ, which is already complete).
    pub density: f64,
    /// Native vs. unrestricted gates.
    pub gate_set: &'static str,
    /// Transpiler pipeline.
    pub transpiler: &'static str,
    /// Median circuit depth over the seeds.
    pub depth: usize,
}

/// Runs the sweep, parallelised over relation counts (the transpilation
/// workload per relation count is independent).
pub fn run(config: &Fig5Config) -> Vec<Fig5Row> {
    let per_relation =
        qjo_exec::par_map(config.relations.clone(), qjo_exec::Parallelism::auto(), |t| {
            run_for_relations(config, t)
        });
    per_relation.into_iter().flatten().collect()
}

fn run_for_relations(config: &Fig5Config, t: usize) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    {
        let query =
            QueryGenerator::paper_defaults(QueryGraph::Cycle, t).generate(config.query_seed);
        let enc =
            JoEncoder { thresholds: ThresholdSpec::Auto(2), omega: 1.0, ..Default::default() }
                .encode(&query);
        let n = enc.num_qubits();
        let circuit =
            qaoa_circuit(&enc.qubo.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });

        for vendor in [Vendor::Ibm, Vendor::Rigetti, Vendor::Ionq] {
            let base = match vendor {
                Vendor::Ibm => Device::ibm_extrapolated(n),
                Vendor::Rigetti => Device::rigetti_extrapolated(n),
                Vendor::Ionq => Device::ionq(n),
            };
            let densities: &[f64] = if vendor == Vendor::Ionq { &[0.0] } else { &config.densities };
            for &density in densities {
                let device =
                    if density == 0.0 { base.clone() } else { base.with_density(density, 17) };
                for (gate_label, gate_set) in
                    [("native", base.gate_set), ("unrestricted", NativeGateSet::Unrestricted)]
                {
                    for (tr_label, strategy) in
                        [("qiskit-like", Strategy::QiskitLike), ("tket-like", Strategy::TketLike)]
                    {
                        let depths = Transpiler::new(strategy, 0)
                            .depth_distribution(&circuit, &device.topology, gate_set, config.seeds)
                            .expect("extrapolated devices are connected");
                        let mut sorted = depths;
                        sorted.sort_unstable();
                        rows.push(Fig5Row {
                            vendor,
                            relations: t,
                            qubits: n,
                            density,
                            gate_set: gate_label,
                            transpiler: tr_label,
                            depth: sorted[sorted.len() / 2],
                        });
                    }
                }
            }
        }
    }
    rows
}

/// Renders the rows.
pub fn render(rows: &[Fig5Row]) -> Table {
    let mut t = Table::new(vec![
        "vendor",
        "relations",
        "qubits",
        "density",
        "gates",
        "transpiler",
        "median depth",
    ]);
    for r in rows {
        t.push_row(vec![
            format!("{:?}", r.vendor),
            r.relations.to_string(),
            r.qubits.to_string(),
            format!("{:.2}", r.density),
            r.gate_set.to_string(),
            r.transpiler.to_string(),
            r.depth.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig5Config {
        Fig5Config { relations: vec![3], densities: vec![0.0, 0.1, 1.0], seeds: 2, query_seed: 0 }
    }

    fn find<'a>(
        rows: &'a [Fig5Row],
        vendor: Vendor,
        density: f64,
        gates: &str,
        transpiler: &str,
    ) -> &'a Fig5Row {
        rows.iter()
            .find(|r| {
                r.vendor == vendor
                    && (r.density - density).abs() < 1e-9
                    && r.gate_set == gates
                    && r.transpiler == transpiler
            })
            .expect("row exists")
    }

    #[test]
    fn covers_the_grid() {
        let rows = run(&tiny());
        // IBM & Rigetti: 3 densities × 2 gates × 2 transpilers = 12 each;
        // IonQ: 1 × 2 × 2 = 4.
        assert_eq!(rows.len(), 12 + 12 + 4);
        assert_eq!(render(&rows).num_rows(), rows.len());
    }

    #[test]
    fn density_reduces_depth() {
        let rows = run(&tiny());
        for vendor in [Vendor::Ibm, Vendor::Rigetti] {
            let sparse = find(&rows, vendor, 0.0, "native", "qiskit-like").depth;
            let denser = find(&rows, vendor, 0.1, "native", "qiskit-like").depth;
            let mesh = find(&rows, vendor, 1.0, "native", "qiskit-like").depth;
            assert!(denser < sparse, "{vendor:?}: d=0.1 {denser} vs d=0 {sparse}");
            assert!(mesh <= denser, "{vendor:?}: mesh {mesh} vs d=0.1 {denser}");
        }
    }

    #[test]
    fn ionq_baseline_is_competitive_with_densified_superconductors() {
        let rows = run(&tiny());
        let ionq = find(&rows, Vendor::Ionq, 0.0, "native", "qiskit-like").depth;
        let ibm_sparse = find(&rows, Vendor::Ibm, 0.0, "native", "qiskit-like").depth;
        assert!(ionq < ibm_sparse, "IonQ {ionq} vs sparse IBM {ibm_sparse}");
    }

    #[test]
    fn native_gates_cost_depth_on_rigetti() {
        // The paper: native-vs-unrestricted matters on Rigetti (CZ + RX
        // synthesis) more than on IBM.
        let rows = run(&tiny());
        let native = find(&rows, Vendor::Rigetti, 0.0, "native", "qiskit-like").depth;
        let unrestricted = find(&rows, Vendor::Rigetti, 0.0, "unrestricted", "qiskit-like").depth;
        assert!(native > unrestricted, "native {native} vs unrestricted {unrestricted}");
    }

    #[test]
    fn tket_like_overhead_appears_on_sparse_superconductors() {
        let rows = run(&tiny());
        let qk = find(&rows, Vendor::Ibm, 0.0, "native", "qiskit-like").depth;
        let tk = find(&rows, Vendor::Ibm, 0.0, "native", "tket-like").depth;
        assert!(tk > qk, "tket-like {tk} vs qiskit-like {qk}");
    }
}
