//! Table 3: annealing solution quality vs. relations and annealing time.
//!
//! Queries of 3–5 relations per graph type are encoded, embedded, and
//! annealed on the simulated Advantage (SQA + ICE noise) for annealing
//! times of 20/60/100 µs. Reads are decoded into valid/optimal fractions,
//! averaged over several random instances — the paper uses 20 instances ×
//! 1000 reads; the defaults here are scaled to simulator throughput and
//! configurable up to the paper's numbers.

use qjo_anneal::hardware::pegasus_like;
use qjo_anneal::{AnnealerSampler, SqaConfig};
use qjo_core::classical::dp_optimal;
use qjo_core::{assess_samples, JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};
use qjo_exec::{par_map, Parallelism};

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table3Config {
    /// Relation counts (paper: 3, 4, 5).
    pub relations: Vec<usize>,
    /// Graph types.
    pub graphs: Vec<QueryGraph>,
    /// Annealing times in µs (paper: 20, 60, 100).
    pub annealing_times_us: Vec<f64>,
    /// Random instances per cell (paper: 20).
    pub instances: usize,
    /// Reads per instance (paper: 1000).
    pub num_reads: usize,
    /// Pegasus-like tile-grid size.
    pub pegasus_m: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            relations: vec![3, 4, 5],
            graphs: vec![QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle],
            annealing_times_us: vec![20.0, 60.0, 100.0],
            instances: 5,
            num_reads: 200,
            pegasus_m: 12,
            seed: 0,
        }
    }
}

/// One table cell: averaged valid/optimal fractions.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Graph type.
    pub graph: QueryGraph,
    /// Relations.
    pub relations: usize,
    /// Annealing time, µs.
    pub annealing_time_us: f64,
    /// Mean fraction of valid reads across instances.
    pub valid: f64,
    /// Mean fraction of optimal reads across instances.
    pub optimal: f64,
    /// Mean chain-break fraction.
    pub chain_breaks: f64,
    /// Instances that failed to embed (excluded from the averages).
    pub embed_failures: usize,
}

/// Runs the sweep.
///
/// The `(graph, relations)` cells are independent and run in parallel; the
/// samplers inside each cell are pinned to [`Parallelism::sequential`] so
/// the sweep-level fan-out is the only source of threads. Cell results are
/// flattened in sweep order, so row order matches the sequential version.
pub fn run(config: &Table3Config) -> Vec<Table3Row> {
    let target = pegasus_like(config.pegasus_m);
    // A 3-relation star is identical to a 3-relation chain; the paper
    // leaves those cells blank.
    let cells: Vec<(QueryGraph, usize)> = config
        .graphs
        .iter()
        .flat_map(|&graph| config.relations.iter().map(move |&t| (graph, t)))
        .filter(|&(graph, t)| !(graph == QueryGraph::Star && t < 4))
        .collect();

    let per_cell = par_map(cells, Parallelism::auto(), |(graph, t)| {
        // Accumulators per annealing time, filled instance by instance
        // so each instance is embedded exactly once.
        let n_dt = config.annealing_times_us.len();
        let mut valid_sum = vec![0.0; n_dt];
        let mut optimal_sum = vec![0.0; n_dt];
        let mut cbf_sum = vec![0.0; n_dt];
        let mut ok = 0usize;
        let mut failures = 0usize;
        for inst in 0..config.instances {
            let seed = config.seed + inst as u64;
            let query = QueryGenerator::paper_defaults(graph, t).generate(seed);
            let enc = JoEncoder { thresholds: ThresholdSpec::Auto(1), ..Default::default() }
                .encode(&query);
            let base = AnnealerSampler {
                num_reads: config.num_reads,
                sqa: SqaConfig { seed, ..Default::default() },
                parallelism: Parallelism::sequential(),
                ..AnnealerSampler::new(target.clone())
            };
            let Ok(embedding) = base.embed(&enc.qubo) else {
                failures += 1;
                continue;
            };
            ok += 1;
            let (_, opt_cost) = dp_optimal(&query);
            for (k, &dt) in config.annealing_times_us.iter().enumerate() {
                let sampler = AnnealerSampler { annealing_time_us: dt, ..base.clone() };
                let outcome = sampler.sample_qubo_with_embedding(&enc.qubo, embedding.clone());
                let quality = assess_samples(&outcome.samples, &enc.registry, &query, opt_cost);
                valid_sum[k] += quality.valid_fraction;
                optimal_sum[k] += quality.optimal_fraction;
                cbf_sum[k] += outcome.chain_break_fraction;
            }
        }
        let denom = ok.max(1) as f64;
        config
            .annealing_times_us
            .iter()
            .enumerate()
            .map(|(k, &dt)| Table3Row {
                graph,
                relations: t,
                annealing_time_us: dt,
                valid: valid_sum[k] / denom,
                optimal: optimal_sum[k] / denom,
                chain_breaks: cbf_sum[k] / denom,
                embed_failures: failures,
            })
            .collect::<Vec<_>>()
    });
    per_cell.into_iter().flatten().collect()
}

/// Renders the rows.
pub fn render(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(vec![
        "graph",
        "relations",
        "Δt [µs]",
        "valid",
        "optimal",
        "chain breaks",
        "embed failures",
    ]);
    for r in rows {
        t.push_row(vec![
            format!("{:?}", r.graph),
            r.relations.to_string(),
            format!("{}", r.annealing_time_us),
            pct(r.valid),
            pct(r.optimal),
            pct(r.chain_breaks),
            r.embed_failures.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Table3Config {
        Table3Config {
            relations: vec![3, 4],
            graphs: vec![QueryGraph::Chain],
            annealing_times_us: vec![20.0],
            instances: 2,
            num_reads: 60,
            pegasus_m: 6,
            seed: 0,
        }
    }

    #[test]
    fn produces_fractions_in_range_and_embeds() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.embed_failures, 0, "T={} failed to embed", r.relations);
            assert!((0.0..=1.0).contains(&r.valid));
            assert!(r.optimal <= r.valid + 1e-12);
        }
        assert_eq!(render(&rows).num_rows(), 2);
    }

    #[test]
    fn quality_declines_with_relations() {
        // The paper's steep collapse from 3 to 4+ relations.
        let rows = run(&Table3Config { num_reads: 150, instances: 3, ..tiny() });
        let at = |t: usize| rows.iter().find(|r| r.relations == t).expect("row");
        assert!(
            at(3).valid > at(4).valid,
            "3-relation validity {} should exceed 4-relation {}",
            at(3).valid,
            at(4).valid
        );
    }

    #[test]
    fn three_relation_star_is_skipped() {
        let rows = run(&Table3Config {
            graphs: vec![QueryGraph::Star],
            relations: vec![3, 4],
            instances: 1,
            num_reads: 30,
            ..tiny()
        });
        assert!(rows.iter().all(|r| r.relations == 4));
    }
}
