//! Table 1: variables and constraints in the original vs. pruned MILP.
//!
//! The paper's Table 1 gives closed-form counts; this experiment builds
//! both models for concrete queries and reports the realised counts per
//! category, confirming the formulas.

use qjo_core::formulate::{build_milp, ConstraintKind, JoMilpConfig};
use qjo_core::{QueryGenerator, QueryGraph};

use crate::report::Table;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Relation counts to sweep.
    pub relations: Vec<usize>,
    /// Number of thresholds `R`.
    pub thresholds: usize,
    /// Query graph shape.
    pub graph: QueryGraph,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            relations: vec![3, 5, 8, 12, 16, 20],
            thresholds: 2,
            graph: QueryGraph::Cycle,
            seed: 0,
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Relations `T`.
    pub relations: usize,
    /// Predicates `P`.
    pub predicates: usize,
    /// `pao` variables: (original, pruned).
    pub pao_vars: (usize, usize),
    /// `cto` variables: (original, pruned).
    pub cto_vars: (usize, usize),
    /// Operand-disjointness constraints: (original, pruned).
    pub disjoint_constraints: (usize, usize),
    /// Predicate-applicability constraints: (original, pruned).
    pub pred_constraints: (usize, usize),
    /// Cardinality-threshold constraints: (original, pruned).
    pub card_constraints: (usize, usize),
    /// Total binary variables incl. slack after BILP conversion:
    /// (original, pruned).
    pub total_qubits: (usize, usize),
}

/// Runs the experiment.
pub fn run(config: &Table1Config) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &t in &config.relations {
        let query = QueryGenerator::paper_defaults(config.graph, t).generate(config.seed);
        let thresholds = qjo_core::formulate::auto_thresholds(&query, config.thresholds);
        let build = |prune: bool| {
            let milp = build_milp(
                &query,
                &JoMilpConfig { log_thresholds: thresholds.clone(), omega: 1.0, prune },
            );
            let counts = milp.constraint_counts();
            let get = |k| counts.get(&k).copied().unwrap_or(0);
            let (_, _, pao, cto, _) = milp.registry.counts();
            let bilp = qjo_core::formulate::milp_to_bilp(&milp);
            (
                pao,
                cto,
                get(ConstraintKind::OperandDisjoint),
                get(ConstraintKind::PredApplicable),
                get(ConstraintKind::CardThreshold),
                bilp.num_vars(),
            )
        };
        let o = build(false);
        let p = build(true);
        rows.push(Table1Row {
            relations: t,
            predicates: query.num_predicates(),
            pao_vars: (o.0, p.0),
            cto_vars: (o.1, p.1),
            disjoint_constraints: (o.2, p.2),
            pred_constraints: (o.3, p.3),
            card_constraints: (o.4, p.4),
            total_qubits: (o.5, p.5),
        });
    }
    rows
}

/// Renders the rows as a text table.
pub fn render(rows: &[Table1Row]) -> Table {
    let mut t = Table::new(vec![
        "T",
        "P",
        "pao o/p",
        "cto o/p",
        "disj o/p",
        "pred o/p",
        "card o/p",
        "qubits o/p",
    ]);
    for r in rows {
        let pair = |(a, b): (usize, usize)| format!("{a}/{b}");
        t.push_row(vec![
            r.relations.to_string(),
            r.predicates.to_string(),
            pair(r.pao_vars),
            pair(r.cto_vars),
            pair(r.disjoint_constraints),
            pair(r.pred_constraints),
            pair(r.card_constraints),
            pair(r.total_qubits),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_table_1_formulas() {
        let rows = run(&Table1Config {
            relations: vec![4, 6],
            thresholds: 2,
            graph: QueryGraph::Cycle,
            seed: 1,
        });
        for r in &rows {
            let t = r.relations;
            let j = t - 1;
            let p = r.predicates;
            assert_eq!(p, t, "cycle graph has T predicates");
            // Variables: pao PJ vs P(J−1); cto RJ vs ≤ R(J−1).
            assert_eq!(r.pao_vars.0, p * j);
            assert_eq!(r.pao_vars.1, p * (j - 1));
            assert_eq!(r.cto_vars.0, 2 * j);
            assert!(r.cto_vars.1 <= 2 * (j - 1));
            // Constraints: disjoint TJ vs T; pred 2PJ vs 2P(J−1).
            assert_eq!(r.disjoint_constraints.0, t * j);
            assert_eq!(r.disjoint_constraints.1, t);
            assert_eq!(r.pred_constraints.0, 2 * p * j);
            assert_eq!(r.pred_constraints.1, 2 * p * (j - 1));
            assert_eq!(r.card_constraints.0, 2 * j);
            assert!(r.card_constraints.1 <= 2 * (j - 1));
            // Pruning strictly shrinks the qubit count.
            assert!(r.total_qubits.1 < r.total_qubits.0);
        }
    }

    #[test]
    fn render_emits_one_line_per_row() {
        let rows = run(&Table1Config { relations: vec![3, 4, 5], ..Default::default() });
        let table = render(&rows);
        assert_eq!(table.num_rows(), 3);
        assert!(table.render().contains("qubits o/p"));
    }
}
