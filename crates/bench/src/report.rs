//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width mismatch: header {:?} has {} columns but row {:?} has {}",
            self.header,
            self.header.len(),
            row,
            row.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[c] + 2);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let esc = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
        out.push_str(" |\n|");
        out.push_str(&" --- |".repeat(self.header.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting: cells containing commas, quotes,
    /// or line breaks are quoted, with embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let line = |row: &[String]| row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// Goes through [`qjo_resil::atomic_write`] (temp file + rename), so a
    /// crash mid-write never leaves a truncated artifact behind.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        qjo_resil::atomic_write(path, self.to_csv().as_bytes())
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a float compactly.
pub fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["wide-cell", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn markdown_renders_header_separator_and_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "x|y"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "| --- | --- |");
        assert!(lines[2].contains("x\\|y"), "pipes must be escaped: {md}");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(vec!["a,b", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn csv_quotes_newlines_and_carriage_returns() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(vec!["line1\nline2", "cr\rcell"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"line1\nline2\""), "{csv:?}");
        assert!(csv.contains("\"cr\rcell\""), "{csv:?}");
        // The quoted line break must not produce an unbalanced record: the
        // number of quote characters stays even.
        assert_eq!(csv.matches('"').count() % 2, 0);
    }

    #[test]
    fn csv_leaves_plain_cells_unquoted() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1.5", "plain text"]);
        assert_eq!(t.to_csv(), "a,b\n1.5,plain text\n");
    }

    #[test]
    fn render_pads_every_column_to_its_widest_cell() {
        let mut t = Table::new(vec!["id", "name"]);
        t.push_row(vec!["1", "abc"]);
        t.push_row(vec!["23456", "x"]);
        let lines: Vec<String> = t.render().lines().map(String::from).collect();
        // Each column is padded to max(cell) + 2, so the second column
        // starts at the same offset in every row.
        let offset = lines[0].find("name").unwrap();
        assert_eq!(lines[2].find("abc").unwrap(), offset);
        assert_eq!(lines[3].find('x').unwrap(), offset);
        // Separator spans the full table width.
        assert_eq!(lines[1].len(), ("23456".len() + 2) + ("name".len() + 2));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn ragged_row_panic_names_header_and_row() {
        let err = std::panic::catch_unwind(|| {
            let mut t = Table::new(vec!["alpha", "beta"]);
            t.push_row(vec!["lonely-cell"]);
        })
        .expect_err("ragged row must panic");
        let message = err.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("row width mismatch"), "{message}");
        assert!(message.contains("alpha") && message.contains("beta"), "{message}");
        assert!(message.contains("lonely-cell"), "{message}");
    }

    #[test]
    fn write_csv_creates_parent_directories() {
        let dir = std::env::temp_dir()
            .join(format!("qjo-report-test-{}", std::process::id()))
            .join("nested/deeper");
        let path = dir.join("out.csv");
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["1"]);
        t.write_csv(&path).expect("parent dirs are created on demand");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(1.23456), "1.235");
    }
}
