//! Figure 2: QAOA circuit depths after transpilation onto IBM Q devices.
//!
//! Left panel: 3-relation problems at 18/21/24/27 qubits, reached either by
//! raising the discretisation precision (0–3 decimal places) or by adding
//! predicates (0–3), transpiled onto IBM Q Auckland. Right panel: the
//! predicate sweep on Auckland (Falcon, 27q) vs. Washington (Eagle, 127q).
//! 20 transpilation repetitions per scenario give the depth distributions.

use qjo_core::{JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};
use qjo_gatesim::{qaoa_circuit, QaoaParams};
use qjo_transpile::{DepthStats, Device, Strategy, Transpiler};

use crate::report::{num, Table};

/// Which knob produced the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Decimal places of discretisation precision (ω = 10^−d).
    Precision(usize),
    /// Number of predicates kept.
    Predicates(usize),
}

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Device name.
    pub device: String,
    /// The varied knob.
    pub knob: Knob,
    /// Logical qubits of the encoding.
    pub qubits: usize,
    /// Depth distribution over the transpilation repetitions.
    pub depth: DepthStats,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Transpilation repetitions per scenario (paper: 20).
    pub repetitions: usize,
    /// Query seed.
    pub seed: u64,
    /// Maximum knob value (paper: 3).
    pub max_knob: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config { repetitions: 20, seed: 0, max_knob: 3 }
    }
}

fn encode_scenario(seed: u64, knob: Knob) -> qjo_core::JoQubo {
    // Cardinality 10 for every relation gives c_max = 2, which lands the
    // base case at exactly 18 qubits and each knob step at +3 — the
    // 18/21/24/27 progression of the paper's Section 4.1.
    let gen = QueryGenerator {
        log_card_range: (1.0, 1.0),
        ..QueryGenerator::paper_defaults(QueryGraph::Cycle, 3)
    };
    let (query, omega) = match knob {
        Knob::Precision(decimals) => {
            (gen.with_predicate_count(seed, 0), 10f64.powi(-(decimals as i32)))
        }
        Knob::Predicates(p) => (gen.with_predicate_count(seed, p), 1.0),
    };
    JoEncoder { thresholds: ThresholdSpec::Auto(1), omega, ..Default::default() }.encode(&query)
}

fn measure(device: &Device, encoded: &qjo_core::JoQubo, repetitions: usize) -> DepthStats {
    let params = QaoaParams { gammas: vec![0.4], betas: vec![0.3] };
    let circuit = qaoa_circuit(&encoded.qubo.to_ising(), &params);
    let depths = Transpiler::new(Strategy::QiskitLike, 0)
        .depth_distribution(&circuit, &device.topology, device.gate_set, repetitions)
        .expect("paper devices are connected");
    DepthStats::from_samples(&depths)
}

/// Runs both panels.
///
/// Every `(device, knob)` scenario is an independent work unit; the sweep
/// fans them out with [`qjo_exec::par_map`], which preserves scenario order
/// regardless of thread count.
pub fn run(config: &Fig2Config) -> Vec<Fig2Row> {
    let devices = [Device::ibm_auckland(), Device::ibm_washington()];
    let (auckland, washington) = (0usize, 1usize);

    // Left panel on Auckland: precision sweep, then predicate sweep.
    // Right panel: predicate sweep on Washington.
    let mut scenarios: Vec<(usize, Knob)> = Vec::new();
    scenarios.extend((0..=config.max_knob).map(|d| (auckland, Knob::Precision(d))));
    scenarios.extend((0..=config.max_knob).map(|p| (auckland, Knob::Predicates(p))));
    scenarios.extend((0..=config.max_knob).map(|p| (washington, Knob::Predicates(p))));

    qjo_exec::par_map(scenarios, qjo_exec::Parallelism::auto(), |(dev, knob)| {
        let device = &devices[dev];
        let enc = encode_scenario(config.seed, knob);
        Fig2Row {
            device: device.name.clone(),
            knob,
            qubits: enc.num_qubits(),
            depth: measure(device, &enc, config.repetitions),
        }
    })
}

/// Renders the rows.
pub fn render(rows: &[Fig2Row]) -> Table {
    let mut t =
        Table::new(vec!["device", "knob", "value", "qubits", "depth min", "median", "max", "mean"]);
    for r in rows {
        let (kind, value) = match r.knob {
            Knob::Precision(d) => ("precision (decimals)", d),
            Knob::Predicates(p) => ("predicates", p),
        };
        t.push_row(vec![
            r.device.clone(),
            kind.to_string(),
            value.to_string(),
            r.qubits.to_string(),
            r.depth.min.to_string(),
            r.depth.median.to_string(),
            r.depth.max.to_string(),
            num(r.depth.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig2Config {
        Fig2Config { repetitions: 5, seed: 0, max_knob: 2 }
    }

    #[test]
    fn produces_all_panel_rows() {
        let rows = run(&small());
        // 3 precision + 3 predicate rows on Auckland, 3 on Washington.
        assert_eq!(rows.len(), 9);
        assert_eq!(render(&rows).num_rows(), 9);
    }

    #[test]
    fn qubit_counts_increase_along_each_knob() {
        let rows = run(&small());
        let precision: Vec<usize> = rows
            .iter()
            .filter(|r| matches!(r.knob, Knob::Precision(_)))
            .map(|r| r.qubits)
            .collect();
        assert!(precision.windows(2).all(|w| w[0] < w[1]), "{precision:?}");
        let preds: Vec<usize> = rows
            .iter()
            .filter(|r| matches!(r.knob, Knob::Predicates(_)) && r.device.contains("auckland"))
            .map(|r| r.qubits)
            .collect();
        assert!(preds.windows(2).all(|w| w[0] < w[1]), "{preds:?}");
    }

    #[test]
    fn depth_grows_with_precision_faster_than_with_predicates() {
        // The paper's key Fig. 2 observation, compared at the same qubit
        // growth (knob value 0 → 2).
        let rows = run(&Fig2Config { repetitions: 8, seed: 0, max_knob: 2 });
        let median_of = |knob: Knob| {
            rows.iter()
                .find(|r| r.knob == knob && r.device.contains("auckland"))
                .map(|r| r.depth.median as f64)
                .expect("row exists")
        };
        let precision_growth = median_of(Knob::Precision(2)) / median_of(Knob::Precision(0));
        let predicate_growth = median_of(Knob::Predicates(2)) / median_of(Knob::Predicates(0));
        assert!(
            precision_growth > predicate_growth * 0.9,
            "precision {precision_growth:.2} vs predicates {predicate_growth:.2}"
        );
    }
}
