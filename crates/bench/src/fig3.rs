//! Figure 3: physical qubits needed to embed JO QUBOs onto the annealer.
//!
//! Top panel: relations swept per query-graph type (chain/star/cycle) at
//! minimal precision (ω = 1, one threshold). Bottom panel: threshold count
//! swept at a fixed relation count for several discretisation precisions.
//! The reported quantity is the total physical qubits of the minor
//! embedding onto the Pegasus-like hardware graph; a missing value means
//! the embedding heuristic failed (the feasibility frontier).

use qjo_anneal::hardware::pegasus_like;
use qjo_anneal::Embedder;
use qjo_core::{JoEncoder, QueryGenerator, QueryGraph, ThresholdSpec};
use qjo_transpile::Topology;

use crate::report::Table;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Relation counts for the top panel.
    pub relations: Vec<usize>,
    /// Graph types for the top panel.
    pub graphs: Vec<QueryGraph>,
    /// Relation count for the bottom panel (paper: 8; smaller default —
    /// see the embedder frontier note in DESIGN.md).
    pub bottom_relations: usize,
    /// Threshold counts for the bottom panel.
    pub threshold_counts: Vec<usize>,
    /// Discretisation precisions for the bottom panel.
    pub omegas: Vec<f64>,
    /// Pegasus-like tile-grid size `m` (26 ≈ Advantage scale; smaller is
    /// faster and suffices for small problems).
    pub pegasus_m: usize,
    /// Query seed.
    pub seed: u64,
    /// Embedding attempts (keep low: failures are expensive).
    pub embed_tries: usize,
    /// Improvement passes per embedding attempt.
    pub embed_passes: usize,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            relations: (3..=6).collect(),
            graphs: vec![QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle],
            bottom_relations: 4,
            threshold_counts: vec![1, 2, 3, 4],
            omegas: vec![1.0, 0.01],
            pegasus_m: 16,
            seed: 0,
            embed_tries: 2,
            embed_passes: 100,
        }
    }
}

/// One embedding measurement.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Panel label: "relations" (top) or "thresholds" (bottom).
    pub panel: &'static str,
    /// Graph type.
    pub graph: QueryGraph,
    /// Relations.
    pub relations: usize,
    /// Threshold count.
    pub thresholds: usize,
    /// Discretisation precision.
    pub omega: f64,
    /// Logical qubits (QUBO variables).
    pub logical_qubits: usize,
    /// Physical qubits of the embedding; `None` when embedding failed.
    pub physical_qubits: Option<usize>,
    /// Longest chain, when embedded.
    pub max_chain: Option<usize>,
}

#[allow(clippy::too_many_arguments)] // experiment knobs, called twice
fn embed_one(
    graph: QueryGraph,
    relations: usize,
    thresholds: usize,
    omega: f64,
    target: &Topology,
    seed: u64,
    tries: usize,
    passes: usize,
) -> Fig3Row {
    let query = QueryGenerator::paper_defaults(graph, relations).generate(seed);
    let enc =
        JoEncoder { thresholds: ThresholdSpec::Auto(thresholds), omega, ..Default::default() }
            .encode(&query);
    let edges: Vec<(usize, usize)> = enc.qubo.quadratic_iter().map(|(i, j, _)| (i, j)).collect();
    let embedder =
        Embedder { max_tries: tries, improvement_passes: passes, seed, ..Default::default() };
    let embedding = embedder.embed(enc.num_qubits(), &edges, target);
    Fig3Row {
        panel: "",
        graph,
        relations,
        thresholds,
        omega,
        logical_qubits: enc.num_qubits(),
        physical_qubits: embedding.as_ref().map(|e| e.num_physical_qubits()),
        max_chain: embedding.as_ref().map(|e| e.max_chain_length()),
    }
}

/// Runs both panels.
pub fn run(config: &Fig3Config) -> Vec<Fig3Row> {
    let target = pegasus_like(config.pegasus_m);
    let mut rows = Vec::new();
    for &graph in &config.graphs {
        for &t in &config.relations {
            if graph == QueryGraph::Cycle && t < 3 {
                continue;
            }
            let mut row = embed_one(
                graph,
                t,
                1,
                1.0,
                &target,
                config.seed,
                config.embed_tries,
                config.embed_passes,
            );
            row.panel = "relations";
            rows.push(row);
        }
    }
    for &omega in &config.omegas {
        for &r in &config.threshold_counts {
            let mut row = embed_one(
                QueryGraph::Chain,
                config.bottom_relations,
                r,
                omega,
                &target,
                config.seed,
                config.embed_tries,
                config.embed_passes,
            );
            row.panel = "thresholds";
            rows.push(row);
        }
    }
    rows
}

/// Renders the rows.
pub fn render(rows: &[Fig3Row]) -> Table {
    let mut t = Table::new(vec![
        "panel",
        "graph",
        "relations",
        "thresholds",
        "omega",
        "logical",
        "physical",
        "max chain",
    ]);
    for r in rows {
        t.push_row(vec![
            r.panel.to_string(),
            format!("{:?}", r.graph),
            r.relations.to_string(),
            r.thresholds.to_string(),
            format!("{}", r.omega),
            r.logical_qubits.to_string(),
            r.physical_qubits.map_or("FAIL".into(), |v| v.to_string()),
            r.max_chain.map_or("-".into(), |v| v.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig3Config {
        Fig3Config {
            relations: vec![3, 4],
            graphs: vec![QueryGraph::Chain, QueryGraph::Cycle],
            bottom_relations: 4,
            threshold_counts: vec![1, 3],
            omegas: vec![1.0],
            pegasus_m: 12,
            seed: 0,
            embed_tries: 4,
            embed_passes: 80,
        }
    }

    #[test]
    fn small_instances_embed_successfully() {
        let rows = run(&tiny());
        for r in &rows {
            assert!(
                r.physical_qubits.is_some(),
                "{:?} T={} R={} failed to embed",
                r.graph,
                r.relations,
                r.thresholds
            );
            // Embedding overhead is at least 1 physical per logical qubit.
            assert!(r.physical_qubits.unwrap() >= r.logical_qubits);
        }
    }

    #[test]
    fn physical_qubits_grow_with_relations() {
        let rows = run(&tiny());
        let chain: Vec<usize> = rows
            .iter()
            .filter(|r| r.panel == "relations" && r.graph == QueryGraph::Chain)
            .map(|r| r.physical_qubits.expect("embedded"))
            .collect();
        assert!(chain.windows(2).all(|w| w[0] < w[1]), "{chain:?}");
    }

    #[test]
    fn more_thresholds_cost_more_physical_qubits() {
        // Embedding heuristics have run-to-run noise, so compare a wide
        // threshold gap (R = 1 vs R = 4) where logical growth dominates.
        let rows = run(&tiny());
        let bottom: Vec<(usize, usize)> = rows
            .iter()
            .filter(|r| r.panel == "thresholds")
            .map(|r| (r.logical_qubits, r.physical_qubits.expect("embedded")))
            .collect();
        assert_eq!(bottom.len(), 2);
        assert!(bottom[1].0 > bottom[0].0, "logical counts must grow: {bottom:?}");
        assert!(bottom[1].1 > bottom[0].1, "physical counts should follow: {bottom:?}");
    }

    #[test]
    fn cycle_needs_at_least_as_much_as_chain() {
        // The paper: cycle queries are slightly larger (one extra predicate).
        let rows = run(&tiny());
        let get = |graph: QueryGraph, t: usize| {
            rows.iter()
                .find(|r| r.panel == "relations" && r.graph == graph && r.relations == t)
                .and_then(|r| r.physical_qubits)
                .expect("embedded")
        };
        for t in [3, 4] {
            assert!(
                get(QueryGraph::Cycle, t) + 8 >= get(QueryGraph::Chain, t),
                "cycle much smaller than chain at T={t}"
            );
        }
    }
}
