//! Sequence-related random helpers.

use crate::{RngCore, RngExt};

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Random element selection from slices.
pub trait IndexedRandom<T> {
    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T>;
}

impl<T> IndexedRandom<T> for [T] {
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).expect("non-empty");
            seen[x / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
