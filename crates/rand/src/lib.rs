//! Self-contained stand-in for the `rand` crate.
//!
//! The workspace builds in hermetic environments with no crate-registry
//! access, so the subset of the `rand` API that the other crates actually
//! use is implemented here: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], uniform sampling through
//! [`RngExt::random`] / [`RngExt::random_bool`] / [`RngExt::random_range`],
//! and the slice helpers [`seq::SliceRandom::shuffle`] and
//! [`seq::IndexedRandom::choose`].
//!
//! The engine is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! counter advanced by the golden-ratio increment and passed through a
//! finaliser mix. It is statistically solid for Monte-Carlo use (passes
//! BigCrush), trivially seedable from a single `u64`, and — crucially for
//! the deterministic parallel execution layer in `qjo-exec` — cheap to
//! fork into per-work-unit streams. It is *not* cryptographically secure.
//!
//! Determinism contract: for a fixed seed, every generator here produces
//! the same sequence on every platform and build. Golden values in tests
//! may rely on that.

pub mod rngs;
pub mod seq;

/// Golden-ratio increment of the SplitMix64 counter.
pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finaliser: bijective avalanche mix of a 64-bit word.
#[inline]
pub(crate) fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform random bits (the high half of
    /// [`next_u64`](RngCore::next_u64), which has the best avalanche).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 uniform bits onto `[0, span)` by widening multiplication.
///
/// The bias is at most `span / 2^64`, far below anything observable at
/// Monte-Carlo sample counts, and sampling stays a single multiply —
/// branch-free and deterministic across platforms.
#[inline]
fn mul_shift(word: u64, span: u128) -> u128 {
    (word as u128 * span) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = mul_shift(rng.next_u64(), span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = mul_shift(rng.next_u64(), span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::from_rng(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait RngExt: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::from_rng(self) < p
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");

        let mut seen_inclusive = [false; 5];
        for _ in 0..1_000 {
            seen_inclusive[rng.random_range(0usize..=4)] = true;
        }
        assert!(seen_inclusive.iter().all(|&s| s), "{seen_inclusive:?}");

        for _ in 0..1_000 {
            let v: i32 = rng.random_range(-3..3);
            assert!((-3..3).contains(&v));
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn works_through_unsized_generic_bounds() {
        fn draw<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
