//! Concrete generators.

use crate::{splitmix64_mix, RngCore, SeedableRng, GOLDEN_GAMMA};

/// The workspace's standard generator: SplitMix64.
///
/// State is a single 64-bit counter; each draw advances it by the
/// golden-ratio increment and returns the finaliser mix of the new value.
/// Period 2^64, seedable from a single word, identical output on every
/// platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64_mix(self.state)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_splitmix64_reference_vectors() {
        // Reference sequence for seed 1234567 from the public-domain
        // SplitMix64 implementation by Sebastiano Vigna.
        let mut rng = StdRng::seed_from_u64(1234567);
        let expected = [0x599e_d017_fb08_fc85_u64, 0x2c73_f084_5854_0fa5, 0x883e_bce5_a3f2_7c77];
        for want in expected {
            assert_eq!(rng.next_u64(), want);
        }
    }
}
