//! Minimal self-contained benchmark harness.
//!
//! The workspace builds in hermetic environments with no crate-registry
//! access, so the subset of the `criterion` API used by the bench targets
//! is implemented here: groups, `bench_function` / `bench_with_input`
//! with string or [`BenchmarkId`] labels, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm-up, then a fixed number of
//! timed batches, reporting the median per-iteration time — because the
//! numbers that matter for the repro are the wall-clock figures of
//! `experiments all`, not micro-benchmark statistics. The point of this
//! crate is that `cargo bench` compiles and produces useful magnitudes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` if they prefer.
pub use std::hint::black_box;

/// Top-level handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parses nothing; exists for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        qjo_obs::info!("== {name} ==");
        BenchmarkGroup { _criterion: self, name, sample_size: 32 }
    }
}

/// Label of a single benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` label.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// A parameter-only label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Ends the group (output is already flushed; method kept for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: aim for batches of ≥ ~1 ms
        // so Instant resolution does not dominate fast routines.
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed();
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
            as usize;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            qjo_obs::warn!("{group}/{label}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        qjo_obs::info!("{group}/{label}: median {median:?} (min {min:?}, max {max:?})");
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        group.finish();
        assert!(runs >= 3, "routine ran {runs} times");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("embed", 7).label, "embed/7");
        assert_eq!(BenchmarkId::from_parameter(3).label, "3");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
