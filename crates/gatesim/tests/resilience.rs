//! Chaos tests for the gate-sim layer: lost noisy-sim trajectories and
//! diverging (NaN) QAOA optimiser steps.
//!
//! Own test binary: fault plans are process-global, and every test here
//! serialises through [`qjo_resil::fault::scoped`]'s guard mutex so the
//! seed-pinned unit tests never observe an injection.

use qjo_exec::Parallelism;
use qjo_gatesim::optim::{Adam, GradientDescent, GridSearch, NelderMead, Spsa};
use qjo_gatesim::{Circuit, Gate, NoiseModel, NoisySimulator};
use qjo_resil::fault::{scoped, without_faults};
use qjo_resil::FaultPlan;

fn deltas_since(before: &qjo_obs::Snapshot) -> std::collections::BTreeMap<String, u64> {
    qjo_obs::global().snapshot().counter_deltas_since(before)
}

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::H(0));
    for q in 1..n {
        c.push(Gate::Cx(0, q));
    }
    c
}

/// A shifted quadratic bowl with minimum 2.5 at (1, -2).
fn bowl(x: &[f64]) -> f64 {
    (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2) + 2.5
}

#[test]
fn lost_trajectories_are_rerun_reseeded() {
    let sim = |seed| NoisySimulator {
        trajectories: 8,
        ..NoisySimulator::new(NoiseModel::ibm_auckland(), seed)
    };
    let baseline = without_faults(|| sim(5).sample(&ghz(4), 64));
    let _guard = scoped(FaultPlan::new(11).with_rate("gatesim.trajectory", 1.0));
    let before = qjo_obs::global().snapshot();
    let chaotic = sim(5).sample(&ghz(4), 64);
    let d = deltas_since(&before);
    // p = 1 burns the whole per-trajectory budget: 2 retries × 8 units.
    assert_eq!(d.get("resil.gatesim.trajectory.retries"), Some(&16));
    assert_ne!(baseline, chaotic, "retries reseed the trajectory streams");
    assert_eq!(sim(5).sample(&ghz(4), 64), chaotic, "but deterministically");
}

#[test]
fn chaotic_sampling_is_thread_count_invariant() {
    let _guard = scoped(FaultPlan::new(12).with_rate("gatesim.trajectory", 0.4));
    let at = |threads| {
        NoisySimulator {
            trajectories: 8,
            parallelism: Parallelism::new(threads),
            ..NoisySimulator::new(NoiseModel::ibm_auckland(), 9)
        }
        .sample(&ghz(5), 96)
    };
    let sequential = at(1);
    for threads in [2, 8] {
        assert_eq!(sequential, at(threads), "threads={threads}");
    }
}

#[test]
fn optimisers_survive_injected_nan_steps() {
    // A fifth of all objective evaluations come back NaN; every
    // optimiser must still drive the bowl well below its start value
    // (11.5 at the usual start) without poisoning its state.
    let _guard = scoped(FaultPlan::new(13).with_rate("qaoa.step", 0.2));
    let before = qjo_obs::global().snapshot();
    let runs = [
        GradientDescent { iterations: 150, learning_rate: 0.2, fd_step: 1e-4 }
            .minimize(bowl, &[4.0, 3.0]),
        Adam { iterations: 300, ..Default::default() }.minimize(bowl, &[4.0, 3.0]),
        Spsa { iterations: 300, ..Default::default() }.minimize(bowl, &[4.0, 3.0]),
        NelderMead { max_iterations: 400, ..Default::default() }.minimize(bowl, &[4.0, 3.0]),
        GridSearch { bounds: vec![(-3.0, 3.0); 2], resolution: 13, ..Default::default() }
            .minimize(bowl),
    ];
    for (i, r) in runs.iter().enumerate() {
        assert!(r.fx.is_finite(), "optimiser {i} reported a non-finite best");
        assert!(r.fx < 6.0, "optimiser {i} stalled at {}", r.fx);
        assert!((bowl(&r.x) - r.fx).abs() < 1e-9, "optimiser {i} reported a poisoned x");
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "optimiser {i} history not monotone");
        }
    }
    let d = deltas_since(&before);
    assert!(
        d.get("resil.qaoa.step.divergences").copied().unwrap_or(0) > 50,
        "p = 0.2 over thousands of evals must count divergences: {d:?}"
    );
}

#[test]
fn total_divergence_is_reported_not_hidden() {
    // With every evaluation NaN the optimiser cannot improve: the best
    // value stays +∞ rather than pretending NaN progress happened.
    let _guard = scoped(FaultPlan::new(14).with_rate("qaoa.step", 1.0));
    let r = GradientDescent { iterations: 5, ..Default::default() }.minimize(bowl, &[4.0, 3.0]);
    assert!(r.fx.is_infinite());
    assert_eq!(r.x, vec![4.0, 3.0], "no finite evidence, no movement");
}

#[test]
fn chaotic_optimisation_is_deterministic() {
    let _guard = scoped(FaultPlan::new(15).with_rate("qaoa.step", 0.3));
    let run = || Spsa { iterations: 120, ..Default::default() }.minimize(bowl, &[4.0, 3.0]);
    let (a, b) = (run(), run());
    assert_eq!(a.x, b.x);
    assert_eq!(a.fx, b.fx);
    assert_eq!(a.history, b.history);
}
