//! Property-based tests for the gate-based substrate.

use proptest::prelude::*;

use qjo_gatesim::gate::Gate;
use qjo_gatesim::{qaoa_circuit, Circuit, DiagonalHamiltonian, QaoaParams, QaoaSimulator, StateVector};
use qjo_qubo::Qubo;

/// Strategy for random gates over `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    let angle = -3.0..3.0f64;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Sx),
        (q.clone(), angle.clone()).prop_map(|(q, t)| Gate::Rx(q, t)),
        (q.clone(), angle.clone()).prop_map(|(q, t)| Gate::Ry(q, t)),
        (q.clone(), angle.clone()).prop_map(|(q, t)| Gate::Rz(q, t)),
        q2.clone().prop_map(|(a, b)| Gate::Cx(a, b)),
        q2.clone().prop_map(|(a, b)| Gate::Cz(a, b)),
        q2.clone().prop_map(|(a, b)| Gate::Swap(a, b)),
        (q2.clone(), angle.clone()).prop_map(|((a, b), t)| Gate::Rzz(a, b, t)),
        (q2, angle).prop_map(|((a, b), t)| Gate::Rxx(a, b, t)),
    ]
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_qubo(n: usize) -> impl Strategy<Value = Qubo> {
    (
        prop::collection::vec(-2.0..2.0f64, n),
        prop::collection::vec(-2.0..2.0f64, n * (n - 1) / 2),
    )
        .prop_map(move |(lin, quad)| {
            let mut q = Qubo::new(n);
            for (i, c) in lin.into_iter().enumerate() {
                q.add_linear(i, c);
            }
            let mut it = quad.into_iter();
            for i in 0..n {
                for j in i + 1..n {
                    q.add_quadratic(i, j, it.next().expect("sized"));
                }
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unitarity: every circuit preserves the state norm.
    #[test]
    fn circuits_preserve_norm(c in arb_circuit(4, 24)) {
        let mut s = StateVector::zero(4);
        s.apply_circuit(&c);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Reversibility: a circuit followed by its inverse is the identity.
    #[test]
    fn inverse_undoes_circuit(c in arb_circuit(4, 16)) {
        let mut s = StateVector::zero(4);
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        prop_assert!(s.fidelity(&StateVector::zero(4)) > 1.0 - 1e-9);
    }

    /// Depth is consistent with layering and bounded by gate count.
    #[test]
    fn depth_invariants(c in arb_circuit(5, 30)) {
        let depth = c.depth();
        prop_assert_eq!(c.layers().len(), depth);
        prop_assert!(depth <= c.len());
        prop_assert!(c.two_qubit_depth() <= depth);
        let layered: usize = c.layers().iter().map(Vec::len).sum();
        prop_assert_eq!(layered, c.len());
        // Gates within one layer touch disjoint qubits.
        for layer in c.layers() {
            let mut seen = std::collections::HashSet::new();
            for g in layer {
                for q in g.qubits().iter() {
                    prop_assert!(seen.insert(q), "layer reuses qubit {q}");
                }
            }
        }
    }

    /// The diagonal energy table agrees with direct QUBO evaluation.
    #[test]
    fn energy_table_is_exact(q in arb_qubo(6)) {
        let h = DiagonalHamiltonian::from_qubo(&q);
        for z in 0..64usize {
            let bits: Vec<bool> = (0..6).map(|i| z >> i & 1 == 1).collect();
            let direct = q.energy(&bits).unwrap();
            prop_assert!((h.energy(z) - direct).abs() < 1e-9 * (1.0 + direct.abs()));
        }
    }

    /// The fast QAOA engine matches the explicit circuit for any QUBO and
    /// parameters (measurement distributions are equal).
    #[test]
    fn qaoa_fast_path_matches_circuit(
        q in arb_qubo(4),
        gamma in -1.5..1.5f64,
        beta in -1.5..1.5f64,
    ) {
        let sim = QaoaSimulator::new(&q);
        let params = QaoaParams { gammas: vec![gamma], betas: vec![beta] };
        let fast = sim.state(&params);
        let mut slow = StateVector::zero(4);
        slow.apply_circuit(&qaoa_circuit(&q.to_ising(), &params));
        let pf = fast.probabilities();
        let ps = slow.probabilities();
        for (a, b) in pf.iter().zip(&ps) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// QAOA expectation is bounded by the energy extremes of the problem.
    #[test]
    fn qaoa_expectation_stays_in_spectrum(
        q in arb_qubo(5),
        gamma in -2.0..2.0f64,
        beta in -2.0..2.0f64,
    ) {
        let sim = QaoaSimulator::new(&q);
        let params = QaoaParams { gammas: vec![gamma], betas: vec![beta] };
        let e = sim.expectation(&params);
        let energies = sim.hamiltonian().energies();
        let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = energies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e >= min - 1e-9 && e <= max + 1e-9, "{e} outside [{min}, {max}]");
    }
}
