//! Property-style tests for the gate-based substrate.
//!
//! Each property runs over a deterministic family of random instances
//! drawn from a seeded [`StdRng`] — the hermetic stand-in for the proptest
//! strategies the suite originally used. Seeds are fixed so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_gatesim::gate::Gate;
use qjo_gatesim::{
    qaoa_circuit, Circuit, DiagonalHamiltonian, QaoaParams, QaoaSimulator, StateVector,
};
use qjo_qubo::Qubo;

/// Draws a distinct ordered qubit pair.
fn distinct_pair(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let a = rng.random_range(0..n);
    loop {
        let b = rng.random_range(0..n);
        if b != a {
            return (a, b);
        }
    }
}

/// Draws a random gate over `n` qubits.
fn arb_gate(rng: &mut StdRng, n: usize) -> Gate {
    let q = rng.random_range(0..n);
    match rng.random_range(0..13u32) {
        0 => Gate::H(q),
        1 => Gate::X(q),
        2 => Gate::Y(q),
        3 => Gate::S(q),
        4 => Gate::Sx(q),
        5 => Gate::Rx(q, rng.random_range(-3.0..3.0)),
        6 => Gate::Ry(q, rng.random_range(-3.0..3.0)),
        7 => Gate::Rz(q, rng.random_range(-3.0..3.0)),
        8 => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Cx(a, b)
        }
        9 => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Cz(a, b)
        }
        10 => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Swap(a, b)
        }
        11 => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Rzz(a, b, rng.random_range(-3.0..3.0))
        }
        _ => {
            let (a, b) = distinct_pair(rng, n);
            Gate::Rxx(a, b, rng.random_range(-3.0..3.0))
        }
    }
}

fn arb_circuit(rng: &mut StdRng, n: usize, max_gates: usize) -> Circuit {
    let count = rng.random_range(0..max_gates);
    let mut c = Circuit::new(n);
    for _ in 0..count {
        let g = arb_gate(rng, n);
        c.push(g);
    }
    c
}

fn arb_qubo(rng: &mut StdRng, n: usize) -> Qubo {
    let mut q = Qubo::new(n);
    for i in 0..n {
        q.add_linear(i, rng.random_range(-2.0..2.0));
        for j in i + 1..n {
            q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
        }
    }
    q
}

fn for_cases(cases: u64, mut body: impl FnMut(&mut StdRng, u64)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0x6A7E_0000 + case);
        body(&mut rng, case);
    }
}

/// Unitarity: every circuit preserves the state norm.
#[test]
fn circuits_preserve_norm() {
    for_cases(32, |rng, case| {
        let c = arb_circuit(rng, 4, 24);
        let mut s = StateVector::zero(4);
        s.apply_circuit(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9, "case {case}");
    });
}

/// Reversibility: a circuit followed by its inverse is the identity.
#[test]
fn inverse_undoes_circuit() {
    for_cases(32, |rng, case| {
        let c = arb_circuit(rng, 4, 16);
        let mut s = StateVector::zero(4);
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        assert!(s.fidelity(&StateVector::zero(4)) > 1.0 - 1e-9, "case {case}");
    });
}

/// Depth is consistent with layering and bounded by gate count.
#[test]
fn depth_invariants() {
    for_cases(32, |rng, case| {
        let c = arb_circuit(rng, 5, 30);
        let depth = c.depth();
        assert_eq!(c.layers().len(), depth, "case {case}");
        assert!(depth <= c.len(), "case {case}");
        assert!(c.two_qubit_depth() <= depth, "case {case}");
        let layered: usize = c.layers().iter().map(Vec::len).sum();
        assert_eq!(layered, c.len(), "case {case}");
        // Gates within one layer touch disjoint qubits.
        for layer in c.layers() {
            let mut seen = std::collections::HashSet::new();
            for g in layer {
                for q in g.qubits().iter() {
                    assert!(seen.insert(q), "case {case}: layer reuses qubit {q}");
                }
            }
        }
    });
}

/// The diagonal energy table agrees with direct QUBO evaluation.
#[test]
fn energy_table_is_exact() {
    for_cases(32, |rng, case| {
        let q = arb_qubo(rng, 6);
        let h = DiagonalHamiltonian::from_qubo(&q);
        for z in 0..64usize {
            let bits: Vec<bool> = (0..6).map(|i| z >> i & 1 == 1).collect();
            let direct = q.energy(&bits).unwrap();
            assert!((h.energy(z) - direct).abs() < 1e-9 * (1.0 + direct.abs()), "case {case}");
        }
    });
}

/// The fast QAOA engine matches the explicit circuit for any QUBO and
/// parameters (measurement distributions are equal).
#[test]
fn qaoa_fast_path_matches_circuit() {
    for_cases(32, |rng, case| {
        let q = arb_qubo(rng, 4);
        let gamma = rng.random_range(-1.5..1.5);
        let beta = rng.random_range(-1.5..1.5);
        let sim = QaoaSimulator::new(&q);
        let params = QaoaParams { gammas: vec![gamma], betas: vec![beta] };
        let fast = sim.state(&params);
        let mut slow = StateVector::zero(4);
        slow.apply_circuit(&qaoa_circuit(&q.to_ising(), &params));
        let pf = fast.probabilities();
        let ps = slow.probabilities();
        for (a, b) in pf.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-9, "case {case}");
        }
    });
}

/// QAOA expectation is bounded by the energy extremes of the problem.
#[test]
fn qaoa_expectation_stays_in_spectrum() {
    for_cases(32, |rng, case| {
        let q = arb_qubo(rng, 5);
        let gamma = rng.random_range(-2.0..2.0);
        let beta = rng.random_range(-2.0..2.0);
        let sim = QaoaSimulator::new(&q);
        let params = QaoaParams { gammas: vec![gamma], betas: vec![beta] };
        let e = sim.expectation(&params);
        let energies = sim.hamiltonian().energies();
        let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = energies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(e >= min - 1e-9 && e <= max + 1e-9, "case {case}: {e} outside [{min}, {max}]");
    });
}
