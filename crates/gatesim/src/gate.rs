//! The gate set of the circuit IR.
//!
//! Covers the logical gates QAOA needs (H, RX, RZ, RZZ), the entangling
//! primitives of the hardware gate sets the paper targets (CX for IBM, CZ for
//! Rigetti, the Mølmer–Sørensen XX interaction for IonQ), and the 1-qubit
//! basis gates transpilers decompose into (RZ, SX, X, ...).

use crate::complex::{C64, I, ONE, ZERO};

/// A quantum gate applied to explicit qubit indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate S† = diag(1, −i).
    Sdg(usize),
    /// √X, a native IBM basis gate.
    Sx(usize),
    /// Rotation about X: `exp(−i θ X / 2)`.
    Rx(usize, f64),
    /// Rotation about Y: `exp(−i θ Y / 2)`.
    Ry(usize, f64),
    /// Rotation about Z: `exp(−i θ Z / 2)` (diagonal).
    Rz(usize, f64),
    /// Phase rotation diag(1, e^{iθ}).
    Phase(usize, f64),
    /// Controlled-X (control, target).
    Cx(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// SWAP.
    Swap(usize, usize),
    /// Two-qubit ZZ rotation `exp(−i θ Z⊗Z / 2)` (diagonal); the natural
    /// cost-operator gate of QAOA.
    Rzz(usize, usize, f64),
    /// Two-qubit XX rotation `exp(−i θ X⊗X / 2)`; the Mølmer–Sørensen
    /// interaction native to trapped-ion hardware.
    Rxx(usize, usize, f64),
}

impl Gate {
    /// The qubit indices this gate touches (1 or 2 entries).
    pub fn qubits(&self) -> GateQubits {
        use Gate::*;
        match *self {
            H(q)
            | X(q)
            | Y(q)
            | Z(q)
            | S(q)
            | Sdg(q)
            | Sx(q)
            | Rx(q, _)
            | Ry(q, _)
            | Rz(q, _)
            | Phase(q, _) => GateQubits::One(q),
            Cx(a, b) | Cz(a, b) | Swap(a, b) | Rzz(a, b, _) | Rxx(a, b, _) => GateQubits::Two(a, b),
        }
    }

    /// True for gates acting on two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self.qubits(), GateQubits::Two(..))
    }

    /// True for gates that are diagonal in the computational basis (they
    /// commute with measurements and cost operators, and the simulator
    /// applies them as pure phases).
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(self, Z(_) | S(_) | Sdg(_) | Rz(..) | Phase(..) | Cz(..) | Rzz(..))
    }

    /// Lower-case mnemonic matching common assembly names.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            H(_) => "h",
            X(_) => "x",
            Y(_) => "y",
            Z(_) => "z",
            S(_) => "s",
            Sdg(_) => "sdg",
            Sx(_) => "sx",
            Rx(..) => "rx",
            Ry(..) => "ry",
            Rz(..) => "rz",
            Phase(..) => "p",
            Cx(..) => "cx",
            Cz(..) => "cz",
            Swap(..) => "swap",
            Rzz(..) => "rzz",
            Rxx(..) => "rxx",
        }
    }

    /// The rotation angle, for parameterised gates.
    pub fn angle(&self) -> Option<f64> {
        use Gate::*;
        match *self {
            Rx(_, t) | Ry(_, t) | Rz(_, t) | Phase(_, t) | Rzz(_, _, t) | Rxx(_, _, t) => Some(t),
            _ => None,
        }
    }

    /// The 2×2 unitary of a single-qubit gate, row-major
    /// `[u00, u01, u10, u11]`. Panics for two-qubit gates.
    pub fn unitary_1q(&self) -> [C64; 4] {
        use Gate::*;
        let half = std::f64::consts::FRAC_1_SQRT_2;
        match *self {
            H(_) => [C64::real(half), C64::real(half), C64::real(half), C64::real(-half)],
            X(_) => [ZERO, ONE, ONE, ZERO],
            Y(_) => [ZERO, -I, I, ZERO],
            Z(_) => [ONE, ZERO, ZERO, C64::real(-1.0)],
            S(_) => [ONE, ZERO, ZERO, I],
            Sdg(_) => [ONE, ZERO, ZERO, -I],
            Sx(_) => {
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5), C64::new(0.5, -0.5), C64::new(0.5, 0.5)]
            }
            Rx(_, t) => {
                let (s, c) = (t / 2.0).sin_cos();
                [C64::real(c), C64::new(0.0, -s), C64::new(0.0, -s), C64::real(c)]
            }
            Ry(_, t) => {
                let (s, c) = (t / 2.0).sin_cos();
                [C64::real(c), C64::real(-s), C64::real(s), C64::real(c)]
            }
            Rz(_, t) => [C64::cis(-t / 2.0), ZERO, ZERO, C64::cis(t / 2.0)],
            Phase(_, t) => [ONE, ZERO, ZERO, C64::cis(t)],
            _ => panic!("unitary_1q called on two-qubit gate {self:?}"),
        }
    }

    /// The 4×4 unitary of a two-qubit gate in the basis
    /// `|q_low q_high⟩ ∈ {00, 01, 10, 11}` where the *first* listed qubit is
    /// the low-order bit. Row-major. Panics for single-qubit gates.
    pub fn unitary_2q(&self) -> [[C64; 4]; 4] {
        use Gate::*;
        let mut u = [[ZERO; 4]; 4];
        match *self {
            // Basis order: index b = (bit of second qubit << 1) | bit of first.
            Cx(_c, _t) => {
                // control = first listed qubit (low bit), target = second.
                u[0][0] = ONE; // |00> -> |00>
                u[2][2] = ONE; // control 0, target 1 -> unchanged
                u[1][3] = ONE; // control 1, target 0 -> target flips: |01>->|11>
                u[3][1] = ONE;
            }
            Cz(..) => {
                u[0][0] = ONE;
                u[1][1] = ONE;
                u[2][2] = ONE;
                u[3][3] = C64::real(-1.0);
            }
            Swap(..) => {
                u[0][0] = ONE;
                u[1][2] = ONE;
                u[2][1] = ONE;
                u[3][3] = ONE;
            }
            Rzz(_, _, t) => {
                let plus = C64::cis(t / 2.0);
                let minus = C64::cis(-t / 2.0);
                u[0][0] = minus;
                u[1][1] = plus;
                u[2][2] = plus;
                u[3][3] = minus;
            }
            Rxx(_, _, t) => {
                let (s, c) = (t / 2.0).sin_cos();
                let cc = C64::real(c);
                let ms = C64::new(0.0, -s);
                u[0][0] = cc;
                u[1][1] = cc;
                u[2][2] = cc;
                u[3][3] = cc;
                u[0][3] = ms;
                u[3][0] = ms;
                u[1][2] = ms;
                u[2][1] = ms;
            }
            _ => panic!("unitary_2q called on single-qubit gate {self:?}"),
        }
        u
    }

    /// Remaps qubit indices through `f` (used by layout / routing).
    pub fn map_qubits<F: Fn(usize) -> usize>(&self, f: F) -> Gate {
        use Gate::*;
        match *self {
            H(q) => H(f(q)),
            X(q) => X(f(q)),
            Y(q) => Y(f(q)),
            Z(q) => Z(f(q)),
            S(q) => S(f(q)),
            Sdg(q) => Sdg(f(q)),
            Sx(q) => Sx(f(q)),
            Rx(q, t) => Rx(f(q), t),
            Ry(q, t) => Ry(f(q), t),
            Rz(q, t) => Rz(f(q), t),
            Phase(q, t) => Phase(f(q), t),
            Cx(a, b) => Cx(f(a), f(b)),
            Cz(a, b) => Cz(f(a), f(b)),
            Swap(a, b) => Swap(f(a), f(b)),
            Rzz(a, b, t) => Rzz(f(a), f(b), t),
            Rxx(a, b, t) => Rxx(f(a), f(b), t),
        }
    }
}

/// The qubits a gate touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateQubits {
    /// A single-qubit gate.
    One(usize),
    /// A two-qubit gate.
    Two(usize, usize),
}

impl GateQubits {
    /// Iterates the contained indices.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let (a, b) = match self {
            GateQubits::One(q) => (q, None),
            GateQubits::Two(q, r) => (q, Some(r)),
        };
        std::iter::once(a).chain(b)
    }

    /// Highest index touched.
    pub fn max(self) -> usize {
        match self {
            GateQubits::One(q) => q,
            GateQubits::Two(a, b) => a.max(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_unitary_2x2(u: &[C64; 4]) -> bool {
        // U U† = I
        let dot = |r1: [C64; 2], r2: [C64; 2]| r1[0] * r2[0].conj() + r1[1] * r2[1].conj();
        let r0 = [u[0], u[1]];
        let r1 = [u[2], u[3]];
        (dot(r0, r0) - ONE).norm() < 1e-12
            && (dot(r1, r1) - ONE).norm() < 1e-12
            && dot(r0, r1).norm() < 1e-12
    }

    #[test]
    fn all_single_qubit_gates_are_unitary() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Sx(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.3),
            Gate::Rz(0, 2.1),
            Gate::Phase(0, 0.4),
        ];
        for g in gates {
            assert!(is_unitary_2x2(&g.unitary_1q()), "{g:?} not unitary");
        }
    }

    #[test]
    fn all_two_qubit_gates_are_unitary() {
        let gates = [
            Gate::Cx(0, 1),
            Gate::Cz(0, 1),
            Gate::Swap(0, 1),
            Gate::Rzz(0, 1, 0.9),
            Gate::Rxx(0, 1, -0.4),
        ];
        for g in gates {
            let u = g.unitary_2q();
            for i in 0..4 {
                for j in 0..4 {
                    let mut dot = ZERO;
                    #[allow(clippy::needless_range_loop)] // matrix index
                    for k in 0..4 {
                        dot += u[i][k] * u[j][k].conj();
                    }
                    let expect = if i == j { ONE } else { ZERO };
                    assert!((dot - expect).norm() < 1e-12, "{g:?} row {i},{j}");
                }
            }
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::Sx(0).unitary_1q();
        let x = Gate::X(0).unitary_1q();
        // (SX)² = X
        let mul = |a: &[C64; 4], b: &[C64; 4]| {
            [
                a[0] * b[0] + a[1] * b[2],
                a[0] * b[1] + a[1] * b[3],
                a[2] * b[0] + a[3] * b[2],
                a[2] * b[1] + a[3] * b[3],
            ]
        };
        let sq = mul(&sx, &sx);
        for k in 0..4 {
            assert!((sq[k] - x[k]).norm() < 1e-12);
        }
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rz(0, 1.0).is_diagonal());
        assert!(Gate::Rzz(0, 1, 1.0).is_diagonal());
        assert!(Gate::Cz(0, 1).is_diagonal());
        assert!(!Gate::H(0).is_diagonal());
        assert!(!Gate::Cx(0, 1).is_diagonal());
        assert!(!Gate::Rxx(0, 1, 1.0).is_diagonal());
    }

    #[test]
    fn qubit_accessors() {
        assert_eq!(Gate::H(3).qubits(), GateQubits::One(3));
        assert_eq!(Gate::Cx(1, 4).qubits(), GateQubits::Two(1, 4));
        assert!(Gate::Rzz(0, 1, 0.5).is_two_qubit());
        assert!(!Gate::Rx(0, 0.5).is_two_qubit());
        assert_eq!(Gate::Cx(1, 4).qubits().max(), 4);
        let qs: Vec<usize> = Gate::Swap(2, 5).qubits().iter().collect();
        assert_eq!(qs, vec![2, 5]);
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Cx(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g, Gate::Cx(10, 11));
        let g = Gate::Rz(2, 0.3).map_qubits(|q| q * 2);
        assert_eq!(g, Gate::Rz(4, 0.3));
    }

    #[test]
    fn angles_are_reported() {
        assert_eq!(Gate::Rz(0, 1.5).angle(), Some(1.5));
        assert_eq!(Gate::Rzz(0, 1, -0.5).angle(), Some(-0.5));
        assert_eq!(Gate::H(0).angle(), None);
    }
}
