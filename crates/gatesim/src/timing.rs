//! QPU access-time model: sampling time vs. total wall-clock QPU time.
//!
//! Section 4.2.1 of the paper separates the circuit-sampling time `t_s` from
//! the overall QPU time `t_qpu` (initialisation and communication overhead,
//! excluding cloud queueing) and observes that `t_qpu` is orders of
//! magnitude larger than `t_s` and nearly independent of problem size. That
//! asymmetry is the quantitative argument for *local* QPU co-processors.

use crate::circuit::Circuit;
use crate::noise::NoiseModel;

/// Overheads of one batched circuit-sampling job on a QPU service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpuTimingModel {
    /// Per-shot overhead: qubit reset plus measurement/readout, seconds.
    pub shot_overhead: f64,
    /// Fixed per-job initialisation (control-electronics arming, loading
    /// waveforms), seconds.
    pub init_overhead: f64,
    /// Fixed per-job communication/result-marshalling overhead, seconds.
    pub comm_overhead: f64,
}

impl QpuTimingModel {
    /// Calibrated to the IBM Q measurements reported in the paper:
    /// `t_s = 77.9 ms`, `t_qpu = 9.74 s` at 1024 shots for the 18-qubit
    /// problem, growing to `t_s = 113.7 ms`, `t_qpu = 10.35 s` at 27 qubits.
    pub fn ibm_cloud() -> Self {
        QpuTimingModel { shot_overhead: 70e-6, init_overhead: 9.0, comm_overhead: 0.6 }
    }

    /// A hypothetical local accelerator: no cloud communication, tight
    /// integration budget for initialisation.
    pub fn local_coprocessor() -> Self {
        QpuTimingModel { shot_overhead: 70e-6, init_overhead: 1e-3, comm_overhead: 10e-6 }
    }

    /// Pure sampling time `t_s`: shots × (circuit duration + shot overhead).
    pub fn sampling_time(&self, circuit: &Circuit, noise: &NoiseModel, shots: usize) -> f64 {
        let duration = circuit.duration(noise.time_1q, noise.time_2q);
        shots as f64 * (duration + self.shot_overhead)
    }

    /// Total QPU time `t_qpu = t_s + init + comm` for one job.
    pub fn total_qpu_time(&self, circuit: &Circuit, noise: &NoiseModel, shots: usize) -> f64 {
        self.sampling_time(circuit, noise, shots) + self.init_overhead + self.comm_overhead
    }

    /// `t_qpu / t_s` — the overhead factor eliminated by a local QPU.
    pub fn overhead_factor(&self, circuit: &Circuit, noise: &NoiseModel, shots: usize) -> f64 {
        self.total_qpu_time(circuit, noise, shots) / self.sampling_time(circuit, noise, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn qaoa_like_circuit(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::H(q));
        }
        for _ in 0..layers {
            for q in 0..n - 1 {
                c.push(Gate::Cx(q, q + 1));
            }
            for q in 0..n {
                c.push(Gate::Rx(q, 0.3));
            }
        }
        c
    }

    #[test]
    fn cloud_overhead_dominates_sampling_time() {
        let c = qaoa_like_circuit(18, 3);
        let model = QpuTimingModel::ibm_cloud();
        let noise = NoiseModel::ibm_auckland();
        let ts = model.sampling_time(&c, &noise, 1024);
        let tq = model.total_qpu_time(&c, &noise, 1024);
        // Shape from the paper: t_s in the tens of milliseconds, t_qpu in
        // the several-second range, two orders of magnitude apart.
        assert!(ts > 0.02 && ts < 0.5, "t_s = {ts}");
        assert!(tq > 9.0 && tq < 11.0, "t_qpu = {tq}");
        assert!(model.overhead_factor(&c, &noise, 1024) > 20.0);
    }

    #[test]
    fn problem_size_has_negligible_impact_on_total_time() {
        let model = QpuTimingModel::ibm_cloud();
        let noise = NoiseModel::ibm_auckland();
        let small = model.total_qpu_time(&qaoa_like_circuit(18, 1), &noise, 1024);
        let large = model.total_qpu_time(&qaoa_like_circuit(27, 1), &noise, 1024);
        let rel = (large - small) / small;
        assert!(rel < 0.05, "size changed total time by {}%", rel * 100.0);
    }

    #[test]
    fn local_coprocessor_removes_the_overhead() {
        let c = qaoa_like_circuit(18, 3);
        let noise = NoiseModel::ibm_auckland();
        let cloud = QpuTimingModel::ibm_cloud();
        let local = QpuTimingModel::local_coprocessor();
        let speedup =
            cloud.total_qpu_time(&c, &noise, 1024) / local.total_qpu_time(&c, &noise, 1024);
        assert!(speedup > 50.0, "local speedup only {speedup}");
        assert!(local.overhead_factor(&c, &noise, 1024) < 1.1);
    }

    #[test]
    fn sampling_time_scales_linearly_with_shots() {
        let c = qaoa_like_circuit(10, 2);
        let model = QpuTimingModel::ibm_cloud();
        let noise = NoiseModel::ibm_auckland();
        let t1 = model.sampling_time(&c, &noise, 512);
        let t2 = model.sampling_time(&c, &noise, 1024);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
