//! Readout-error mitigation.
//!
//! With independent per-qubit misclassification probability `p`, a measured
//! bit relates to the true bit through the symmetric channel
//! `m = (1−p)·x + p·(1−x)`. In spin language (`s = 2x − 1`) the channel is
//! a simple contraction: `⟨s⟩_meas = (1−2p)·⟨s⟩_true`, and for independent
//! errors on two qubits `⟨s_i s_j⟩_meas = (1−2p)²·⟨s_i s_j⟩_true`. These
//! identities are exact, so first- and second-moment observables can be
//! corrected by division — the standard cheap mitigation used on IBM Q
//! hardware (full distribution-level correction needs the 2^n confusion
//! matrix and is out of NISQ-era scope, as is the paper's).

use qjo_qubo::SampleSet;

/// Mitigates first- and second-moment observables measured through a
/// symmetric readout channel.
#[derive(Debug, Clone, Copy)]
pub struct ReadoutMitigator {
    /// Per-qubit misclassification probability, in `[0, 0.5)`.
    pub flip_probability: f64,
}

impl ReadoutMitigator {
    /// Creates a mitigator; panics for `p ≥ 0.5` (channel not invertible).
    pub fn new(flip_probability: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&flip_probability),
            "readout channel is only invertible for p < 0.5"
        );
        ReadoutMitigator { flip_probability }
    }

    /// The channel contraction factor `1 − 2p`.
    pub fn contraction(&self) -> f64 {
        1.0 - 2.0 * self.flip_probability
    }

    /// Corrects a measured mean-bit value `⟨x_i⟩`; the result is clamped to
    /// `[0, 1]` (finite shots can push the raw inversion outside).
    pub fn corrected_mean_bit(&self, measured: f64) -> f64 {
        ((measured - self.flip_probability) / self.contraction()).clamp(0.0, 1.0)
    }

    /// Corrects a measured spin expectation `⟨s_i⟩ ∈ [−1, 1]`.
    pub fn corrected_spin(&self, measured: f64) -> f64 {
        (measured / self.contraction()).clamp(-1.0, 1.0)
    }

    /// Corrects a measured two-point spin correlation `⟨s_i s_j⟩`.
    pub fn corrected_spin_correlation(&self, measured: f64) -> f64 {
        (measured / self.contraction().powi(2)).clamp(-1.0, 1.0)
    }

    /// Mitigated mean bits for every variable of a sample set.
    pub fn mean_bits(&self, samples: &SampleSet, num_vars: usize) -> Vec<f64> {
        (0..num_vars).map(|i| self.corrected_mean_bit(samples.mean_bit(i))).collect()
    }

    /// Mitigated spin correlation between two variables of a sample set.
    pub fn spin_correlation(&self, samples: &SampleSet, i: usize, j: usize) -> f64 {
        self.corrected_spin_correlation(samples.spin_correlation(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;
    use crate::noise::{NoiseModel, NoisySimulator};
    use qjo_qubo::SampleSet;

    #[test]
    fn scalar_identities_are_exact() {
        let m = ReadoutMitigator::new(0.1);
        // True bit always 1: measured mean = 0.9 → corrected = 1.0.
        assert!((m.corrected_mean_bit(0.9) - 1.0).abs() < 1e-12);
        // True bit always 0: measured mean = 0.1 → corrected = 0.0.
        assert!(m.corrected_mean_bit(0.1).abs() < 1e-12);
        // Unbiased stays unbiased.
        assert!((m.corrected_mean_bit(0.5) - 0.5).abs() < 1e-12);
        // Spin contraction: ⟨s⟩ = 0.8 measured at p = 0.1 → 1.0 true.
        assert!((m.corrected_spin(0.8) - 1.0).abs() < 1e-12);
        assert!((m.corrected_spin_correlation(0.64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_handles_shot_noise_overshoot() {
        let m = ReadoutMitigator::new(0.2);
        assert_eq!(m.corrected_mean_bit(0.95), 1.0);
        assert_eq!(m.corrected_spin(-0.99), -1.0);
    }

    #[test]
    #[should_panic(expected = "invertible")]
    fn rejects_non_invertible_channels() {
        ReadoutMitigator::new(0.5);
    }

    #[test]
    fn recovers_deterministic_state_through_noisy_readout() {
        // Prepare |11⟩ and measure through 15% readout error: the raw mean
        // bits sag to ~0.85; mitigation restores ~1.0.
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        c.push(Gate::X(1));
        let noise = NoiseModel { readout_error: 0.15, ..NoiseModel::noiseless() };
        let sim = NoisySimulator { trajectories: 1, ..NoisySimulator::new(noise, 3) };
        let reads = sim.sample(&c, 6000);
        let samples = SampleSet::from_shots(&reads, |_| 0.0);

        let raw = samples.mean_bit(0);
        assert!((raw - 0.85).abs() < 0.03, "raw mean {raw}");

        let mitigator = ReadoutMitigator::new(0.15);
        let corrected = mitigator.mean_bits(&samples, 2);
        assert!(corrected[0] > 0.97, "corrected {corrected:?}");
        assert!(corrected[1] > 0.97, "corrected {corrected:?}");
    }

    #[test]
    fn recovers_bell_correlations_through_noisy_readout() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let noise = NoiseModel { readout_error: 0.1, ..NoiseModel::noiseless() };
        let sim = NoisySimulator { trajectories: 1, ..NoisySimulator::new(noise, 5) };
        let reads = sim.sample(&c, 8000);
        let samples = SampleSet::from_shots(&reads, |_| 0.0);

        // True Bell correlation is +1; raw is ~(1−2p)² = 0.64.
        let raw = samples.spin_correlation(0, 1);
        assert!((raw - 0.64).abs() < 0.05, "raw correlation {raw}");
        let mitigator = ReadoutMitigator::new(0.1);
        let corrected = mitigator.spin_correlation(&samples, 0, 1);
        assert!(corrected > 0.92, "corrected correlation {corrected}");
    }
}
