//! Quantum circuits: ordered gate lists with depth and count metrics.
//!
//! Depth is the length of the longest chain of gates that share qubits —
//! the quantity the paper's Figures 2 and 5 report, and the one that decides
//! whether a circuit fits inside the coherence window of a NISQ device.

use std::collections::BTreeMap;

use crate::gate::{Gate, GateQubits};

/// An ordered sequence of gates over a fixed number of qubits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, gates: Vec::new() }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate, panicking on out-of-range qubit indices.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.qubits().max() < self.num_qubits,
            "gate {gate:?} exceeds {} qubits",
            self.num_qubits
        );
        if let GateQubits::Two(a, b) = gate.qubits() {
            assert_ne!(a, b, "two-qubit gate {gate:?} must touch distinct qubits");
        }
        self.gates.push(gate);
    }

    /// Appends every gate of `other` (qubit counts must match).
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.gates.extend_from_slice(&other.gates);
    }

    /// Total gate count.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Gate counts per mnemonic, deterministically ordered.
    pub fn counts_by_name(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for g in &self.gates {
            *m.entry(g.name()).or_insert(0) += 1;
        }
        m
    }

    /// Circuit depth: longest chain of gates sharing qubits.
    pub fn depth(&self) -> usize {
        self.depth_where(|_| true)
    }

    /// Depth counting only two-qubit gates (single-qubit gates are free).
    ///
    /// Two-qubit depth is the usual proxy for error exposure, since 2q gates
    /// dominate both duration and error rates on superconducting hardware.
    pub fn two_qubit_depth(&self) -> usize {
        self.depth_where(Gate::is_two_qubit)
    }

    fn depth_where<F: Fn(&Gate) -> bool>(&self, counts: F) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut max = 0;
        for g in &self.gates {
            let weight = usize::from(counts(g));
            let level = g.qubits().iter().map(|q| frontier[q]).max().unwrap_or(0) + weight;
            for q in g.qubits().iter() {
                frontier[q] = level;
            }
            max = max.max(level);
        }
        max
    }

    /// Schedules gates into ASAP layers; gates in one layer act on disjoint
    /// qubits. `layers().len() == depth()`.
    pub fn layers(&self) -> Vec<Vec<Gate>> {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut layers: Vec<Vec<Gate>> = Vec::new();
        for g in &self.gates {
            let level = g.qubits().iter().map(|q| frontier[q]).max().unwrap_or(0);
            for q in g.qubits().iter() {
                frontier[q] = level + 1;
            }
            if level >= layers.len() {
                layers.resize_with(level + 1, Vec::new);
            }
            layers[level].push(*g);
        }
        layers
    }

    /// The adjoint circuit (reversed order, inverted gates).
    pub fn inverse(&self) -> Circuit {
        use Gate::*;
        let mut inv = Circuit::new(self.num_qubits);
        for g in self.gates.iter().rev() {
            let ig = match *g {
                H(q) => H(q),
                X(q) => X(q),
                Y(q) => Y(q),
                Z(q) => Z(q),
                S(q) => Sdg(q),
                Sdg(q) => S(q),
                Sx(q) => Rx(q, -std::f64::consts::FRAC_PI_2),
                Rx(q, t) => Rx(q, -t),
                Ry(q, t) => Ry(q, -t),
                Rz(q, t) => Rz(q, -t),
                Phase(q, t) => Phase(q, -t),
                Cx(a, b) => Cx(a, b),
                Cz(a, b) => Cz(a, b),
                Swap(a, b) => Swap(a, b),
                Rzz(a, b, t) => Rzz(a, b, -t),
                Rxx(a, b, t) => Rxx(a, b, -t),
            };
            inv.gates.push(ig);
        }
        inv
    }

    /// Rewrites every gate's qubit indices through `f`. The mapping must be
    /// injective into `0..new_num_qubits`.
    pub fn remap_qubits<F: Fn(usize) -> usize>(&self, new_num_qubits: usize, f: F) -> Circuit {
        let mut out = Circuit::new(new_num_qubits);
        for g in &self.gates {
            out.push(g.map_qubits(&f));
        }
        out
    }

    /// Total execution duration given per-gate durations in seconds, using
    /// the ASAP layering (gates in one layer run concurrently).
    pub fn duration(&self, time_1q: f64, time_2q: f64) -> f64 {
        let mut frontier = vec![0.0f64; self.num_qubits];
        let mut end = 0.0f64;
        for g in &self.gates {
            let t = if g.is_two_qubit() { time_2q } else { time_1q };
            let start = g.qubits().iter().map(|q| frontier[q]).fold(0.0f64, f64::max);
            let finish = start + t;
            for q in g.qubits().iter() {
                frontier[q] = finish;
            }
            end = end.max(finish);
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate::*;

    #[test]
    fn depth_counts_longest_chain() {
        let mut c = Circuit::new(3);
        c.push(H(0));
        c.push(H(1));
        c.push(Cx(0, 1)); // depends on both H's -> level 2
        c.push(H(2)); // parallel -> level 1
        c.push(Cx(1, 2)); // level 3
        assert_eq!(c.depth(), 3);
        assert_eq!(c.two_qubit_depth(), 2);
        assert_eq!(c.len(), 5);
        assert_eq!(c.two_qubit_count(), 2);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.push(H(0));
        c.push(H(1));
        c.push(H(2));
        c.push(H(3));
        assert_eq!(c.depth(), 1);
        let layers = c.layers();
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 4);
    }

    #[test]
    fn layers_len_equals_depth() {
        let mut c = Circuit::new(3);
        for g in [H(0), Cx(0, 1), Rz(1, 0.3), Cx(1, 2), H(2), Cx(0, 1)] {
            c.push(g);
        }
        assert_eq!(c.layers().len(), c.depth());
        let total: usize = c.layers().iter().map(Vec::len).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn push_rejects_out_of_range() {
        Circuit::new(2).push(H(2));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn push_rejects_degenerate_two_qubit_gate() {
        Circuit::new(2).push(Cx(1, 1));
    }

    #[test]
    fn counts_by_name_aggregates() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(H(1));
        c.push(Cx(0, 1));
        let counts = c.counts_by_name();
        assert_eq!(counts["h"], 2);
        assert_eq!(counts["cx"], 1);
    }

    #[test]
    fn inverse_reverses_and_negates() {
        let mut c = Circuit::new(2);
        c.push(S(0));
        c.push(Rz(1, 0.5));
        c.push(Rzz(0, 1, 0.25));
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Rzz(0, 1, -0.25));
        assert_eq!(inv.gates()[1], Rz(1, -0.5));
        assert_eq!(inv.gates()[2], Sdg(0));
    }

    #[test]
    fn duration_uses_critical_path() {
        let mut c = Circuit::new(2);
        c.push(H(0)); // 10ns
        c.push(H(0)); // 10ns (sequential)
        c.push(H(1)); // parallel
        c.push(Cx(0, 1)); // 100ns after max(20, 10)
        let d = c.duration(10e-9, 100e-9);
        assert!((d - 120e-9).abs() < 1e-15);
    }

    #[test]
    fn remap_relabels_all_gates() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        let r = c.remap_qubits(4, |q| q + 2);
        assert_eq!(r.num_qubits(), 4);
        assert_eq!(r.gates()[0], H(2));
        assert_eq!(r.gates()[1], Cx(2, 3));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push(H(0));
        let mut b = Circuit::new(2);
        b.push(X(1));
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.gates()[1], X(1));
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        let c = Circuit::new(5);
        assert_eq!(c.depth(), 0);
        assert!(c.is_empty());
        assert_eq!(c.duration(1.0, 1.0), 0.0);
    }
}
