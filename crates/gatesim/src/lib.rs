//! Gate-based quantum computing substrate: circuit IR, dense state-vector
//! simulation, a stochastic NISQ noise model, QAOA, and classical optimisers
//! for the hybrid loop.
//!
//! This crate plays the role of IBM Q hardware plus Qiskit's execution stack
//! in the paper's experiments: the join-ordering QUBO built by `qjo-core` is
//! lowered to a QAOA circuit here, transpiled onto a hardware topology by
//! `qjo-transpile`, and sampled — ideally or under a calibrated noise model.
//!
//! # Example: solving a toy QUBO with QAOA
//!
//! ```
//! use qjo_qubo::Qubo;
//! use qjo_gatesim::qaoa::{QaoaParams, QaoaSimulator};
//! use qjo_gatesim::optim::NelderMead;
//!
//! let mut q = Qubo::new(2);
//! q.add_linear(0, -1.0);
//! q.add_linear(1, -1.0);
//! q.add_quadratic(0, 1, 2.0);
//!
//! let sim = QaoaSimulator::new(&q);
//! let result = NelderMead::default().minimize(
//!     |x| sim.expectation(&QaoaParams::from_flat(1, x)),
//!     &[0.2, 0.2],
//! );
//! assert!(result.fx < 0.0); // below the uniform-state expectation
//! ```

pub mod circuit;
pub mod complex;
pub mod gate;
pub mod mitigation;
pub mod noise;
pub mod optim;
pub mod qaoa;
pub mod qasm;
pub mod statevector;
pub mod timing;

/// Packed shot buffers (re-export of [`qjo_qubo::shots`]) — the type every
/// sampler in this crate returns.
pub use qjo_qubo::shots;

pub use circuit::Circuit;
pub use complex::C64;
pub use gate::Gate;
pub use mitigation::ReadoutMitigator;
pub use noise::{NoiseModel, NoisySimulator};
pub use qaoa::{qaoa_circuit, DiagonalHamiltonian, QaoaParams, QaoaSimulator};
pub use qasm::to_qasm;
pub use shots::ShotBuffer;
pub use statevector::{BasisSampler, StateVector};
pub use timing::QpuTimingModel;
