//! OpenQASM 2.0 export.
//!
//! Renders circuits in the interchange format the paper's toolchain
//! (Qiskit) consumes, so transpiled circuits can be inspected with standard
//! tooling or cross-checked against a real backend. Import is intentionally
//! out of scope (this library builds its circuits programmatically); the
//! exporter covers every gate of the IR.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Renders a circuit as an OpenQASM 2.0 program with a terminal
/// measure-all. Gates outside the QASM standard library are emitted via
/// their standard decompositions-as-definitions in the header.
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    // rzz/rxx are not in qelib1; define them via standard identities.
    out.push_str("gate rzz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }\n");
    out.push_str("gate rxx(theta) a,b { h a; h b; cx a,b; rz(theta) b; cx a,b; h a; h b; }\n");
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    for g in circuit.gates() {
        let line = match *g {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::S(q) => format!("s q[{q}];"),
            Gate::Sdg(q) => format!("sdg q[{q}];"),
            Gate::Sx(q) => format!("sx q[{q}];"),
            Gate::Rx(q, t) => format!("rx({t}) q[{q}];"),
            Gate::Ry(q, t) => format!("ry({t}) q[{q}];"),
            Gate::Rz(q, t) => format!("rz({t}) q[{q}];"),
            Gate::Phase(q, t) => format!("p({t}) q[{q}];"),
            Gate::Cx(c, t) => format!("cx q[{c}],q[{t}];"),
            Gate::Cz(a, b) => format!("cz q[{a}],q[{b}];"),
            Gate::Swap(a, b) => format!("swap q[{a}],q[{b}];"),
            Gate::Rzz(a, b, t) => format!("rzz({t}) q[{a}],q[{b}];"),
            Gate::Rxx(a, b, t) => format!("rxx({t}) q[{a}],q[{b}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    let _ = writeln!(out, "measure q -> c;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate::*;
    use crate::qaoa::{qaoa_circuit, QaoaParams};
    use qjo_qubo::Qubo;

    #[test]
    fn header_and_registers_are_emitted() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
        assert!(q.contains("creg c[3];"));
        assert!(q.trim_end().ends_with("measure q -> c;"));
    }

    #[test]
    fn every_gate_kind_renders() {
        let mut c = Circuit::new(3);
        for g in [
            H(0),
            X(1),
            Y(2),
            Z(0),
            S(1),
            Sdg(2),
            Sx(0),
            Rx(1, 0.5),
            Ry(2, -0.25),
            Rz(0, 1.0),
            Phase(1, 0.1),
            Cx(0, 1),
            Cz(1, 2),
            Swap(0, 2),
            Rzz(0, 1, 0.75),
            Rxx(1, 2, -0.5),
        ] {
            c.push(g);
        }
        let q = to_qasm(&c);
        for needle in [
            "h q[0];",
            "x q[1];",
            "y q[2];",
            "sdg q[2];",
            "sx q[0];",
            "rx(0.5) q[1];",
            "rz(1) q[0];",
            "p(0.1) q[1];",
            "cx q[0],q[1];",
            "cz q[1],q[2];",
            "swap q[0],q[2];",
            "rzz(0.75) q[0],q[1];",
            "rxx(-0.5) q[1],q[2];",
        ] {
            assert!(q.contains(needle), "missing `{needle}` in:\n{q}");
        }
    }

    #[test]
    fn qaoa_circuit_exports_with_definitions() {
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 1.0);
        let c = qaoa_circuit(&q.to_ising(), &QaoaParams { gammas: vec![0.4], betas: vec![0.3] });
        let qasm = to_qasm(&c);
        assert!(qasm.contains("gate rzz(theta)"));
        assert!(qasm.contains("rzz(0.2) q[0],q[1];")); // 2γJ = 2·0.4·0.25
                                                       // One line per gate plus 6 header/footer lines.
        assert_eq!(qasm.lines().count(), c.len() + 7);
    }
}
