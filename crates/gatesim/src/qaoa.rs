//! The Quantum Approximate Optimisation Algorithm (QAOA).
//!
//! QAOA prepares `|+⟩^{⊗n}` and alternates `p` times between the *cost
//! operator* `e^{−iγ H}` (diagonal, derived from the problem Ising
//! Hamiltonian) and the *mixer* `e^{−iβ Σ X_i}`. Measuring yields low-energy
//! assignments with enhanced probability; a classical optimiser tunes the
//! `2p` parameters between iterations (Farhi et al., 2014).
//!
//! Two execution paths are provided:
//!
//! * [`qaoa_circuit`] constructs the explicit gate sequence (H layer, RZ/RZZ
//!   cost network, RX mixer) — this is what gets transpiled onto hardware
//!   topologies and fed to the noisy simulator.
//! * [`QaoaSimulator`] evaluates the same unitary through a precomputed
//!   diagonal energy table, which is the fast path used inside classical
//!   parameter-optimisation loops.

use rand::RngExt;

use qjo_qubo::{IsingModel, Qubo};

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::statevector::StateVector;

/// A problem Hamiltonian that is diagonal in the computational basis,
/// materialised as an energy-per-basis-state table.
///
/// Built once per problem in O(2^n · m) via a Gray-code walk, then every
/// cost-layer application and expectation evaluation is a linear scan.
#[derive(Debug, Clone)]
pub struct DiagonalHamiltonian {
    num_qubits: usize,
    energies: Vec<f64>,
}

impl DiagonalHamiltonian {
    /// Tabulates the energies of a QUBO for every basis state.
    ///
    /// Basis index `z` assigns variable `i` the bit `z >> i & 1`.
    pub fn from_qubo(qubo: &Qubo) -> Self {
        let n = qubo.num_vars();
        assert!(n <= 30, "energy table for {n} qubits will not fit in memory");
        let compiled = qubo.compile();
        let mut energies = vec![0.0f64; 1usize << n];
        let mut x = vec![false; n];
        let mut e = qubo.offset();
        energies[0] = e;
        let mut gray = 0usize;
        for step in 1..1usize << n {
            let flip = step.trailing_zeros() as usize;
            e += compiled.flip_gain(&x, flip);
            x[flip] = !x[flip];
            gray ^= 1 << flip;
            energies[gray] = e;
        }
        DiagonalHamiltonian { num_qubits: n, energies }
    }

    /// Tabulates the energies of an Ising model (spin `+1` for bit `1`).
    pub fn from_ising(ising: &IsingModel) -> Self {
        Self::from_qubo(&ising.to_qubo())
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The full energy table indexed by basis state.
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }

    /// Energy of one basis state.
    pub fn energy(&self, z: usize) -> f64 {
        self.energies[z]
    }

    /// The ground-state energy.
    pub fn min_energy(&self) -> f64 {
        self.energies.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// The `2p` variational parameters of a depth-`p` QAOA ansatz.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaParams {
    /// Cost-operator angles, one per layer.
    pub gammas: Vec<f64>,
    /// Mixer angles, one per layer.
    pub betas: Vec<f64>,
}

impl QaoaParams {
    /// Creates parameters for `p` layers from a flat `[γ..., β...]` vector.
    pub fn from_flat(p: usize, flat: &[f64]) -> Self {
        assert_eq!(flat.len(), 2 * p, "expected 2p = {} parameters", 2 * p);
        QaoaParams { gammas: flat[..p].to_vec(), betas: flat[p..].to_vec() }
    }

    /// Flattens to `[γ..., β...]`.
    pub fn to_flat(&self) -> Vec<f64> {
        self.gammas.iter().chain(&self.betas).copied().collect()
    }

    /// Number of layers.
    pub fn p(&self) -> usize {
        debug_assert_eq!(self.gammas.len(), self.betas.len());
        self.gammas.len()
    }
}

impl QaoaParams {
    /// The INTERP warm start (Zhou et al.): extends an optimised depth-`p`
    /// schedule to depth `p + 1` by linear interpolation of the angle
    /// sequences — empirically a far better starting point than random
    /// restarts when sweeping depth.
    pub fn interpolate_to(&self, new_p: usize) -> QaoaParams {
        assert!(new_p >= self.p(), "can only extend to a deeper schedule");
        let stretch = |angles: &[f64]| -> Vec<f64> {
            let p = angles.len();
            if p == 0 {
                return vec![0.0; new_p];
            }
            if new_p == p {
                return angles.to_vec();
            }
            (0..new_p)
                .map(|i| {
                    // Map layer i of the new schedule onto fractional
                    // position of the old one.
                    let pos = if new_p == 1 {
                        0.0
                    } else {
                        i as f64 * (p - 1) as f64 / (new_p - 1) as f64
                    };
                    let lo = pos.floor() as usize;
                    let hi = (lo + 1).min(p - 1);
                    let frac = pos - lo as f64;
                    angles[lo] * (1.0 - frac) + angles[hi] * frac
                })
                .collect()
        };
        QaoaParams { gammas: stretch(&self.gammas), betas: stretch(&self.betas) }
    }
}

/// Builds the explicit QAOA circuit for an Ising Hamiltonian.
///
/// Uses the spin convention `s_i = +1` for bit 1 (so `s_i = −Z_i`), giving
/// cost gates `RZ_i(−2γ h_i)` and `RZZ_ij(2γ J_ij)`; the mixer layer is
/// `RX(2β)` on every qubit.
pub fn qaoa_circuit(ising: &IsingModel, params: &QaoaParams) -> Circuit {
    let n = ising.num_spins();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for layer in 0..params.p() {
        let gamma = params.gammas[layer];
        let beta = params.betas[layer];
        for (i, h) in ising.fields() {
            if h != 0.0 {
                c.push(Gate::Rz(i, -2.0 * gamma * h));
            }
        }
        for (i, j, jij) in ising.couplings() {
            if jij != 0.0 {
                c.push(Gate::Rzz(i, j, 2.0 * gamma * jij));
            }
        }
        for q in 0..n {
            c.push(Gate::Rx(q, 2.0 * beta));
        }
    }
    c
}

/// Noiseless QAOA evaluation through the diagonal energy table.
#[derive(Debug, Clone)]
pub struct QaoaSimulator {
    hamiltonian: DiagonalHamiltonian,
    /// Constant subtracted from nothing — kept so sampled energies match the
    /// original model exactly (the table already includes the offset).
    num_qubits: usize,
}

impl QaoaSimulator {
    /// Creates a simulator for the given QUBO problem.
    pub fn new(qubo: &Qubo) -> Self {
        let hamiltonian = DiagonalHamiltonian::from_qubo(qubo);
        let num_qubits = hamiltonian.num_qubits();
        QaoaSimulator { hamiltonian, num_qubits }
    }

    /// The underlying diagonal Hamiltonian.
    pub fn hamiltonian(&self) -> &DiagonalHamiltonian {
        &self.hamiltonian
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Prepares the QAOA state for the given parameters.
    pub fn state(&self, params: &QaoaParams) -> StateVector {
        let mut s = StateVector::plus(self.num_qubits);
        for layer in 0..params.p() {
            s.apply_diagonal_cost(self.hamiltonian.energies(), params.gammas[layer]);
            let beta = params.betas[layer];
            for q in 0..self.num_qubits {
                s.apply(Gate::Rx(q, 2.0 * beta));
            }
        }
        s
    }

    /// `⟨ψ(γ,β)| H |ψ(γ,β)⟩` — the objective the classical loop minimises.
    pub fn expectation(&self, params: &QaoaParams) -> f64 {
        self.state(params).expectation_diagonal(self.hamiltonian.energies())
    }

    /// Samples measurement shots from the QAOA state, packed one row per
    /// shot. The state is evolved and its sampling CDF built once for the
    /// whole batch.
    pub fn sample<R: RngExt + ?Sized>(
        &self,
        params: &QaoaParams,
        shots: usize,
        rng: &mut R,
    ) -> crate::shots::ShotBuffer {
        self.state(params).sample(rng, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn antiferro_pair() -> Qubo {
        // min -x0 - x1 + 2 x0 x1: ground states 01 and 10 at energy -1.
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 2.0);
        q
    }

    #[test]
    fn energy_table_matches_direct_evaluation() {
        let q = antiferro_pair();
        let h = DiagonalHamiltonian::from_qubo(&q);
        for z in 0..4usize {
            let x: Vec<bool> = (0..2).map(|i| z >> i & 1 == 1).collect();
            assert!((h.energy(z) - q.energy(&x).unwrap()).abs() < 1e-12);
        }
        assert_eq!(h.min_energy(), -1.0);
    }

    #[test]
    fn from_ising_agrees_with_from_qubo() {
        let q = antiferro_pair();
        let a = DiagonalHamiltonian::from_qubo(&q);
        let b = DiagonalHamiltonian::from_ising(&q.to_ising());
        for (x, y) in a.energies().iter().zip(b.energies()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_parameters_leave_uniform_state() {
        let q = antiferro_pair();
        let sim = QaoaSimulator::new(&q);
        let params = QaoaParams { gammas: vec![0.0], betas: vec![0.0] };
        let s = sim.state(&params);
        for p in s.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
        // Expectation at zero parameters = mean energy.
        let mean: f64 = sim.hamiltonian().energies().iter().sum::<f64>() / 4.0;
        assert!((sim.expectation(&params) - mean).abs() < 1e-12);
    }

    #[test]
    fn fast_path_matches_explicit_circuit() {
        // Asymmetric model so both RZ and RZZ paths are exercised.
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -3.0);
        q.add_quadratic(0, 1, 2.0);
        let ising = q.to_ising();
        let sim = QaoaSimulator::new(&q);
        let params = QaoaParams { gammas: vec![0.4, -0.2], betas: vec![0.7, 0.3] };

        let fast = sim.state(&params);
        let mut slow = StateVector::zero(2);
        slow.apply_circuit(&qaoa_circuit(&ising, &params));

        // Equal up to the global phase contributed by the Ising offset.
        assert!(fast.fidelity(&slow) > 1.0 - 1e-10);
        // And identical measurement statistics:
        let pf = fast.probabilities();
        let ps = slow.probabilities();
        for (a, b) in pf.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn optimised_parameters_beat_random_guessing() {
        // Coarse grid over (γ, β) must push ground-state probability above
        // the uniform baseline of 0.5 for the antiferromagnetic pair.
        let q = antiferro_pair();
        let sim = QaoaSimulator::new(&q);
        let mut best = f64::INFINITY;
        let mut best_params = QaoaParams { gammas: vec![0.0], betas: vec![0.0] };
        for gi in 0..24 {
            for bi in 0..24 {
                let params = QaoaParams {
                    gammas: vec![gi as f64 * std::f64::consts::PI / 12.0],
                    betas: vec![bi as f64 * std::f64::consts::PI / 24.0],
                };
                let e = sim.expectation(&params);
                if e < best {
                    best = e;
                    best_params = params;
                }
            }
        }
        let probs = sim.state(&best_params).probabilities();
        let ground = probs[1] + probs[2]; // |01> and |10>
        assert!(ground > 0.5, "ground-state probability only {ground}");
        assert!(best < -0.5, "best expectation {best} barely below uniform");
    }

    #[test]
    fn sampling_concentrates_on_ground_states_after_optimisation() {
        let q = antiferro_pair();
        let sim = QaoaSimulator::new(&q);
        // Optimise (γ, β) on a grid, then check sampling follows suit.
        let mut best = (f64::INFINITY, QaoaParams { gammas: vec![0.0], betas: vec![0.0] });
        for gi in 0..32 {
            for bi in 0..32 {
                let params = QaoaParams {
                    gammas: vec![gi as f64 * std::f64::consts::PI / 16.0],
                    betas: vec![bi as f64 * std::f64::consts::PI / 32.0],
                };
                let e = sim.expectation(&params);
                if e < best.0 {
                    best = (e, params);
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(11);
        let shots = sim.sample(&best.1, 2000, &mut rng);
        let good = shots.iter_bits().filter(|x| x[0] != x[1]).count() as f64 / 2000.0;
        assert!(good > 0.5, "ground-state shot fraction {good}");
    }

    #[test]
    fn circuit_structure_is_h_cost_mixer() {
        // Asymmetric linear terms so the Ising form keeps a non-zero field
        // (the symmetric pair has h = 0 and would emit no RZ at all).
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -3.0);
        q.add_quadratic(0, 1, 2.0);
        let params = QaoaParams { gammas: vec![0.3], betas: vec![0.5] };
        let c = qaoa_circuit(&q.to_ising(), &params);
        let counts = c.counts_by_name();
        assert_eq!(counts["h"], 2);
        assert_eq!(counts["rx"], 2);
        assert_eq!(counts["rzz"], 1);
        // h0 = -0.5 + 0.5 = 0 (skipped); h1 = -1.5 + 0.5 = -1.0 → one RZ.
        assert_eq!(counts["rz"], 1);
    }

    #[test]
    fn deeper_qaoa_improves_the_expectation() {
        // Farhi et al.: approximation quality improves with p. Optimise
        // p = 1 on a grid, then extend to p = 2 with Nelder–Mead from the
        // p = 1 solution — the optimum must not get worse, and on this
        // frustrated instance strictly improves (the 2-qubit pair is
        // already exactly solvable at p = 1, so use a triangle + field).
        let mut q = Qubo::new(3);
        q.add_linear(0, -1.0);
        q.add_linear(1, -2.0);
        q.add_linear(2, -1.0);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            q.add_quadratic(a, b, 2.0);
        }
        let sim = QaoaSimulator::new(&q);
        let ground = sim.hamiltonian().min_energy();

        let mut best1 = (f64::INFINITY, vec![0.0, 0.0]);
        for gi in 0..24 {
            for bi in 0..24 {
                let x = vec![
                    gi as f64 * std::f64::consts::PI / 12.0,
                    bi as f64 * std::f64::consts::PI / 24.0,
                ];
                let e = sim.expectation(&QaoaParams::from_flat(1, &x));
                if e < best1.0 {
                    best1 = (e, x);
                }
            }
        }

        let start2 = vec![best1.1[0], best1.1[0], best1.1[1], best1.1[1]];
        let r2 = crate::optim::NelderMead { max_iterations: 400, ..Default::default() }
            .minimize(|x| sim.expectation(&QaoaParams::from_flat(2, x)), &start2);
        assert!(r2.fx <= best1.0 + 1e-9, "p = 2 ({}) worse than p = 1 ({})", r2.fx, best1.0);
        assert!(
            best1.0 > ground + 1e-3,
            "instance too easy: p = 1 already reaches the ground state"
        );
        assert!(r2.fx < best1.0 - 1e-3, "p = 2 should strictly improve here");
        assert!(r2.fx > ground - 1e-9, "expectation cannot undershoot the spectrum");
    }

    #[test]
    fn interpolation_preserves_endpoints_and_monotone_schedules() {
        let p2 = QaoaParams { gammas: vec![0.2, 0.8], betas: vec![0.7, 0.1] };
        let p4 = p2.interpolate_to(4);
        assert_eq!(p4.p(), 4);
        // Endpoints preserved.
        assert!((p4.gammas[0] - 0.2).abs() < 1e-12);
        assert!((p4.gammas[3] - 0.8).abs() < 1e-12);
        assert!((p4.betas[0] - 0.7).abs() < 1e-12);
        assert!((p4.betas[3] - 0.1).abs() < 1e-12);
        // A monotone schedule stays monotone under interpolation.
        assert!(p4.gammas.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(p4.betas.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        // Same depth is the identity.
        assert_eq!(p2.interpolate_to(2), p2);
    }

    #[test]
    fn interpolated_warm_start_is_at_least_as_good_as_repeating_layers() {
        // Extend the grid-optimised p = 1 solution to p = 2 two ways and
        // compare the starting expectations: INTERP must not be worse than
        // the crude layer-repetition start by a large margin (both then
        // converge under optimisation; this checks the starting point).
        let mut q = Qubo::new(3);
        q.add_linear(0, -1.0);
        q.add_linear(1, -2.0);
        q.add_linear(2, -1.0);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            q.add_quadratic(a, b, 2.0);
        }
        let sim = QaoaSimulator::new(&q);
        let mut best1 = (f64::INFINITY, QaoaParams { gammas: vec![0.0], betas: vec![0.0] });
        for gi in 0..16 {
            for bi in 0..16 {
                let p = QaoaParams { gammas: vec![gi as f64 * 0.2], betas: vec![bi as f64 * 0.1] };
                let e = sim.expectation(&p);
                if e < best1.0 {
                    best1 = (e, p);
                }
            }
        }
        let interp = best1.1.interpolate_to(2);
        let e_interp = sim.expectation(&interp);
        // INTERP at the p = 1 optimum collapses to a constant schedule and
        // must reproduce the p = 1 value (the p = 2 ansatz contains it).
        assert!(
            e_interp <= best1.0 + 0.3,
            "INTERP start {e_interp} far above p=1 optimum {}",
            best1.0
        );
    }

    #[test]
    fn params_flat_round_trip() {
        let p = QaoaParams { gammas: vec![0.1, 0.2], betas: vec![0.3, 0.4] };
        let flat = p.to_flat();
        assert_eq!(flat, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(QaoaParams::from_flat(2, &flat), p);
        assert_eq!(p.p(), 2);
    }
}
