//! A minimal complex-number type for state-vector simulation.
//!
//! Hand-rolled rather than pulling in a numerics crate: the simulator needs
//! only arithmetic, conjugation, modulus, and `e^{iθ}`, and keeping the type
//! local guarantees a `#[repr(C)]` layout we control for the hot loops.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from its parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        C64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> C64 {
        C64::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + ZERO, z);
        assert_eq!(z * ONE, z);
        assert_eq!(z - z, ZERO);
        assert_eq!(-z, C64::new(-3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, C64::new(5.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(I * I, C64::real(-1.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(2.5, -1.5);
        let b = C64::new(0.5, 3.0);
        let q = (a * b) / b;
        assert!((q - a).norm() < 1e-12);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = C64::cis(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        assert!((C64::cis(std::f64::consts::PI) - C64::real(-1.0)).norm() < 1e-12);
    }

    #[test]
    fn conjugation_flips_imaginary_part() {
        let z = C64::new(1.0, 2.0);
        assert_eq!(z.conj(), C64::new(1.0, -2.0));
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-12);
    }
}
