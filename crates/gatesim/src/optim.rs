//! Classical optimisers for the hybrid QAOA loop.
//!
//! Each optimiser minimises a black-box objective `f: R^d → R` (the QAOA
//! energy expectation as a function of the variational parameters). The
//! paper uses Qiskit's AQGD (analytic quantum gradient descent); our
//! [`GradientDescent`] plays that role with central-difference gradients,
//! and [`NelderMead`], [`Spsa`], and [`GridSearch`] are provided as
//! alternatives with different evaluation budgets.

use qjo_exec::Parallelism;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Domain-separation salt of the `qaoa.step` fault site. Every
/// `minimize` call rolls the same per-evaluation-index stream, which is
/// deliberate: decisions stay pure in the plan and the index.
const QAOA_STEP_SALT: u64 = 0x7161_6f61_2e73_7465;

/// Domain-separation constant for SPSA's reseeded divergence restarts.
const SPSA_RESTART_SALT: u64 = 0x7370_7361_5f72_7374;

/// Wraps an objective with the `qaoa.step` fault site: a rolled
/// evaluation returns NaN — a diverged/garbage energy estimate from the
/// quantum processor — keyed purely by the evaluation index within this
/// `minimize` call.
struct ChaosObjective<F> {
    f: F,
    evals: u64,
}

impl<F: FnMut(&[f64]) -> f64> ChaosObjective<F> {
    fn new(f: F) -> Self {
        ChaosObjective { f, evals: 0 }
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        let unit = self.evals;
        self.evals += 1;
        if qjo_resil::should_inject("qaoa.step", QAOA_STEP_SALT, unit) {
            f64::NAN
        } else {
            (self.f)(x)
        }
    }
}

/// Counts recovered divergences (injected or real NaN/∞ evaluations the
/// optimiser routed around) once per `minimize` call.
fn record_divergences(divergences: u64) {
    if divergences > 0 {
        qjo_obs::counter!("resil.qaoa.step.divergences").add(divergences);
    }
}

/// Records an optimiser's running-best trajectory into the convergence
/// recorder (`optim` group, one series per `minimize` call, step =
/// iteration). Inert unless a recorder is active.
fn record_history(optimiser: &str, history: &[f64]) {
    let curve = qjo_obs::convergence::series("optim", optimiser);
    if !curve.is_active() {
        return;
    }
    for (step, &fx) in history.iter().enumerate() {
        curve.record(step as u64, fx);
    }
}

/// Result of an optimisation run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
    /// Best objective value after each iteration (monotone non-increasing).
    pub history: Vec<f64>,
}

/// Gradient descent with central-difference gradients and a fixed step.
///
/// Stands in for Qiskit's AQGD optimiser used in the paper's experiments.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Number of iterations (each costs `2d + 1` evaluations).
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Finite-difference step.
    pub fd_step: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        GradientDescent { iterations: 50, learning_rate: 0.1, fd_step: 1e-3 }
    }
}

impl GradientDescent {
    /// Minimises `f` starting from `x0`.
    ///
    /// Divergence recovery: a non-finite gradient or objective (real, or
    /// injected at the `qaoa.step` fault site) never poisons the state —
    /// the iterate reverts to the best known point and the run continues,
    /// counted under `resil.qaoa.step.divergences`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptResult {
        qjo_obs::counter!("gatesim.gd_iterations").add(self.iterations as u64);
        let d = x0.len();
        let mut f = ChaosObjective::new(f);
        let mut divergences = 0u64;
        let mut x = x0.to_vec();
        let mut evals = 0usize;
        let mut fx = f.eval(&x);
        evals += 1;
        if !fx.is_finite() {
            divergences += 1;
            fx = f64::INFINITY;
        }
        let mut best_x = x.clone();
        let mut best_fx = fx;
        let mut history = Vec::with_capacity(self.iterations);

        for _ in 0..self.iterations {
            let mut grad = vec![0.0; d];
            for k in 0..d {
                let mut xp = x.clone();
                xp[k] += self.fd_step;
                let mut xm = x.clone();
                xm[k] -= self.fd_step;
                grad[k] = (f.eval(&xp) - f.eval(&xm)) / (2.0 * self.fd_step);
                evals += 2;
            }
            if grad.iter().any(|g| !g.is_finite()) {
                divergences += 1;
                x.copy_from_slice(&best_x);
                history.push(best_fx);
                continue;
            }
            for k in 0..d {
                x[k] -= self.learning_rate * grad[k];
            }
            fx = f.eval(&x);
            evals += 1;
            if !fx.is_finite() {
                divergences += 1;
                x.copy_from_slice(&best_x);
            } else if fx < best_fx {
                best_fx = fx;
                best_x.copy_from_slice(&x);
            }
            history.push(best_fx);
        }
        record_divergences(divergences);
        record_history("gd", &history);
        OptResult { x: best_x, fx: best_fx, evals, history }
    }
}

/// Simultaneous-perturbation stochastic approximation: two evaluations per
/// iteration regardless of dimension.
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Number of iterations (2 evaluations each).
    pub iterations: usize,
    /// Initial step size `a` of the gain sequence `a_k = a / (k+1)^0.602`.
    pub a: f64,
    /// Initial perturbation size `c` of `c_k = c / (k+1)^0.101`.
    pub c: f64,
    /// RNG seed for the perturbation directions.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa { iterations: 100, a: 0.2, c: 0.2, seed: 0 }
    }
}

impl Spsa {
    /// Minimises `f` starting from `x0`.
    ///
    /// Divergence recovery: a non-finite evaluation restarts the
    /// iteration from the best known point with the perturbation RNG
    /// reseeded (deterministically, from the iteration index), counted
    /// under `resil.qaoa.step.divergences`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptResult {
        let d = x0.len();
        let mut f = ChaosObjective::new(f);
        let mut divergences = 0u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = x0.to_vec();
        let mut evals = 0usize;
        let mut best_x = x.clone();
        let mut best_fx = f.eval(&x);
        evals += 1;
        if !best_fx.is_finite() {
            divergences += 1;
            best_fx = f64::INFINITY;
        }
        let mut history = Vec::with_capacity(self.iterations);

        for k in 0..self.iterations {
            let restart_seed = || {
                StdRng::seed_from_u64(qjo_resil::stream_seed(
                    self.seed ^ SPSA_RESTART_SALT,
                    k as u64,
                ))
            };
            let ak = self.a / ((k + 1) as f64).powf(0.602);
            let ck = self.c / ((k + 1) as f64).powf(0.101);
            let delta: Vec<f64> =
                (0..d).map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 }).collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, s)| v + ck * s).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, s)| v - ck * s).collect();
            let fp = f.eval(&xp);
            let fm = f.eval(&xm);
            evals += 2;
            if !fp.is_finite() || !fm.is_finite() {
                divergences += 1;
                x.copy_from_slice(&best_x);
                rng = restart_seed();
                history.push(best_fx);
                continue;
            }
            for i in 0..d {
                let g = (fp - fm) / (2.0 * ck * delta[i]);
                x[i] -= ak * g;
            }
            let fx = f.eval(&x);
            evals += 1;
            if !fx.is_finite() {
                divergences += 1;
                x.copy_from_slice(&best_x);
                rng = restart_seed();
            } else if fx < best_fx {
                best_fx = fx;
                best_x.copy_from_slice(&x);
            }
            history.push(best_fx);
        }
        record_divergences(divergences);
        record_history("spsa", &history);
        OptResult { x: best_x, fx: best_fx, evals, history }
    }
}

/// Adam (adaptive-moment) gradient descent with central-difference
/// gradients — more robust than plain gradient descent on the rugged QAOA
/// landscapes that appear at larger `p`.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Iterations (each costs `2d + 1` evaluations).
    pub iterations: usize,
    /// Step size α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Finite-difference step.
    pub fd_step: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam { iterations: 100, learning_rate: 0.05, beta1: 0.9, beta2: 0.999, fd_step: 1e-3 }
    }
}

impl Adam {
    /// Minimises `f` starting from `x0`.
    ///
    /// Divergence recovery: a coordinate whose gradient comes back
    /// non-finite skips its moment update for that iteration; a
    /// non-finite objective reverts the iterate to the best known point.
    /// Both are counted under `resil.qaoa.step.divergences`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptResult {
        let d = x0.len();
        let mut f = ChaosObjective::new(f);
        let mut divergences = 0u64;
        let mut x = x0.to_vec();
        let mut m = vec![0.0; d];
        let mut v = vec![0.0; d];
        let mut evals = 0usize;
        let mut best_x = x.clone();
        let mut best_fx = f.eval(&x);
        evals += 1;
        if !best_fx.is_finite() {
            divergences += 1;
            best_fx = f64::INFINITY;
        }
        let mut history = Vec::with_capacity(self.iterations);
        const EPS: f64 = 1e-8;

        for t in 1..=self.iterations {
            for k in 0..d {
                let mut xp = x.clone();
                xp[k] += self.fd_step;
                let mut xm = x.clone();
                xm[k] -= self.fd_step;
                let g = (f.eval(&xp) - f.eval(&xm)) / (2.0 * self.fd_step);
                evals += 2;
                if !g.is_finite() {
                    divergences += 1;
                    continue;
                }
                m[k] = self.beta1 * m[k] + (1.0 - self.beta1) * g;
                v[k] = self.beta2 * v[k] + (1.0 - self.beta2) * g * g;
                let m_hat = m[k] / (1.0 - self.beta1.powi(t as i32));
                let v_hat = v[k] / (1.0 - self.beta2.powi(t as i32));
                x[k] -= self.learning_rate * m_hat / (v_hat.sqrt() + EPS);
            }
            let fx = f.eval(&x);
            evals += 1;
            if !fx.is_finite() {
                divergences += 1;
                x.copy_from_slice(&best_x);
            } else if fx < best_fx {
                best_fx = fx;
                best_x.copy_from_slice(&x);
            }
            history.push(best_fx);
        }
        record_divergences(divergences);
        record_history("adam", &history);
        OptResult { x: best_x, fx: best_fx, evals, history }
    }
}

/// Downhill-simplex (Nelder–Mead) derivative-free minimisation.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Initial simplex edge length.
    pub init_step: f64,
    /// Convergence tolerance on the objective spread across the simplex.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead { max_iterations: 200, init_step: 0.5, tolerance: 1e-8 }
    }
}

impl NelderMead {
    /// Minimises `f` starting from `x0`.
    ///
    /// Divergence recovery: non-finite evaluations (real, or injected at
    /// the `qaoa.step` fault site) enter the simplex as `+∞` — a total
    /// order the vertex sort handles — so one diverged vertex is simply
    /// the first to be reflected away, counted under
    /// `resil.qaoa.step.divergences`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptResult {
        let d = x0.len();
        assert!(d >= 1, "need at least one dimension");
        let mut chaos = ChaosObjective::new(f);
        let mut divergences = 0u64;
        let mut f = |x: &[f64]| {
            let fx = chaos.eval(x);
            if fx.is_finite() {
                fx
            } else {
                divergences += 1;
                f64::INFINITY
            }
        };
        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
        let mut evals = 0usize;
        let mut history = Vec::new();

        // Initial simplex: x0 plus one step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(d + 1);
        let fx0 = f(x0);
        evals += 1;
        simplex.push((x0.to_vec(), fx0));
        for k in 0..d {
            let mut v = x0.to_vec();
            v[k] += self.init_step;
            let fv = f(&v);
            evals += 1;
            simplex.push((v, fv));
        }

        for _ in 0..self.max_iterations {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            history.push(simplex[0].1);
            let spread = simplex[d].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }

            // Centroid of all but the worst point.
            let mut centroid = vec![0.0; d];
            for (v, _) in &simplex[..d] {
                for (c, vi) in centroid.iter_mut().zip(v) {
                    *c += vi / d as f64;
                }
            }
            let worst = simplex[d].clone();

            let reflect: Vec<f64> =
                centroid.iter().zip(&worst.0).map(|(c, w)| c + alpha * (c - w)).collect();
            let fr = f(&reflect);
            evals += 1;

            if fr < simplex[0].1 {
                // Try expanding further.
                let expand: Vec<f64> =
                    centroid.iter().zip(&reflect).map(|(c, r)| c + gamma * (r - c)).collect();
                let fe = f(&expand);
                evals += 1;
                simplex[d] = if fe < fr { (expand, fe) } else { (reflect, fr) };
            } else if fr < simplex[d - 1].1 {
                simplex[d] = (reflect, fr);
            } else {
                // Contract toward the centroid.
                let contract: Vec<f64> =
                    centroid.iter().zip(&worst.0).map(|(c, w)| c + rho * (w - c)).collect();
                let fc = f(&contract);
                evals += 1;
                if fc < worst.1 {
                    simplex[d] = (contract, fc);
                } else {
                    // Shrink everything toward the best vertex.
                    let best = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        for (v, b) in entry.0.iter_mut().zip(&best) {
                            *v = b + sigma * (*v - b);
                        }
                        entry.1 = f(&entry.0);
                        evals += 1;
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        record_divergences(divergences);
        record_history("nelder_mead", &history);
        let (x, fx) = simplex.swap_remove(0);
        OptResult { x, fx, evals, history }
    }
}

/// Exhaustive grid search over a box — practical for the `2p = 2` parameters
/// of depth-1 QAOA, and deterministic.
///
/// Evaluations are independent work units and run in parallel under
/// [`Parallelism`]; the argmin and the running-best history are reduced in
/// grid order afterwards (first grid point wins ties), so the result is
/// identical at any thread count. The objective must therefore be `Fn +
/// Sync` — a pure function of its input.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Per-dimension `(low, high)` bounds.
    pub bounds: Vec<(f64, f64)>,
    /// Grid points per dimension.
    pub resolution: usize,
    /// Worker threads for the evaluation loop; affects wall-clock only,
    /// never results.
    pub parallelism: Parallelism,
}

impl Default for GridSearch {
    /// A placeholder grid for struct-update syntax; `bounds` must be set
    /// before calling [`GridSearch::minimize`].
    fn default() -> Self {
        GridSearch { bounds: Vec::new(), resolution: 2, parallelism: Parallelism::auto() }
    }
}

impl GridSearch {
    /// Minimises `f` over the grid.
    pub fn minimize<F: Fn(&[f64]) -> f64 + Sync>(&self, f: F) -> OptResult {
        let d = self.bounds.len();
        assert!(d >= 1 && self.resolution >= 2, "degenerate grid");

        // Enumerate grid points in odometer order (dimension 0 fastest),
        // matching the sequential evaluation order exactly.
        let mut points: Vec<Vec<f64>> = Vec::new();
        let mut idx = vec![0usize; d];
        'enumerate: loop {
            points.push(
                idx.iter()
                    .zip(&self.bounds)
                    .map(|(&i, &(lo, hi))| lo + (hi - lo) * i as f64 / (self.resolution - 1) as f64)
                    .collect(),
            );
            let mut k = 0;
            loop {
                idx[k] += 1;
                if idx[k] < self.resolution {
                    break;
                }
                idx[k] = 0;
                k += 1;
                if k == d {
                    break 'enumerate;
                }
            }
        }

        qjo_obs::counter!("gatesim.grid_evals").add(points.len() as u64);
        // Injection is keyed by the grid index, so the decision is pure
        // per point and the parallel map stays order-independent.
        let indexed: Vec<(usize, Vec<f64>)> = points.iter().cloned().enumerate().collect();
        let values = qjo_exec::par_map(indexed, self.parallelism, |(i, x)| {
            if qjo_resil::should_inject("qaoa.step", QAOA_STEP_SALT, i as u64) {
                f64::NAN
            } else {
                f(&x)
            }
        });

        let mut best_x = Vec::new();
        let mut best_fx = f64::INFINITY;
        let mut history = Vec::with_capacity(values.len());
        let evals = values.len();
        let mut divergences = 0u64;
        for (x, fx) in points.into_iter().zip(values) {
            if !fx.is_finite() {
                divergences += 1;
            } else if fx < best_fx {
                best_fx = fx;
                best_x = x;
            }
            history.push(best_fx);
        }
        record_divergences(divergences);
        record_history("grid", &history);
        OptResult { x: best_x, fx: best_fx, evals, history }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shifted quadratic bowl with minimum 2.5 at (1, -2).
    fn bowl(x: &[f64]) -> f64 {
        (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2) + 2.5
    }

    #[test]
    fn gradient_descent_finds_quadratic_minimum() {
        let r = GradientDescent { iterations: 200, learning_rate: 0.2, fd_step: 1e-4 }
            .minimize(bowl, &[4.0, 3.0]);
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 2.0).abs() < 1e-3, "x1 = {}", r.x[1]);
        assert!((r.fx - 2.5).abs() < 1e-5);
    }

    #[test]
    fn adam_finds_quadratic_minimum() {
        let r = Adam { iterations: 400, ..Default::default() }.minimize(bowl, &[4.0, 3.0]);
        assert!((r.x[0] - 1.0).abs() < 1e-2, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 2.0).abs() < 1e-2, "x1 = {}", r.x[1]);
        assert!((r.fx - 2.5).abs() < 1e-3);
        assert!((bowl(&r.x) - r.fx).abs() < 1e-12);
    }

    #[test]
    fn adam_handles_badly_scaled_objectives() {
        // Plain GD with a fixed step diverges or crawls on 100:1 scaling;
        // Adam's per-coordinate normalisation copes.
        let skewed = |x: &[f64]| 100.0 * x[0].powi(2) + 0.01 * x[1].powi(2);
        let r = Adam { iterations: 600, ..Default::default() }.minimize(skewed, &[1.0, 10.0]);
        assert!(r.fx < 0.05, "fx = {}", r.fx);
    }

    #[test]
    fn nelder_mead_finds_quadratic_minimum() {
        let r = NelderMead::default().minimize(bowl, &[4.0, 3.0]);
        assert!((r.fx - 2.5).abs() < 1e-5, "fx = {}", r.fx);
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = NelderMead { max_iterations: 2000, init_step: 0.5, tolerance: 1e-12 }
            .minimize(rosen, &[-1.2, 1.0]);
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 1e-2 && (r.x[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn spsa_improves_from_start() {
        let r = Spsa { iterations: 300, ..Default::default() }.minimize(bowl, &[4.0, 3.0]);
        assert!(r.fx < bowl(&[4.0, 3.0]), "no improvement");
        assert!(r.fx < 3.5, "fx = {}", r.fx);
    }

    #[test]
    fn grid_search_hits_grid_optimum() {
        let g = GridSearch {
            bounds: vec![(-3.0, 3.0), (-3.0, 3.0)],
            resolution: 13,
            ..Default::default()
        };
        let r = g.minimize(bowl);
        // Grid spacing 0.5 puts exact points on (1, -2).
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!((r.x[1] + 2.0).abs() < 1e-9);
        assert_eq!(r.evals, 169);
    }

    #[test]
    fn grid_search_is_identical_at_any_thread_count() {
        let at = |threads| {
            GridSearch {
                bounds: vec![(-2.0, 2.0), (-2.0, 2.0)],
                resolution: 9,
                parallelism: Parallelism::new(threads),
            }
            .minimize(bowl)
        };
        let sequential = at(1);
        for threads in [2, 4, 8] {
            let parallel = at(threads);
            assert_eq!(sequential.x, parallel.x);
            assert_eq!(sequential.fx, parallel.fx);
            assert_eq!(sequential.evals, parallel.evals);
            assert_eq!(sequential.history, parallel.history);
        }
    }

    #[test]
    fn histories_are_monotone_non_increasing() {
        for history in [
            GradientDescent::default().minimize(bowl, &[3.0, 3.0]).history,
            Spsa::default().minimize(bowl, &[3.0, 3.0]).history,
            NelderMead::default().minimize(bowl, &[3.0, 3.0]).history,
            GridSearch { bounds: vec![(-1.0, 1.0); 2], resolution: 5, ..Default::default() }
                .minimize(bowl)
                .history,
        ] {
            for w in history.windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
        }
    }

    #[test]
    fn reported_fx_matches_reported_x() {
        let r = NelderMead::default().minimize(bowl, &[2.0, 2.0]);
        assert!((bowl(&r.x) - r.fx).abs() < 1e-12);
        let r = GradientDescent::default().minimize(bowl, &[2.0, 2.0]);
        assert!((bowl(&r.x) - r.fx).abs() < 1e-12);
    }

    #[test]
    fn convergence_recorder_captures_optimiser_trajectories() {
        qjo_obs::convergence::start(1);
        let gd =
            GradientDescent { iterations: 6, ..Default::default() }.minimize(bowl, &[3.0, 3.0]);
        let grid = GridSearch { bounds: vec![(-1.0, 1.0); 2], resolution: 3, ..Default::default() }
            .minimize(bowl);
        let drained = qjo_obs::convergence::drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "optim").expect("optim group recorded").1;
        assert!(csv.matches(",gd,").count() >= gd.history.len(), "{csv}");
        assert!(csv.matches(",grid,").count() >= grid.history.len(), "{csv}");
    }

    #[test]
    fn spsa_is_deterministic_per_seed() {
        let a = Spsa { seed: 3, ..Default::default() }.minimize(bowl, &[2.0, 2.0]);
        let b = Spsa { seed: 3, ..Default::default() }.minimize(bowl, &[2.0, 2.0]);
        assert_eq!(a.x, b.x);
        assert_eq!(a.fx, b.fx);
    }
}
