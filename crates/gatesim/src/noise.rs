//! Stochastic NISQ noise model and noisy circuit sampling.
//!
//! Real QPU shots suffer gate errors, T1/T2 decoherence accumulating with
//! circuit duration, and readout misclassification. We model all three as
//! Monte-Carlo *trajectories*: each trajectory applies the ideal circuit
//! with stochastically inserted Pauli errors (the standard Pauli-twirl
//! approximation of the combined amplitude/phase-damping channel) and then
//! samples measurements with readout flips.
//!
//! This reproduces the property the paper's evaluation hinges on: result
//! quality collapses once circuit duration approaches `min(T1, T2)`, and
//! deeper circuits (more gates) accumulate proportionally more error.
//!
//! Trajectories are independent work units: trajectory `i` derives its
//! own RNG stream from `(seed, i)` via [`qjo_exec::stream_seed`], so the
//! returned shots are bit-identical at any [`Parallelism`] setting.

use qjo_exec::{par_map_seeded, Parallelism};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::shots::ShotBuffer;
use crate::statevector::StateVector;

/// Attempt budget per trajectory (first run + reseeded re-runs).
const TRAJECTORY_ATTEMPTS: u64 = 3;
/// Domain-separation constant for reseeding lost trajectories.
const TRAJECTORY_RESEED_SALT: u64 = 0x7472_616a_5f72_6572;

/// Calibration data of a (real or hypothetical) gate-based QPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relaxation time T1 in seconds.
    pub t1: f64,
    /// Dephasing time T2 in seconds.
    pub t2: f64,
    /// Duration of a single-qubit gate in seconds.
    pub time_1q: f64,
    /// Duration of a two-qubit gate in seconds.
    pub time_2q: f64,
    /// Depolarising error probability per single-qubit gate.
    pub p_depol_1q: f64,
    /// Depolarising error probability per two-qubit gate (per gate, split
    /// across both qubits).
    pub p_depol_2q: f64,
    /// Probability of misreading each measured bit.
    pub readout_error: f64,
}

impl NoiseModel {
    /// IBM Q Auckland (27 qubits, Falcon r5.11) at the calibration reported
    /// in the paper: T1 = 151.13 µs, T2 = 138.72 µs, average gate time
    /// 472.51 ns.
    pub fn ibm_auckland() -> Self {
        NoiseModel {
            t1: 151.13e-6,
            t2: 138.72e-6,
            time_1q: 35.0e-9,
            time_2q: 472.51e-9,
            p_depol_1q: 3.0e-4,
            p_depol_2q: 9.0e-3,
            readout_error: 1.3e-2,
        }
    }

    /// IBM Q Washington (127 qubits, Eagle r1): T1 = 92.81 µs,
    /// T2 = 93.36 µs, average gate time 550.41 ns.
    pub fn ibm_washington() -> Self {
        NoiseModel {
            t1: 92.81e-6,
            t2: 93.36e-6,
            time_1q: 40.0e-9,
            time_2q: 550.41e-9,
            p_depol_1q: 5.0e-4,
            p_depol_2q: 1.4e-2,
            readout_error: 2.0e-2,
        }
    }

    /// An ideal device: no errors, instantaneous gates relative to coherence.
    pub fn noiseless() -> Self {
        NoiseModel {
            t1: f64::INFINITY,
            t2: f64::INFINITY,
            time_1q: 0.0,
            time_2q: 0.0,
            p_depol_1q: 0.0,
            p_depol_2q: 0.0,
            readout_error: 0.0,
        }
    }

    /// Checks the calibration for physical consistency.
    ///
    /// Decoherence obeys `T2 ≤ 2·T1` (transverse decay is bounded by twice
    /// the longitudinal rate). A calibration violating it makes
    /// [`Self::pauli_rates`] clamp the dephasing channel to zero — the model
    /// then *silently* simulates less Z noise than the nominal `1/T2` decay,
    /// which is exactly the kind of miscalibration a co-design sweep should
    /// reject rather than average over. Infinite times are fine: `T2 = ∞`
    /// only passes together with `T1 = ∞` (the noiseless device).
    pub fn validate(&self) -> Result<(), String> {
        if self.t2 > 2.0 * self.t1 {
            return Err(format!(
                "physically inconsistent calibration: T2 = {:.3e} s exceeds 2·T1 = {:.3e} s",
                self.t2,
                2.0 * self.t1
            ));
        }
        Ok(())
    }

    /// The paper's calibration-average gate time.
    ///
    /// Transpiled QAOA circuits are dominated by two-qubit gates (every
    /// cost term is an RZZ plus routing SWAPs), so the device-level average
    /// the paper quotes — e.g. 472.51 ns for Auckland — is the two-qubit
    /// time, not the unweighted mean of the 1q/2q durations.
    pub fn avg_gate_time(&self) -> f64 {
        if self.time_2q > 0.0 {
            self.time_2q
        } else {
            self.time_1q
        }
    }

    /// Maximum circuit depth before the cumulative gate time exceeds the
    /// coherence window — the paper's `d = ⌊min(T1, T2) / g_avg⌋` with
    /// `g_avg` the calibration-average gate time ([`Self::avg_gate_time`]).
    pub fn max_coherent_depth(&self) -> usize {
        self.coherent_depth_for_gate_time(self.avg_gate_time())
    }

    /// Coherence-limited depth for a circuit's actual gate mix: the average
    /// layer time is the gate-count-weighted mean of the 1q/2q durations.
    pub fn max_coherent_depth_for(&self, gates_1q: usize, gates_2q: usize) -> usize {
        let total = gates_1q + gates_2q;
        if total == 0 {
            return usize::MAX;
        }
        let g = (gates_1q as f64 * self.time_1q + gates_2q as f64 * self.time_2q) / total as f64;
        self.coherent_depth_for_gate_time(g)
    }

    fn coherent_depth_for_gate_time(&self, g: f64) -> usize {
        // min(T1, T2) picks the finite window when only one time is
        // infinite; with both infinite (or zero-duration gates) there is no
        // coherence limit at all.
        let window = self.t1.min(self.t2);
        if !window.is_finite() || g <= 0.0 {
            return usize::MAX;
        }
        (window / g) as usize
    }

    /// Pauli-twirl error probabilities `(p_x, p_y, p_z)` accumulated over a
    /// duration `t`: amplitude damping at rate `1/T1` contributes X and Y
    /// errors, pure dephasing the remainder of the `1/T2` decay as Z errors.
    ///
    /// Each channel is evaluated independently, so a hypothetical
    /// pure-dephasing device (`t1 = ∞`, finite `t2`) still produces Z
    /// errors, and a pure-relaxation device (`t2 = 2·t1`) still produces
    /// X/Y errors. An infinite time simply switches its channel off.
    pub fn pauli_rates(&self, t: f64) -> (f64, f64, f64) {
        let p_relax = if self.t1.is_finite() { 1.0 - (-t / self.t1).exp() } else { 0.0 };
        let p_deph = if self.t2.is_finite() { 1.0 - (-t / self.t2).exp() } else { 0.0 };
        let px = p_relax / 4.0;
        let py = p_relax / 4.0;
        // The clamp only fires for T2 > 2·T1 calibrations, which
        // `Self::validate` rejects as physically inconsistent.
        let pz = (p_deph / 2.0 - p_relax / 4.0).max(0.0);
        (px, py, pz)
    }
}

/// Noisy circuit executor producing measurement shots.
#[derive(Debug, Clone)]
pub struct NoisySimulator {
    /// Device calibration.
    pub model: NoiseModel,
    /// Number of independent noise trajectories; shots are split across
    /// them. More trajectories sample gate errors more finely but cost one
    /// full state-vector evolution each.
    pub trajectories: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the trajectory loop; affects wall-clock only,
    /// never results.
    pub parallelism: Parallelism,
}

/// Per-gate-class error probabilities, folded once per `sample` call so the
/// hot trajectory loop never re-evaluates the `exp`s in
/// [`NoiseModel::pauli_rates`]. The cumulative thresholds are exactly the
/// `px`, `px + py`, `px + py + pz` sums the per-gate path used, so the
/// uniform-draw comparisons are bit-identical.
#[derive(Debug, Clone, Copy)]
struct GateNoise {
    p_depol: f64,
    thresh_x: f64,
    thresh_xy: f64,
    thresh_xyz: f64,
}

impl NoisySimulator {
    /// Creates an executor with a default of 16 trajectories.
    ///
    /// Debug builds assert [`NoiseModel::validate`]; call it yourself when
    /// sweeping hypothetical calibrations.
    pub fn new(model: NoiseModel, seed: u64) -> Self {
        debug_assert!(model.validate().is_ok(), "{}", model.validate().unwrap_err());
        NoisySimulator { model, trajectories: 16, seed, parallelism: Parallelism::auto() }
    }

    /// Runs `shots` measurements of `circuit` under the noise model,
    /// returned as a packed [`ShotBuffer`] in trajectory order.
    ///
    /// Trajectory `i` derives its own RNG stream from `(self.seed, i)`,
    /// so the result does not depend on [`Self::parallelism`].
    pub fn sample(&self, circuit: &Circuit, shots: usize) -> ShotBuffer {
        assert!(self.trajectories >= 1, "need at least one trajectory");
        debug_assert!(self.model.validate().is_ok(), "{}", self.model.validate().unwrap_err());
        let _span = qjo_obs::span!("gatesim.noisy.sample");
        qjo_obs::counter!("gatesim.trajectories").add(self.trajectories as u64);
        qjo_obs::counter!("gatesim.shots").add(shots as u64);
        let n = circuit.num_qubits();
        let base = shots / self.trajectories;
        let extra = shots % self.trajectories;
        let noise_1q = self.gate_noise(false);
        let noise_2q = self.gate_noise(true);

        let trajectories: Vec<usize> = (0..self.trajectories).collect();
        let per_trajectory = par_map_seeded(trajectories, self.seed, self.parallelism, |t, rng| {
            let this_shots = base + usize::from(t < extra);
            if this_shots == 0 {
                return ShotBuffer::new(n);
            }
            // A lost trajectory (the `gatesim.trajectory` fault site) is
            // re-run on a reseeded stream. The decision is pure in
            // `(plan, seed, t, attempt)`, so the retry count — and hence
            // the replacement stream — is thread-count invariant.
            let mut attempt: u64 = 0;
            while attempt + 1 < TRAJECTORY_ATTEMPTS
                && qjo_resil::should_inject(
                    "gatesim.trajectory",
                    self.seed.wrapping_add(attempt),
                    t as u64,
                )
            {
                qjo_obs::counter!("resil.gatesim.trajectory.retries").incr();
                attempt += 1;
            }
            let mut reseeded;
            let rng: &mut StdRng = if attempt == 0 {
                rng
            } else {
                let stream = qjo_resil::stream_seed(self.seed ^ TRAJECTORY_RESEED_SALT, attempt);
                reseeded = StdRng::seed_from_u64(qjo_resil::stream_seed(stream, t as u64));
                &mut reseeded
            };
            let mut state = StateVector::zero(n);
            for g in circuit.gates() {
                state.apply(*g);
                let noise = if g.is_two_qubit() { &noise_2q } else { &noise_1q };
                Self::insert_errors(&mut state, g, noise, rng);
            }
            // Draw order matches the unpacked representation exactly: all
            // shot uniforms first, then readout flips shot-major/bit-minor —
            // but the flips of one shot now land as a single word XOR.
            let mut out = state.sampler().sample(rng, this_shots);
            if self.model.readout_error > 0.0 {
                for s in 0..this_shots {
                    let mut flips = 0u64;
                    for q in 0..n {
                        if rng.random_bool(self.model.readout_error) {
                            flips |= 1u64 << q;
                        }
                    }
                    out.xor_word(s, 0, flips);
                }
            }
            out
        });
        let mut all = ShotBuffer::with_capacity(n, shots);
        for buf in &per_trajectory {
            all.append(buf);
        }
        all
    }

    /// Folds the depolarising probability and cumulative Pauli-twirl
    /// thresholds for one gate class (1q or 2q).
    fn gate_noise(&self, two_qubit: bool) -> GateNoise {
        let (p_depol, t_gate) = if two_qubit {
            (self.model.p_depol_2q, self.model.time_2q)
        } else {
            (self.model.p_depol_1q, self.model.time_1q)
        };
        let (px, py, pz) = self.model.pauli_rates(t_gate);
        GateNoise { p_depol, thresh_x: px, thresh_xy: px + py, thresh_xyz: px + py + pz }
    }

    fn insert_errors<R: RngExt + ?Sized>(
        state: &mut StateVector,
        gate: &Gate,
        noise: &GateNoise,
        rng: &mut R,
    ) {
        for q in gate.qubits().iter() {
            // Depolarising gate error: uniform Pauli with probability p.
            if noise.p_depol > 0.0 && rng.random_bool(noise.p_depol) {
                match rng.random_range(0..3) {
                    0 => state.apply(Gate::X(q)),
                    1 => state.apply(Gate::Y(q)),
                    _ => state.apply(Gate::Z(q)),
                }
            }
            // Decoherence over the gate duration (Pauli-twirled T1/T2).
            let u: f64 = rng.random();
            if u < noise.thresh_x {
                state.apply(Gate::X(q));
            } else if u < noise.thresh_xy {
                state.apply(Gate::Y(q));
            } else if u < noise.thresh_xyz {
                state.apply(Gate::Z(q));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate::*;

    #[test]
    fn noiseless_model_reproduces_ideal_statistics() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        let sim = NoisySimulator::new(NoiseModel::noiseless(), 3);
        let shots = sim.sample(&c, 2000);
        assert_eq!(shots.len(), 2000);
        // Bell state: both bits always agree.
        assert!(shots.iter_bits().all(|b| b[0] == b[1]));
        let ones = shots.count_ones(0) as f64 / 2000.0;
        assert!((ones - 0.5).abs() < 0.05);
    }

    #[test]
    fn readout_error_flips_bits() {
        let c = Circuit::new(1); // state stays |0>
        let model = NoiseModel { readout_error: 0.25, ..NoiseModel::noiseless() };
        let sim = NoisySimulator::new(model, 7);
        let shots = sim.sample(&c, 4000);
        let flipped = shots.count_ones(0) as f64 / 4000.0;
        assert!((flipped - 0.25).abs() < 0.05, "flip rate {flipped}");
    }

    #[test]
    fn depolarising_noise_degrades_bell_correlations() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        // Pad with identity-equivalent work to accumulate error.
        for _ in 0..30 {
            c.push(X(0));
            c.push(X(0));
        }
        let model = NoiseModel { p_depol_1q: 0.02, p_depol_2q: 0.05, ..NoiseModel::noiseless() };
        let sim = NoisySimulator { trajectories: 64, ..NoisySimulator::new(model, 1) };
        let shots = sim.sample(&c, 2048);
        let agree = shots.iter_bits().filter(|b| b[0] == b[1]).count() as f64 / 2048.0;
        assert!(agree < 0.95, "correlations survived unrealistically: {agree}");
        assert!(agree > 0.5, "noise should not fully scramble: {agree}");
    }

    #[test]
    fn deeper_circuits_accumulate_more_error() {
        // Identity circuits of increasing depth on |0>: the fraction of
        // erroneous `1` readouts must grow with depth.
        let model = NoiseModel { p_depol_1q: 0.01, ..NoiseModel::noiseless() };
        let error_rate = |depth: usize| {
            let mut c = Circuit::new(1);
            for _ in 0..depth {
                c.push(X(0));
                c.push(X(0));
            }
            let sim = NoisySimulator { trajectories: 256, ..NoisySimulator::new(model, 5) };
            let shots = sim.sample(&c, 4096);
            shots.count_ones(0) as f64 / 4096.0
        };
        let shallow = error_rate(5);
        let deep = error_rate(80);
        assert!(deep > shallow + 0.05, "deep error {deep} not clearly above shallow {shallow}");
    }

    #[test]
    fn pauli_rates_are_probabilities_and_grow_with_time() {
        let m = NoiseModel::ibm_auckland();
        let (x1, y1, z1) = m.pauli_rates(1e-7);
        let (x2, y2, z2) = m.pauli_rates(1e-5);
        for p in [x1, y1, z1, x2, y2, z2] {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(x2 > x1 && y2 > y1 && z2 >= z1);
        // Noiseless model has zero rates at any duration.
        assert_eq!(NoiseModel::noiseless().pauli_rates(1.0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn pure_dephasing_device_still_dephases() {
        // Regression: a hypothetical pure-dephasing calibration (finite T2,
        // infinite T1) used to short-circuit to zero noise because the old
        // `pauli_rates` required *both* times to be finite.
        let m = NoiseModel { t1: f64::INFINITY, t2: 100e-6, ..NoiseModel::noiseless() };
        let (px, py, pz) = m.pauli_rates(1e-6);
        assert_eq!(px, 0.0, "no amplitude damping without a T1 channel");
        assert_eq!(py, 0.0);
        assert!(pz > 0.0, "finite T2 must produce Z errors, got pz = {pz}");
        // And the Z rate matches the explicit p_deph/2 formula.
        let expected = (1.0 - (-1e-6f64 / 100e-6).exp()) / 2.0;
        assert!((pz - expected).abs() < 1e-15);
    }

    #[test]
    fn validate_accepts_physical_and_rejects_unphysical_calibrations() {
        assert!(NoiseModel::ibm_auckland().validate().is_ok());
        assert!(NoiseModel::ibm_washington().validate().is_ok());
        assert!(NoiseModel::noiseless().validate().is_ok());
        // Pure dephasing (T1 = ∞) satisfies T2 ≤ 2·T1.
        let deph = NoiseModel { t1: f64::INFINITY, t2: 100e-6, ..NoiseModel::noiseless() };
        assert!(deph.validate().is_ok());
        // T2 > 2·T1 is unphysical — this is exactly the regime where the
        // pz clamp in `pauli_rates` silently under-reports dephasing.
        let bad = NoiseModel { t1: 10e-6, t2: 50e-6, ..NoiseModel::noiseless() };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("2·T1"), "unexpected message: {err}");
        // Boundary: pure amplitude damping has exactly T2 = 2·T1.
        let boundary = NoiseModel { t1: 10e-6, t2: 20e-6, ..NoiseModel::noiseless() };
        assert!(boundary.validate().is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "inconsistent calibration")]
    fn debug_builds_reject_unphysical_models_at_construction() {
        let bad = NoiseModel { t1: 10e-6, t2: 50e-6, ..NoiseModel::noiseless() };
        let _ = NoisySimulator::new(bad, 0);
    }

    #[test]
    fn coherent_depth_matches_paper_formula() {
        // The paper's g_avg for QAOA workloads is the two-qubit gate time
        // (472.51 ns on Auckland), not the unweighted 1q/2q mean.
        let m = NoiseModel::ibm_auckland();
        assert_eq!(m.avg_gate_time(), m.time_2q);
        let expected = (m.t1.min(m.t2) / m.time_2q) as usize;
        assert_eq!(m.max_coherent_depth(), expected);
        assert!(expected > 100, "Auckland supports a few hundred layers");
        assert_eq!(NoiseModel::noiseless().max_coherent_depth(), usize::MAX);
    }

    #[test]
    fn coherent_depth_handles_gate_mix_and_infinite_times() {
        let m = NoiseModel::ibm_auckland();
        // All-2q mix reproduces the calibration-average depth; mixing in 1q
        // gates shortens the average layer and deepens the window.
        assert_eq!(m.max_coherent_depth_for(0, 1), m.max_coherent_depth());
        let mixed = m.max_coherent_depth_for(3, 1);
        let g = (3.0 * m.time_1q + m.time_2q) / 4.0;
        assert_eq!(mixed, (m.t2 / g) as usize);
        assert!(mixed > m.max_coherent_depth());
        assert_eq!(m.max_coherent_depth_for(0, 0), usize::MAX);
        // One infinite coherence time: the finite one bounds the window.
        let deph = NoiseModel { t1: f64::INFINITY, t2: 100e-6, ..NoiseModel::ibm_auckland() };
        assert_eq!(deph.max_coherent_depth(), (100e-6 / deph.time_2q) as usize);
    }

    #[test]
    fn washington_is_noisier_than_auckland() {
        // The paper's observation: more qubits, worse coherence.
        let a = NoiseModel::ibm_auckland();
        let w = NoiseModel::ibm_washington();
        assert!(w.t1 < a.t1 && w.t2 < a.t2);
        assert!(w.max_coherent_depth() < a.max_coherent_depth());
    }

    #[test]
    fn thread_count_does_not_change_shots() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        let model = NoiseModel::ibm_auckland();
        let at = |threads| {
            let sim = NoisySimulator {
                trajectories: 6,
                parallelism: Parallelism::new(threads),
                ..NoisySimulator::new(model, 11)
            };
            sim.sample(&c, 300)
        };
        let sequential = at(1);
        assert_eq!(sequential, at(3));
        assert_eq!(sequential, at(8));
    }

    #[test]
    fn sampling_records_trajectory_and_shot_counters() {
        let circuit = Circuit::new(1);
        let sim =
            NoisySimulator { trajectories: 3, ..NoisySimulator::new(NoiseModel::noiseless(), 0) };
        let before = qjo_obs::global().snapshot();
        sim.sample(&circuit, 10);
        let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
        assert!(deltas["gatesim.trajectories"] >= 3, "{deltas:?}");
        assert!(deltas["gatesim.shots"] >= 10, "{deltas:?}");
    }

    #[test]
    fn shots_split_across_trajectories_exactly() {
        // Property: for any (trajectories, shots) — shots below, equal to,
        // above, and non-divisible by the trajectory count, plus zero —
        // the returned buffer holds exactly the requested shots.
        let mut c = Circuit::new(2);
        c.push(H(0));
        let model = NoiseModel::ibm_auckland();
        for trajectories in [1usize, 2, 7, 16, 33] {
            for shots in [0usize, 1, 3, 7, 16, 23, 100] {
                let sim = NoisySimulator { trajectories, ..NoisySimulator::new(model, 0) };
                let out = sim.sample(&c, shots);
                assert_eq!(out.len(), shots, "trajectories={trajectories} shots={shots}");
                assert_eq!(out.num_bits(), 2);
            }
        }
    }

    #[test]
    fn empty_trajectories_short_circuit_without_touching_their_streams() {
        // With shots < trajectories only the first `shots` trajectories do
        // work; the trailing ones take the `this_shots == 0` early return.
        // Their RNG streams are keyed by (seed, index), so the populated
        // prefix must be identical to a run with exactly `shots`
        // trajectories — proving the empty units contribute nothing.
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        let model = NoiseModel::ibm_auckland();
        let sample_with = |trajectories| {
            let sim = NoisySimulator { trajectories, ..NoisySimulator::new(model, 13) };
            sim.sample(&c, 3)
        };
        assert_eq!(sample_with(9), sample_with(3));
    }
}
