//! Stochastic NISQ noise model and noisy circuit sampling.
//!
//! Real QPU shots suffer gate errors, T1/T2 decoherence accumulating with
//! circuit duration, and readout misclassification. We model all three as
//! Monte-Carlo *trajectories*: each trajectory applies the ideal circuit
//! with stochastically inserted Pauli errors (the standard Pauli-twirl
//! approximation of the combined amplitude/phase-damping channel) and then
//! samples measurements with readout flips.
//!
//! This reproduces the property the paper's evaluation hinges on: result
//! quality collapses once circuit duration approaches `min(T1, T2)`, and
//! deeper circuits (more gates) accumulate proportionally more error.
//!
//! Trajectories are independent work units: trajectory `i` derives its
//! own RNG stream from `(seed, i)` via [`qjo_exec::stream_seed`], so the
//! returned shots are bit-identical at any [`Parallelism`] setting.

use qjo_exec::{par_map_seeded, Parallelism};
use rand::RngExt;

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::statevector::StateVector;

/// Calibration data of a (real or hypothetical) gate-based QPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relaxation time T1 in seconds.
    pub t1: f64,
    /// Dephasing time T2 in seconds.
    pub t2: f64,
    /// Duration of a single-qubit gate in seconds.
    pub time_1q: f64,
    /// Duration of a two-qubit gate in seconds.
    pub time_2q: f64,
    /// Depolarising error probability per single-qubit gate.
    pub p_depol_1q: f64,
    /// Depolarising error probability per two-qubit gate (per gate, split
    /// across both qubits).
    pub p_depol_2q: f64,
    /// Probability of misreading each measured bit.
    pub readout_error: f64,
}

impl NoiseModel {
    /// IBM Q Auckland (27 qubits, Falcon r5.11) at the calibration reported
    /// in the paper: T1 = 151.13 µs, T2 = 138.72 µs, average gate time
    /// 472.51 ns.
    pub fn ibm_auckland() -> Self {
        NoiseModel {
            t1: 151.13e-6,
            t2: 138.72e-6,
            time_1q: 35.0e-9,
            time_2q: 472.51e-9,
            p_depol_1q: 3.0e-4,
            p_depol_2q: 9.0e-3,
            readout_error: 1.3e-2,
        }
    }

    /// IBM Q Washington (127 qubits, Eagle r1): T1 = 92.81 µs,
    /// T2 = 93.36 µs, average gate time 550.41 ns.
    pub fn ibm_washington() -> Self {
        NoiseModel {
            t1: 92.81e-6,
            t2: 93.36e-6,
            time_1q: 40.0e-9,
            time_2q: 550.41e-9,
            p_depol_1q: 5.0e-4,
            p_depol_2q: 1.4e-2,
            readout_error: 2.0e-2,
        }
    }

    /// An ideal device: no errors, instantaneous gates relative to coherence.
    pub fn noiseless() -> Self {
        NoiseModel {
            t1: f64::INFINITY,
            t2: f64::INFINITY,
            time_1q: 0.0,
            time_2q: 0.0,
            p_depol_1q: 0.0,
            p_depol_2q: 0.0,
            readout_error: 0.0,
        }
    }

    /// Maximum circuit depth before the cumulative gate time exceeds the
    /// coherence window — the paper's `d = ⌊min(T1, T2) / g_avg⌋` with
    /// `g_avg` the average gate time.
    pub fn max_coherent_depth(&self) -> usize {
        let g_avg = (self.time_1q + self.time_2q) / 2.0;
        if g_avg == 0.0 {
            return usize::MAX;
        }
        (self.t1.min(self.t2) / g_avg) as usize
    }

    /// Pauli-twirl error probabilities `(p_x, p_y, p_z)` accumulated over a
    /// duration `t`: amplitude damping at rate `1/T1` contributes X and Y
    /// errors, pure dephasing the remainder of the `1/T2` decay as Z errors.
    pub fn pauli_rates(&self, t: f64) -> (f64, f64, f64) {
        if !(self.t1.is_finite() && self.t2.is_finite()) {
            return (0.0, 0.0, 0.0);
        }
        let p_relax = 1.0 - (-t / self.t1).exp();
        let p_deph = 1.0 - (-t / self.t2).exp();
        let px = p_relax / 4.0;
        let py = p_relax / 4.0;
        let pz = (p_deph / 2.0 - p_relax / 4.0).max(0.0);
        (px, py, pz)
    }
}

/// Noisy circuit executor producing measurement shots.
#[derive(Debug, Clone)]
pub struct NoisySimulator {
    /// Device calibration.
    pub model: NoiseModel,
    /// Number of independent noise trajectories; shots are split across
    /// them. More trajectories sample gate errors more finely but cost one
    /// full state-vector evolution each.
    pub trajectories: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the trajectory loop; affects wall-clock only,
    /// never results.
    pub parallelism: Parallelism,
}

impl NoisySimulator {
    /// Creates an executor with a default of 16 trajectories.
    pub fn new(model: NoiseModel, seed: u64) -> Self {
        NoisySimulator { model, trajectories: 16, seed, parallelism: Parallelism::auto() }
    }

    /// Runs `shots` measurements of `circuit` under the noise model.
    ///
    /// Trajectory `i` derives its own RNG stream from `(self.seed, i)`,
    /// so the result does not depend on [`Self::parallelism`].
    pub fn sample(&self, circuit: &Circuit, shots: usize) -> Vec<Vec<bool>> {
        assert!(self.trajectories >= 1, "need at least one trajectory");
        let _span = qjo_obs::span!("gatesim.noisy.sample");
        qjo_obs::counter!("gatesim.trajectories").add(self.trajectories as u64);
        qjo_obs::counter!("gatesim.shots").add(shots as u64);
        let n = circuit.num_qubits();
        let base = shots / self.trajectories;
        let extra = shots % self.trajectories;

        let trajectories: Vec<usize> = (0..self.trajectories).collect();
        let per_trajectory = par_map_seeded(trajectories, self.seed, self.parallelism, |t, rng| {
            let this_shots = base + usize::from(t < extra);
            if this_shots == 0 {
                return Vec::new();
            }
            let mut state = StateVector::zero(n);
            for g in circuit.gates() {
                state.apply(*g);
                self.insert_errors(&mut state, g, rng);
            }
            let mut out = Vec::with_capacity(this_shots);
            for mut bits in state.sample(rng, this_shots) {
                for b in bits.iter_mut() {
                    if self.model.readout_error > 0.0 && rng.random_bool(self.model.readout_error) {
                        *b = !*b;
                    }
                }
                out.push(bits);
            }
            out
        });
        per_trajectory.into_iter().flatten().collect()
    }

    fn insert_errors<R: RngExt + ?Sized>(&self, state: &mut StateVector, gate: &Gate, rng: &mut R) {
        let (p_depol, t_gate) = if gate.is_two_qubit() {
            (self.model.p_depol_2q, self.model.time_2q)
        } else {
            (self.model.p_depol_1q, self.model.time_1q)
        };
        let (px, py, pz) = self.model.pauli_rates(t_gate);
        for q in gate.qubits().iter() {
            // Depolarising gate error: uniform Pauli with probability p.
            if p_depol > 0.0 && rng.random_bool(p_depol) {
                match rng.random_range(0..3) {
                    0 => state.apply(Gate::X(q)),
                    1 => state.apply(Gate::Y(q)),
                    _ => state.apply(Gate::Z(q)),
                }
            }
            // Decoherence over the gate duration (Pauli-twirled T1/T2).
            let u: f64 = rng.random();
            if u < px {
                state.apply(Gate::X(q));
            } else if u < px + py {
                state.apply(Gate::Y(q));
            } else if u < px + py + pz {
                state.apply(Gate::Z(q));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate::*;

    #[test]
    fn noiseless_model_reproduces_ideal_statistics() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        let sim = NoisySimulator::new(NoiseModel::noiseless(), 3);
        let shots = sim.sample(&c, 2000);
        assert_eq!(shots.len(), 2000);
        // Bell state: both bits always agree.
        assert!(shots.iter().all(|b| b[0] == b[1]));
        let ones = shots.iter().filter(|b| b[0]).count() as f64 / 2000.0;
        assert!((ones - 0.5).abs() < 0.05);
    }

    #[test]
    fn readout_error_flips_bits() {
        let c = Circuit::new(1); // state stays |0>
        let model = NoiseModel { readout_error: 0.25, ..NoiseModel::noiseless() };
        let sim = NoisySimulator::new(model, 7);
        let shots = sim.sample(&c, 4000);
        let flipped = shots.iter().filter(|b| b[0]).count() as f64 / 4000.0;
        assert!((flipped - 0.25).abs() < 0.05, "flip rate {flipped}");
    }

    #[test]
    fn depolarising_noise_degrades_bell_correlations() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        // Pad with identity-equivalent work to accumulate error.
        for _ in 0..30 {
            c.push(X(0));
            c.push(X(0));
        }
        let model = NoiseModel { p_depol_1q: 0.02, p_depol_2q: 0.05, ..NoiseModel::noiseless() };
        let sim = NoisySimulator { trajectories: 64, ..NoisySimulator::new(model, 1) };
        let shots = sim.sample(&c, 2048);
        let agree = shots.iter().filter(|b| b[0] == b[1]).count() as f64 / 2048.0;
        assert!(agree < 0.95, "correlations survived unrealistically: {agree}");
        assert!(agree > 0.5, "noise should not fully scramble: {agree}");
    }

    #[test]
    fn deeper_circuits_accumulate_more_error() {
        // Identity circuits of increasing depth on |0>: the fraction of
        // erroneous `1` readouts must grow with depth.
        let model = NoiseModel { p_depol_1q: 0.01, ..NoiseModel::noiseless() };
        let error_rate = |depth: usize| {
            let mut c = Circuit::new(1);
            for _ in 0..depth {
                c.push(X(0));
                c.push(X(0));
            }
            let sim = NoisySimulator { trajectories: 256, ..NoisySimulator::new(model, 5) };
            let shots = sim.sample(&c, 4096);
            shots.iter().filter(|b| b[0]).count() as f64 / 4096.0
        };
        let shallow = error_rate(5);
        let deep = error_rate(80);
        assert!(deep > shallow + 0.05, "deep error {deep} not clearly above shallow {shallow}");
    }

    #[test]
    fn pauli_rates_are_probabilities_and_grow_with_time() {
        let m = NoiseModel::ibm_auckland();
        let (x1, y1, z1) = m.pauli_rates(1e-7);
        let (x2, y2, z2) = m.pauli_rates(1e-5);
        for p in [x1, y1, z1, x2, y2, z2] {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(x2 > x1 && y2 > y1 && z2 >= z1);
        // Noiseless model has zero rates at any duration.
        assert_eq!(NoiseModel::noiseless().pauli_rates(1.0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn coherent_depth_matches_paper_formula() {
        let m = NoiseModel::ibm_auckland();
        let g_avg = (m.time_1q + m.time_2q) / 2.0;
        let expected = (m.t1.min(m.t2) / g_avg) as usize;
        assert_eq!(m.max_coherent_depth(), expected);
        assert!(expected > 100, "Auckland supports a few hundred layers");
        assert_eq!(NoiseModel::noiseless().max_coherent_depth(), usize::MAX);
    }

    #[test]
    fn washington_is_noisier_than_auckland() {
        // The paper's observation: more qubits, worse coherence.
        let a = NoiseModel::ibm_auckland();
        let w = NoiseModel::ibm_washington();
        assert!(w.t1 < a.t1 && w.t2 < a.t2);
        assert!(w.max_coherent_depth() < a.max_coherent_depth());
    }

    #[test]
    fn thread_count_does_not_change_shots() {
        let mut c = Circuit::new(2);
        c.push(H(0));
        c.push(Cx(0, 1));
        let model = NoiseModel::ibm_auckland();
        let at = |threads| {
            let sim = NoisySimulator {
                trajectories: 6,
                parallelism: Parallelism::new(threads),
                ..NoisySimulator::new(model, 11)
            };
            sim.sample(&c, 300)
        };
        let sequential = at(1);
        assert_eq!(sequential, at(3));
        assert_eq!(sequential, at(8));
    }

    #[test]
    fn sampling_records_trajectory_and_shot_counters() {
        let circuit = Circuit::new(1);
        let sim =
            NoisySimulator { trajectories: 3, ..NoisySimulator::new(NoiseModel::noiseless(), 0) };
        let before = qjo_obs::global().snapshot();
        sim.sample(&circuit, 10);
        let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
        assert!(deltas["gatesim.trajectories"] >= 3, "{deltas:?}");
        assert!(deltas["gatesim.shots"] >= 10, "{deltas:?}");
    }

    #[test]
    fn shots_split_across_trajectories_exactly() {
        let c = Circuit::new(1);
        let sim =
            NoisySimulator { trajectories: 7, ..NoisySimulator::new(NoiseModel::noiseless(), 0) };
        assert_eq!(sim.sample(&c, 100).len(), 100);
        assert_eq!(sim.sample(&c, 3).len(), 3);
    }
}
