//! Dense state-vector simulation.
//!
//! The state of `n` qubits is a vector of `2^n` complex amplitudes; basis
//! index `z` encodes qubit `q` in bit `q` (qubit 0 is the least significant
//! bit). Gates are applied in place: diagonal gates as pure phase updates,
//! general one- and two-qubit gates as strided 2×2 / 4×4 matrix actions.

use rand::RngExt;

use crate::complex::{C64, ZERO};
use crate::gate::{Gate, GateQubits};
use crate::shots::ShotBuffer;

/// A normalised pure state over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The computational-basis state `|0…0⟩`.
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "state vector for {num_qubits} qubits will not fit in memory");
        let mut amps = vec![ZERO; 1usize << num_qubits];
        amps[0] = C64::real(1.0);
        StateVector { num_qubits, amps }
    }

    /// The uniform superposition `|+⟩^{⊗n}` (the QAOA start state).
    pub fn plus(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "state vector for {num_qubits} qubits will not fit in memory");
        let dim = 1usize << num_qubits;
        let a = C64::real(1.0 / (dim as f64).sqrt());
        StateVector { num_qubits, amps: vec![a; dim] }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies one gate in place.
    ///
    /// Uses specialised kernels where the gate structure allows it:
    /// diagonal gates are pure phase scans, X and CX are (conditional)
    /// permutations with no arithmetic, everything else goes through the
    /// generic strided matrix path.
    pub fn apply(&mut self, gate: Gate) {
        match gate.qubits() {
            GateQubits::One(q) => {
                assert!(q < self.num_qubits, "qubit {q} out of range");
                match gate {
                    Gate::X(_) => self.apply_x(q),
                    _ if gate.is_diagonal() => {
                        let u = gate.unitary_1q();
                        self.apply_diag_1q(q, u[0], u[3]);
                    }
                    _ => self.apply_1q(q, &gate.unitary_1q()),
                }
            }
            GateQubits::Two(a, b) => {
                assert!(a < self.num_qubits && b < self.num_qubits, "qubits out of range");
                assert_ne!(a, b);
                match gate {
                    Gate::Rzz(_, _, t) => {
                        let plus = C64::cis(t / 2.0);
                        let minus = C64::cis(-t / 2.0);
                        self.apply_diag_2q(a, b, minus, plus, plus, minus);
                    }
                    Gate::Cz(..) => {
                        let one = C64::real(1.0);
                        self.apply_diag_2q(a, b, one, one, one, C64::real(-1.0));
                    }
                    Gate::Cx(c, t) => self.apply_cx(c, t),
                    Gate::Swap(..) => self.apply_swap(a, b),
                    _ => self.apply_2q(a, b, &gate.unitary_2q()),
                }
            }
        }
    }

    /// X as a pure permutation: swap the amplitude pairs that differ in
    /// bit `q`.
    fn apply_x(&mut self, q: usize) {
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            let (lo, hi) = self.amps[base..base + (stride << 1)].split_at_mut(stride);
            lo.swap_with_slice(hi);
            base += stride << 1;
        }
    }

    /// CX as a conditional permutation: where the control bit is set, swap
    /// the pair differing in the target bit.
    fn apply_cx(&mut self, control: usize, target: usize) {
        let mc = 1usize << control;
        let mt = 1usize << target;
        let dim = self.amps.len();
        for z in 0..dim {
            // Visit each swapped pair once: control set, target clear.
            if z & mc != 0 && z & mt == 0 {
                self.amps.swap(z, z | mt);
            }
        }
    }

    /// SWAP as a permutation: exchange amplitudes whose bits `a`/`b` differ.
    fn apply_swap(&mut self, a: usize, b: usize) {
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.amps.len();
        for z in 0..dim {
            if z & ma != 0 && z & mb == 0 {
                self.amps.swap(z, z ^ ma ^ mb);
            }
        }
    }

    /// Applies a whole circuit.
    pub fn apply_circuit(&mut self, circuit: &crate::circuit::Circuit) {
        assert_eq!(circuit.num_qubits(), self.num_qubits, "circuit/state size mismatch");
        for g in circuit.gates() {
            self.apply(*g);
        }
    }

    /// Multiplies every amplitude in `amps[start..start+len]` by `d` — the
    /// branch-free inner kernel of the diagonal fast paths. Each amplitude
    /// receives exactly one multiplication, so any block decomposition of
    /// the index space produces bit-identical state.
    #[inline]
    fn scale_block(&mut self, start: usize, len: usize, d: C64) {
        for amp in &mut self.amps[start..start + len] {
            *amp *= d;
        }
    }

    /// Multiplies even-indexed amplitudes of `amps[start..start+len]` by
    /// `d0` and odd-indexed ones by `d1` — the stride-1 diagonal kernel,
    /// where per-block dispatch would cost more than the multiply itself.
    #[inline]
    fn scale_interleaved(&mut self, start: usize, len: usize, d0: C64, d1: C64) {
        for pair in self.amps[start..start + len].chunks_exact_mut(2) {
            pair[0] *= d0;
            pair[1] *= d1;
        }
    }

    fn apply_diag_1q(&mut self, q: usize, d0: C64, d1: C64) {
        // Bit q partitions the index space into alternating contiguous
        // blocks of length 2^q: scan them pairwise instead of testing the
        // bit on every index.
        let stride = 1usize << q;
        let dim = self.amps.len();
        if stride == 1 {
            self.scale_interleaved(0, dim, d0, d1);
            return;
        }
        let mut base = 0usize;
        while base < dim {
            self.scale_block(base, stride, d0);
            self.scale_block(base + stride, stride, d1);
            base += stride << 1;
        }
    }

    fn apply_diag_2q(&mut self, a: usize, b: usize, d00: C64, d01: C64, d10: C64, d11: C64) {
        // Two-level block scan: the outer loop walks blocks of the higher
        // qubit, the inner loop walks blocks of the lower one, so each
        // `scale_block` run is contiguous with a constant diagonal factor.
        let sa = 1usize << a;
        let sb = 1usize << b;
        let (s_lo, s_hi) = (sa.min(sb), sa.max(sb));
        // Factor for (bit of hi qubit, bit of lo qubit).
        let d_of = |hi_set: bool, lo_set: bool| {
            let (a_set, b_set) = if sa < sb { (lo_set, hi_set) } else { (hi_set, lo_set) };
            match (a_set, b_set) {
                (false, false) => d00,
                (true, false) => d01,
                (false, true) => d10,
                (true, true) => d11,
            }
        };
        let dim = self.amps.len();
        let mut base_hi = 0usize;
        while base_hi < dim {
            for hi_set in [false, true] {
                let h = base_hi + if hi_set { s_hi } else { 0 };
                let (d0, d1) = (d_of(hi_set, false), d_of(hi_set, true));
                if s_lo == 1 {
                    self.scale_interleaved(h, s_hi, d0, d1);
                    continue;
                }
                let mut base_lo = h;
                while base_lo < h + s_hi {
                    self.scale_block(base_lo, s_lo, d0);
                    self.scale_block(base_lo + s_lo, s_lo, d1);
                    base_lo += s_lo << 1;
                }
            }
            base_hi += s_hi << 1;
        }
    }

    fn apply_1q(&mut self, q: usize, u: &[C64; 4]) {
        // Structure-specialised variants cover the frequent gates: H (all
        // components real) and Rx/Y (real diagonal, imaginary
        // off-diagonal) skip half of the generic complex arithmetic. The
        // specialisations drop only multiplications by an exact zero
        // component — that can flip the sign of a zero amplitude but
        // never changes a magnitude, so measurement statistics are
        // untouched.
        if u.iter().all(|c| c.im == 0.0) {
            return self.apply_1q_real(q, &[u[0].re, u[1].re, u[2].re, u[3].re]);
        }
        if u[0].im == 0.0 && u[3].im == 0.0 && u[1].re == 0.0 && u[2].re == 0.0 {
            return self.apply_1q_cross(q, &[u[0].re, u[1].im, u[2].im, u[3].re]);
        }
        // Split each pair-block in two and walk the halves in lockstep:
        // no bounds checks in the inner loop, and the |0⟩/|1⟩ partners are
        // contiguous streams the compiler can vectorise.
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            let (lo, hi) = self.amps[base..base + (stride << 1)].split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = u[0] * x0 + u[1] * x1;
                *a1 = u[2] * x0 + u[3] * x1;
            }
            base += stride << 1;
        }
    }

    /// One-qubit gate with a real unitary `r` (H, Ry, …): the real and
    /// imaginary planes transform independently.
    fn apply_1q_real(&mut self, q: usize, r: &[f64; 4]) {
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            let (lo, hi) = self.amps[base..base + (stride << 1)].split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = C64::new(r[0] * x0.re + r[1] * x1.re, r[0] * x0.im + r[1] * x1.im);
                *a1 = C64::new(r[2] * x0.re + r[3] * x1.re, r[2] * x0.im + r[3] * x1.im);
            }
            base += stride << 1;
        }
    }

    /// One-qubit gate with a real diagonal and purely imaginary
    /// off-diagonal (Rx, Y): `m = [d0, i·c0; i·c1, d1]` with all four
    /// coefficients real.
    fn apply_1q_cross(&mut self, q: usize, m: &[f64; 4]) {
        let [d0, c0, c1, d1] = *m;
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            let (lo, hi) = self.amps[base..base + (stride << 1)].split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = C64::new(d0 * x0.re - c0 * x1.im, d0 * x0.im + c0 * x1.re);
                *a1 = C64::new(d1 * x1.re - c1 * x0.im, d1 * x1.im + c1 * x0.re);
            }
            base += stride << 1;
        }
    }

    fn apply_2q(&mut self, a: usize, b: usize, u: &[[C64; 4]; 4]) {
        // Basis convention of `Gate::unitary_2q`: local index
        // `l = (bit b << 1) | bit a` where `a` is the first listed qubit.
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.amps.len();
        for z in 0..dim {
            if z & ma != 0 || z & mb != 0 {
                continue; // enumerate only base states with both bits clear
            }
            let idx = [z, z | ma, z | mb, z | ma | mb];
            let src = [self.amps[idx[0]], self.amps[idx[1]], self.amps[idx[2]], self.amps[idx[3]]];
            for (row, &target) in idx.iter().enumerate() {
                let mut acc = ZERO;
                for (col, &s) in src.iter().enumerate() {
                    acc += u[row][col] * s;
                }
                self.amps[target] = acc;
            }
        }
    }

    /// Multiplies each amplitude `z` by `e^{−iγ·energies[z]}` — the QAOA
    /// cost-operator fast path for a diagonal Hamiltonian.
    pub fn apply_diagonal_cost(&mut self, energies: &[f64], gamma: f64) {
        assert_eq!(energies.len(), self.amps.len(), "energy table size mismatch");
        for (amp, &e) in self.amps.iter_mut().zip(energies) {
            *amp *= C64::cis(-gamma * e);
        }
    }

    /// `⟨ψ| diag(energies) |ψ⟩`.
    pub fn expectation_diagonal(&self, energies: &[f64]) -> f64 {
        assert_eq!(energies.len(), self.amps.len(), "energy table size mismatch");
        self.amps.iter().zip(energies).map(|(a, &e)| a.norm_sqr() * e).sum()
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `⟨ψ|ψ⟩` — should be 1 up to rounding for a valid state.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalises (used after stochastic noise jumps).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }

    /// `|⟨ψ|φ⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let mut acc = ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc.norm_sqr()
    }

    /// Builds a reusable computational-basis sampler for this state.
    ///
    /// Constructing the sampler pays the O(2^n) cumulative-table scan
    /// once; each subsequent batch of shots only costs O(log 2^n) binary
    /// searches. Use this when the same evolved state is sampled more
    /// than once (noisy trajectories, shot batching).
    pub fn sampler(&self) -> BasisSampler {
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        BasisSampler { num_qubits: self.num_qubits, total: acc, cdf }
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    ///
    /// Outcomes are returned packed, one row per shot with qubit `q` at
    /// bit `q`. Uses an O(2^n) cumulative table and O(log 2^n) binary
    /// search per shot; to amortise the table across several calls on the
    /// same state, use [`Self::sampler`] directly.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R, shots: usize) -> ShotBuffer {
        self.sampler().sample(rng, shots)
    }

    /// Probability of measuring qubit `q` as 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        self.amps.iter().enumerate().filter(|(z, _)| z & mask != 0).map(|(_, a)| a.norm_sqr()).sum()
    }
}

/// A frozen cumulative distribution over the computational basis of one
/// state, built once by [`StateVector::sampler`] and reusable across any
/// number of shot batches.
#[derive(Debug, Clone)]
pub struct BasisSampler {
    num_qubits: usize,
    total: f64,
    cdf: Vec<f64>,
}

impl BasisSampler {
    /// Number of qubits of the sampled state.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Draws one basis-state index, consuming exactly one uniform.
    pub fn sample_index<R: RngExt + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = rng.random::<f64>() * self.total;
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1) as u64
    }

    /// Draws `shots` outcomes into a packed buffer, one uniform per shot.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R, shots: usize) -> ShotBuffer {
        let mut out = ShotBuffer::with_capacity(self.num_qubits, shots);
        for _ in 0..shots {
            out.push_index(self.sample_index(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = StateVector::zero(3);
        assert_eq!(s.amplitudes()[0], C64::real(1.0));
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        assert_eq!(s.prob_one(0), 0.0);
    }

    #[test]
    fn plus_state_is_uniform() {
        let s = StateVector::plus(2);
        let p = s.probabilities();
        for v in p {
            assert!((v - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn hadamards_build_plus_state() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply(H(q));
        }
        assert!(s.fidelity(&StateVector::plus(3)) > 1.0 - EPS);
    }

    #[test]
    fn x_flips_the_right_qubit() {
        let mut s = StateVector::zero(3);
        s.apply(X(1));
        // basis index with bit 1 set = 2
        assert!((s.amplitudes()[2].norm_sqr() - 1.0).abs() < EPS);
        assert_eq!(s.prob_one(1), 1.0);
        assert_eq!(s.prob_one(0), 0.0);
    }

    #[test]
    fn cx_creates_bell_state() {
        let mut s = StateVector::zero(2);
        s.apply(H(0));
        s.apply(Cx(0, 1));
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < EPS); // |00>
        assert!((p[3] - 0.5).abs() < EPS); // |11>
        assert!(p[1].abs() < EPS && p[2].abs() < EPS);
    }

    #[test]
    fn cx_control_is_first_argument() {
        // control=1 (value 0), target=0 (value 1): nothing happens
        let mut s = StateVector::zero(2);
        s.apply(X(0));
        s.apply(Cx(1, 0));
        assert!((s.probabilities()[1] - 1.0).abs() < EPS);
        // control=0 (value 1): target flips
        let mut s = StateVector::zero(2);
        s.apply(X(0));
        s.apply(Cx(0, 1));
        assert!((s.probabilities()[3] - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_qubit_values() {
        let mut s = StateVector::zero(2);
        s.apply(X(0));
        s.apply(Swap(0, 1));
        assert!((s.probabilities()[2] - 1.0).abs() < EPS);
    }

    #[test]
    fn rzz_matches_cx_rz_cx_identity() {
        // RZZ(t) = CX(a,b) · RZ_b(t) · CX(a,b) up to global phase.
        let t = 0.731;
        let mut direct = StateVector::plus(2);
        direct.apply(Rzz(0, 1, t));

        let mut via = StateVector::plus(2);
        via.apply(Cx(0, 1));
        via.apply(Rz(1, t));
        via.apply(Cx(0, 1));

        assert!(direct.fidelity(&via) > 1.0 - 1e-10);
    }

    #[test]
    fn diagonal_fast_paths_match_generic_application() {
        let mut a = StateVector::plus(3);
        a.apply(H(1));
        a.apply(Rz(2, 0.37));
        a.apply(Cz(0, 2));
        a.apply(Rzz(1, 2, -0.9));

        // Re-run with the generic 2x2/4x4 matrix paths.
        let mut b = StateVector::plus(3);
        b.apply(H(1));
        b.apply_1q(2, &Rz(2, 0.37).unitary_1q());
        b.apply_2q(0, 2, &Cz(0, 2).unitary_2q());
        b.apply_2q(1, 2, &Rzz(1, 2, -0.9).unitary_2q());

        assert!(a.fidelity(&b) > 1.0 - 1e-10);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < 1e-10);
        }
    }

    #[test]
    fn permutation_kernels_match_generic_matrices() {
        // Start from an asymmetric state and compare the specialised X /
        // CX / SWAP kernels against the generic matrix application.
        let mut prep = StateVector::zero(3);
        for (q, t) in [(0usize, 0.37), (1, 1.1), (2, -0.6)] {
            prep.apply(Ry(q, t));
            prep.apply(Rz(q, t / 2.0));
        }
        for gate in [X(1), Cx(0, 2), Cx(2, 0), Swap(1, 2), Swap(0, 2)] {
            let mut fast = prep.clone();
            fast.apply(gate);
            let mut slow = prep.clone();
            match gate.qubits() {
                crate::gate::GateQubits::One(q) => slow.apply_1q(q, &gate.unitary_1q()),
                crate::gate::GateQubits::Two(a, b) => slow.apply_2q(a, b, &gate.unitary_2q()),
            }
            for (x, y) in fast.amplitudes().iter().zip(slow.amplitudes()) {
                assert!((*x - *y).norm() < 1e-12, "{gate:?} kernels diverge");
            }
        }
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut s = StateVector::zero(4);
        let gates = [
            H(0),
            Rx(1, 0.3),
            Ry(2, -1.1),
            Cx(0, 2),
            Rzz(1, 3, 0.8),
            Rxx(0, 3, -0.4),
            Swap(1, 2),
            Sx(3),
        ];
        for g in gates {
            s.apply(g);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10, "norm drifted after {g:?}");
        }
    }

    #[test]
    fn circuit_and_inverse_return_to_start() {
        let mut c = Circuit::new(3);
        for g in [H(0), Cx(0, 1), Ry(2, 0.7), Rzz(1, 2, 0.4), Sx(0), S(1)] {
            c.push(g);
        }
        let mut s = StateVector::zero(3);
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        assert!(s.fidelity(&StateVector::zero(3)) > 1.0 - 1e-10);
    }

    #[test]
    fn apply_diagonal_cost_matches_rz_rzz_network() {
        // For H = z0 + 2 z0 z1 (spin variables via bits), phases from the
        // energy table must match explicit RZ/RZZ gates up to global phase.
        let energies: Vec<f64> = (0..4u32)
            .map(|z| {
                let s0 = if z & 1 != 0 { 1.0 } else { -1.0 };
                let s1 = if z & 2 != 0 { 1.0 } else { -1.0 };
                s0 + 2.0 * s0 * s1
            })
            .collect();
        let gamma = 0.613;

        let mut table = StateVector::plus(2);
        table.apply_diagonal_cost(&energies, gamma);

        // With s = +1 for bit = 1 and Z eigenvalue +1 for bit = 0, we have
        // s_i = −Z_i, hence e^{−iγ h s_i} = RZ(−2γh) and
        // e^{−iγ J s_i s_j} = RZZ(2γJ) (the two sign flips cancel).
        let mut gates = StateVector::plus(2);
        gates.apply(Rz(0, -2.0 * gamma));
        gates.apply(Rzz(0, 1, 4.0 * gamma));

        assert!(table.fidelity(&gates) > 1.0 - 1e-10);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut s = StateVector::zero(2);
        s.apply(H(0)); // uniform over qubit 0, qubit 1 stays 0
        let mut rng = StdRng::seed_from_u64(5);
        let shots = s.sample(&mut rng, 4000);
        assert_eq!(shots.len(), 4000);
        let ones = shots.count_ones(0) as f64 / 4000.0;
        assert!((ones - 0.5).abs() < 0.05, "qubit-0 frequency {ones}");
        assert_eq!(shots.count_ones(1), 0);
    }

    #[test]
    fn reused_sampler_matches_per_call_sampling() {
        let mut s = StateVector::zero(3);
        s.apply(H(0));
        s.apply(Cx(0, 1));
        s.apply(Ry(2, 0.4));
        // Two batches from one sampler must equal two `sample` calls on the
        // same RNG stream: the CDF hoist may not change any draw.
        let mut rng_a = StdRng::seed_from_u64(9);
        let sampler = s.sampler();
        let mut batched = sampler.sample(&mut rng_a, 100);
        batched.append(&sampler.sample(&mut rng_a, 57));
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut per_call = s.sample(&mut rng_b, 100);
        per_call.append(&s.sample(&mut rng_b, 57));
        assert_eq!(batched, per_call);
        assert_eq!(batched.len(), 157);
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut s = StateVector::zero(2);
        // Manually damage the norm.
        s.amps[0] = C64::real(2.0);
        s.renormalize();
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn expectation_diagonal_weights_by_probability() {
        let mut s = StateVector::zero(1);
        s.apply(H(0));
        let e = s.expectation_diagonal(&[3.0, 7.0]);
        assert!((e - 5.0).abs() < EPS);
    }
}
