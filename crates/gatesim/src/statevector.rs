//! Dense state-vector simulation.
//!
//! The state of `n` qubits is a vector of `2^n` complex amplitudes; basis
//! index `z` encodes qubit `q` in bit `q` (qubit 0 is the least significant
//! bit). Gates are applied in place: diagonal gates as pure phase updates,
//! general one- and two-qubit gates as strided 2×2 / 4×4 matrix actions.

use rand::RngExt;

use crate::complex::{C64, ZERO};
use crate::gate::{Gate, GateQubits};

/// A normalised pure state over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The computational-basis state `|0…0⟩`.
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "state vector for {num_qubits} qubits will not fit in memory");
        let mut amps = vec![ZERO; 1usize << num_qubits];
        amps[0] = C64::real(1.0);
        StateVector { num_qubits, amps }
    }

    /// The uniform superposition `|+⟩^{⊗n}` (the QAOA start state).
    pub fn plus(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "state vector for {num_qubits} qubits will not fit in memory");
        let dim = 1usize << num_qubits;
        let a = C64::real(1.0 / (dim as f64).sqrt());
        StateVector { num_qubits, amps: vec![a; dim] }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies one gate in place.
    ///
    /// Uses specialised kernels where the gate structure allows it:
    /// diagonal gates are pure phase scans, X and CX are (conditional)
    /// permutations with no arithmetic, everything else goes through the
    /// generic strided matrix path.
    pub fn apply(&mut self, gate: Gate) {
        match gate.qubits() {
            GateQubits::One(q) => {
                assert!(q < self.num_qubits, "qubit {q} out of range");
                match gate {
                    Gate::X(_) => self.apply_x(q),
                    _ if gate.is_diagonal() => {
                        let u = gate.unitary_1q();
                        self.apply_diag_1q(q, u[0], u[3]);
                    }
                    _ => self.apply_1q(q, &gate.unitary_1q()),
                }
            }
            GateQubits::Two(a, b) => {
                assert!(a < self.num_qubits && b < self.num_qubits, "qubits out of range");
                assert_ne!(a, b);
                match gate {
                    Gate::Rzz(_, _, t) => {
                        let plus = C64::cis(t / 2.0);
                        let minus = C64::cis(-t / 2.0);
                        self.apply_diag_2q(a, b, minus, plus, plus, minus);
                    }
                    Gate::Cz(..) => {
                        let one = C64::real(1.0);
                        self.apply_diag_2q(a, b, one, one, one, C64::real(-1.0));
                    }
                    Gate::Cx(c, t) => self.apply_cx(c, t),
                    Gate::Swap(..) => self.apply_swap(a, b),
                    _ => self.apply_2q(a, b, &gate.unitary_2q()),
                }
            }
        }
    }

    /// X as a pure permutation: swap the amplitude pairs that differ in
    /// bit `q`.
    fn apply_x(&mut self, q: usize) {
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + stride {
                self.amps.swap(offset, offset + stride);
            }
            base += stride << 1;
        }
    }

    /// CX as a conditional permutation: where the control bit is set, swap
    /// the pair differing in the target bit.
    fn apply_cx(&mut self, control: usize, target: usize) {
        let mc = 1usize << control;
        let mt = 1usize << target;
        let dim = self.amps.len();
        for z in 0..dim {
            // Visit each swapped pair once: control set, target clear.
            if z & mc != 0 && z & mt == 0 {
                self.amps.swap(z, z | mt);
            }
        }
    }

    /// SWAP as a permutation: exchange amplitudes whose bits `a`/`b` differ.
    fn apply_swap(&mut self, a: usize, b: usize) {
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.amps.len();
        for z in 0..dim {
            if z & ma != 0 && z & mb == 0 {
                self.amps.swap(z, z ^ ma ^ mb);
            }
        }
    }

    /// Applies a whole circuit.
    pub fn apply_circuit(&mut self, circuit: &crate::circuit::Circuit) {
        assert_eq!(circuit.num_qubits(), self.num_qubits, "circuit/state size mismatch");
        for g in circuit.gates() {
            self.apply(*g);
        }
    }

    fn apply_diag_1q(&mut self, q: usize, d0: C64, d1: C64) {
        let mask = 1usize << q;
        for (z, amp) in self.amps.iter_mut().enumerate() {
            *amp *= if z & mask == 0 { d0 } else { d1 };
        }
    }

    fn apply_diag_2q(&mut self, a: usize, b: usize, d00: C64, d01: C64, d10: C64, d11: C64) {
        let ma = 1usize << a;
        let mb = 1usize << b;
        for (z, amp) in self.amps.iter_mut().enumerate() {
            let d = match (z & ma != 0, z & mb != 0) {
                (false, false) => d00,
                (true, false) => d01,
                (false, true) => d10,
                (true, true) => d11,
            };
            *amp *= d;
        }
    }

    fn apply_1q(&mut self, q: usize, u: &[C64; 4]) {
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = u[0] * a0 + u[1] * a1;
                self.amps[i1] = u[2] * a0 + u[3] * a1;
            }
            base += stride << 1;
        }
    }

    fn apply_2q(&mut self, a: usize, b: usize, u: &[[C64; 4]; 4]) {
        // Basis convention of `Gate::unitary_2q`: local index
        // `l = (bit b << 1) | bit a` where `a` is the first listed qubit.
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.amps.len();
        for z in 0..dim {
            if z & ma != 0 || z & mb != 0 {
                continue; // enumerate only base states with both bits clear
            }
            let idx = [z, z | ma, z | mb, z | ma | mb];
            let src = [self.amps[idx[0]], self.amps[idx[1]], self.amps[idx[2]], self.amps[idx[3]]];
            for (row, &target) in idx.iter().enumerate() {
                let mut acc = ZERO;
                for (col, &s) in src.iter().enumerate() {
                    acc += u[row][col] * s;
                }
                self.amps[target] = acc;
            }
        }
    }

    /// Multiplies each amplitude `z` by `e^{−iγ·energies[z]}` — the QAOA
    /// cost-operator fast path for a diagonal Hamiltonian.
    pub fn apply_diagonal_cost(&mut self, energies: &[f64], gamma: f64) {
        assert_eq!(energies.len(), self.amps.len(), "energy table size mismatch");
        for (amp, &e) in self.amps.iter_mut().zip(energies) {
            *amp *= C64::cis(-gamma * e);
        }
    }

    /// `⟨ψ| diag(energies) |ψ⟩`.
    pub fn expectation_diagonal(&self, energies: &[f64]) -> f64 {
        assert_eq!(energies.len(), self.amps.len(), "energy table size mismatch");
        self.amps.iter().zip(energies).map(|(a, &e)| a.norm_sqr() * e).sum()
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `⟨ψ|ψ⟩` — should be 1 up to rounding for a valid state.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalises (used after stochastic noise jumps).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }

    /// `|⟨ψ|φ⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let mut acc = ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc.norm_sqr()
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    ///
    /// Each outcome is a bit vector indexed by qubit. Uses an O(2^n)
    /// cumulative table and O(log 2^n) binary search per shot.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<Vec<bool>> {
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        let total = acc;
        (0..shots)
            .map(|_| {
                let u = rng.random::<f64>() * total;
                let z = cdf.partition_point(|&c| c <= u).min(self.amps.len() - 1);
                (0..self.num_qubits).map(|q| z >> q & 1 == 1).collect()
            })
            .collect()
    }

    /// Probability of measuring qubit `q` as 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        self.amps.iter().enumerate().filter(|(z, _)| z & mask != 0).map(|(_, a)| a.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = StateVector::zero(3);
        assert_eq!(s.amplitudes()[0], C64::real(1.0));
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        assert_eq!(s.prob_one(0), 0.0);
    }

    #[test]
    fn plus_state_is_uniform() {
        let s = StateVector::plus(2);
        let p = s.probabilities();
        for v in p {
            assert!((v - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn hadamards_build_plus_state() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply(H(q));
        }
        assert!(s.fidelity(&StateVector::plus(3)) > 1.0 - EPS);
    }

    #[test]
    fn x_flips_the_right_qubit() {
        let mut s = StateVector::zero(3);
        s.apply(X(1));
        // basis index with bit 1 set = 2
        assert!((s.amplitudes()[2].norm_sqr() - 1.0).abs() < EPS);
        assert_eq!(s.prob_one(1), 1.0);
        assert_eq!(s.prob_one(0), 0.0);
    }

    #[test]
    fn cx_creates_bell_state() {
        let mut s = StateVector::zero(2);
        s.apply(H(0));
        s.apply(Cx(0, 1));
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < EPS); // |00>
        assert!((p[3] - 0.5).abs() < EPS); // |11>
        assert!(p[1].abs() < EPS && p[2].abs() < EPS);
    }

    #[test]
    fn cx_control_is_first_argument() {
        // control=1 (value 0), target=0 (value 1): nothing happens
        let mut s = StateVector::zero(2);
        s.apply(X(0));
        s.apply(Cx(1, 0));
        assert!((s.probabilities()[1] - 1.0).abs() < EPS);
        // control=0 (value 1): target flips
        let mut s = StateVector::zero(2);
        s.apply(X(0));
        s.apply(Cx(0, 1));
        assert!((s.probabilities()[3] - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_qubit_values() {
        let mut s = StateVector::zero(2);
        s.apply(X(0));
        s.apply(Swap(0, 1));
        assert!((s.probabilities()[2] - 1.0).abs() < EPS);
    }

    #[test]
    fn rzz_matches_cx_rz_cx_identity() {
        // RZZ(t) = CX(a,b) · RZ_b(t) · CX(a,b) up to global phase.
        let t = 0.731;
        let mut direct = StateVector::plus(2);
        direct.apply(Rzz(0, 1, t));

        let mut via = StateVector::plus(2);
        via.apply(Cx(0, 1));
        via.apply(Rz(1, t));
        via.apply(Cx(0, 1));

        assert!(direct.fidelity(&via) > 1.0 - 1e-10);
    }

    #[test]
    fn diagonal_fast_paths_match_generic_application() {
        let mut a = StateVector::plus(3);
        a.apply(H(1));
        a.apply(Rz(2, 0.37));
        a.apply(Cz(0, 2));
        a.apply(Rzz(1, 2, -0.9));

        // Re-run with the generic 2x2/4x4 matrix paths.
        let mut b = StateVector::plus(3);
        b.apply(H(1));
        b.apply_1q(2, &Rz(2, 0.37).unitary_1q());
        b.apply_2q(0, 2, &Cz(0, 2).unitary_2q());
        b.apply_2q(1, 2, &Rzz(1, 2, -0.9).unitary_2q());

        assert!(a.fidelity(&b) > 1.0 - 1e-10);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < 1e-10);
        }
    }

    #[test]
    fn permutation_kernels_match_generic_matrices() {
        // Start from an asymmetric state and compare the specialised X /
        // CX / SWAP kernels against the generic matrix application.
        let mut prep = StateVector::zero(3);
        for (q, t) in [(0usize, 0.37), (1, 1.1), (2, -0.6)] {
            prep.apply(Ry(q, t));
            prep.apply(Rz(q, t / 2.0));
        }
        for gate in [X(1), Cx(0, 2), Cx(2, 0), Swap(1, 2), Swap(0, 2)] {
            let mut fast = prep.clone();
            fast.apply(gate);
            let mut slow = prep.clone();
            match gate.qubits() {
                crate::gate::GateQubits::One(q) => slow.apply_1q(q, &gate.unitary_1q()),
                crate::gate::GateQubits::Two(a, b) => slow.apply_2q(a, b, &gate.unitary_2q()),
            }
            for (x, y) in fast.amplitudes().iter().zip(slow.amplitudes()) {
                assert!((*x - *y).norm() < 1e-12, "{gate:?} kernels diverge");
            }
        }
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut s = StateVector::zero(4);
        let gates = [
            H(0),
            Rx(1, 0.3),
            Ry(2, -1.1),
            Cx(0, 2),
            Rzz(1, 3, 0.8),
            Rxx(0, 3, -0.4),
            Swap(1, 2),
            Sx(3),
        ];
        for g in gates {
            s.apply(g);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10, "norm drifted after {g:?}");
        }
    }

    #[test]
    fn circuit_and_inverse_return_to_start() {
        let mut c = Circuit::new(3);
        for g in [H(0), Cx(0, 1), Ry(2, 0.7), Rzz(1, 2, 0.4), Sx(0), S(1)] {
            c.push(g);
        }
        let mut s = StateVector::zero(3);
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        assert!(s.fidelity(&StateVector::zero(3)) > 1.0 - 1e-10);
    }

    #[test]
    fn apply_diagonal_cost_matches_rz_rzz_network() {
        // For H = z0 + 2 z0 z1 (spin variables via bits), phases from the
        // energy table must match explicit RZ/RZZ gates up to global phase.
        let energies: Vec<f64> = (0..4u32)
            .map(|z| {
                let s0 = if z & 1 != 0 { 1.0 } else { -1.0 };
                let s1 = if z & 2 != 0 { 1.0 } else { -1.0 };
                s0 + 2.0 * s0 * s1
            })
            .collect();
        let gamma = 0.613;

        let mut table = StateVector::plus(2);
        table.apply_diagonal_cost(&energies, gamma);

        // With s = +1 for bit = 1 and Z eigenvalue +1 for bit = 0, we have
        // s_i = −Z_i, hence e^{−iγ h s_i} = RZ(−2γh) and
        // e^{−iγ J s_i s_j} = RZZ(2γJ) (the two sign flips cancel).
        let mut gates = StateVector::plus(2);
        gates.apply(Rz(0, -2.0 * gamma));
        gates.apply(Rzz(0, 1, 4.0 * gamma));

        assert!(table.fidelity(&gates) > 1.0 - 1e-10);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut s = StateVector::zero(2);
        s.apply(H(0)); // uniform over qubit 0, qubit 1 stays 0
        let mut rng = StdRng::seed_from_u64(5);
        let shots = s.sample(&mut rng, 4000);
        assert_eq!(shots.len(), 4000);
        let ones = shots.iter().filter(|b| b[0]).count() as f64 / 4000.0;
        assert!((ones - 0.5).abs() < 0.05, "qubit-0 frequency {ones}");
        assert!(shots.iter().all(|b| !b[1]));
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut s = StateVector::zero(2);
        // Manually damage the norm.
        s.amps[0] = C64::real(2.0);
        s.renormalize();
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn expectation_diagonal_weights_by_probability() {
        let mut s = StateVector::zero(1);
        s.apply(H(0));
        let e = s.expectation_diagonal(&[3.0, 7.0]);
        assert!((e - 5.0).abs() < EPS);
    }
}
