//! Deterministic resilience: seeded fault injection, attempt-bounded
//! retry/fallback policies, and crash-safe artifact IO.
//!
//! The pipeline this workspace reproduces runs on hardware that fails
//! operationally, not just physically: QPU job schedulers reject jobs,
//! embeddings fail, optimisers diverge, and long sweeps get killed
//! mid-flight. This crate makes those failure modes *first-class and
//! reproducible*:
//!
//! - [`fault`] draws per-site/per-unit fault decisions from a seeded
//!   [`FaultPlan`] (parsed from the `QJO_FAULTS` spec or the `--faults`
//!   flag of the `experiments` driver). A decision is a pure function of
//!   `(plan seed, site, salt, unit)` — never of wall-clock time, thread
//!   count, or global event order — so a chaos run is bit-identical at
//!   any `QJO_THREADS`.
//! - [`retry`] is the attempt-count-based policy engine: bounded retries
//!   with per-site budgets, reporting `resil.<site>.{retries, recovered,
//!   exhausted}` counters to `qjo-obs`.
//! - [`atomic`] writes artifacts via temp-file + rename, so a crash (or
//!   an injected `io.write` fault) never leaves a torn CSV/JSON behind.
//! - [`checkpoint`] persists small JSON state atomically; the
//!   `experiments` driver uses it for per-stage resume markers.
//! - [`error::QjoError`] is the workspace-level error taxonomy wrapping
//!   the per-crate errors (`QuboError`, `ParseError`, and — via `From`
//!   impls living in `qjo-anneal` — `AnnealError`/`EmbeddingError`).
//!
//! Every fault, retry, fallback, and degradation event increments a
//! `fault.*` or `resil.*` counter; the run-manifest layer routes those
//! into a dedicated `resilience` section so CI drift-gates chaos runs
//! like any other experiment.

pub mod atomic;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod retry;

pub use atomic::{atomic_write, atomic_write_uninjected};
pub use error::QjoError;
pub use fault::{should_inject, FaultPlan, FaultSpecError, SITES};
pub use retry::with_retries;

// Re-exported so downstream crates can derive reseeded retry streams
// without taking their own `qjo-exec` dependency.
pub use qjo_exec::stream_seed;
