//! Crash-safe artifact writes: temp file + rename.
//!
//! Every artifact the workspace emits (CSV tables, run manifests,
//! traces, BENCH.json, checkpoints) goes through [`atomic_write`]: the
//! bytes land in a `<name>.tmp` sibling first and are renamed over the
//! destination only once fully written. A crash — or an injected
//! `io.write` fault — therefore never leaves a torn file at the
//! destination: readers see the complete old content or the complete
//! new content, nothing in between.
//!
//! The `io.write` fault site simulates the write dying before the
//! rename. The salt is the FNV-1a hash of the *file name* (not the full
//! path, so decisions match across checkouts and output directories)
//! and the unit is the attempt index; [`atomic_write`] retries under
//! the usual attempt-bounded policy before giving up.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;

use crate::fault::should_inject;
use crate::retry::with_retries;

/// Attempt budget for one logical artifact write.
pub const WRITE_ATTEMPTS: usize = 3;

/// Writes `bytes` to `path` atomically, creating parent directories.
///
/// On error the destination is untouched and no temp file is left
/// behind.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    create_parents(path)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    let salt = qjo_obs::fnv1a64(path.file_name().unwrap_or_default().as_encoded_bytes());
    let result = with_retries("io.write", WRITE_ATTEMPTS, |attempt| {
        if should_inject("io.write", salt, attempt as u64) {
            // Simulate the crash mid-write: a torn temp file exists for
            // a moment, the destination never changes.
            let _ = fs::write(tmp, &bytes[..bytes.len() / 2]);
            let _ = fs::remove_file(tmp);
            return Err(io::Error::other(format!(
                "injected io.write fault on {} (attempt {attempt})",
                path.display()
            )));
        }
        write_via_temp(path, tmp, bytes)
    });
    if result.is_err() {
        let _ = fs::remove_file(tmp);
    }
    result
}

/// [`atomic_write`] without fault injection or retry counters.
///
/// Reserved for the resilience machinery's own state (checkpoints):
/// injecting faults into the recovery substrate would both recurse the
/// failure handling and make counter accounting depend on whether a run
/// was resumed (replayed stages never re-save their checkpoints).
pub fn atomic_write_uninjected(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    create_parents(path)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    let result = write_via_temp(path, tmp, bytes);
    if result.is_err() {
        let _ = fs::remove_file(tmp);
    }
    result
}

fn create_parents(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    Ok(())
}

fn write_via_temp(path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(tmp)?;
    file.write_all(bytes)?;
    file.flush()?;
    drop(file);
    fs::rename(tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{scoped, without_faults, FaultPlan};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qjo-resil-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_bytes_and_creates_parents() {
        without_faults(|| {
            let dir = temp_dir("plain");
            let path = dir.join("nested/out.csv");
            atomic_write(&path, b"a,b\n1,2\n").unwrap();
            assert_eq!(fs::read(&path).unwrap(), b"a,b\n1,2\n");
            assert!(!path.with_extension("csv.tmp").exists());
            let _ = fs::remove_dir_all(&dir);
        });
    }

    #[test]
    fn certain_failure_leaves_no_partial_file() {
        let dir = temp_dir("torn");
        let path = dir.join("out.csv");
        {
            let _guard = scoped(FaultPlan::new(0).with_rate("io.write", 1.0));
            assert!(atomic_write(&path, b"fresh content").is_err());
        }
        // Neither a destination nor a temp file survives the failure.
        assert!(!path.exists(), "torn write must not create the destination");
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "temp droppings: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_overwrite_keeps_the_old_content() {
        let dir = temp_dir("keep");
        let path = dir.join("out.json");
        without_faults(|| atomic_write(&path, b"old").unwrap());
        {
            let _guard = scoped(FaultPlan::new(0).with_rate("io.write", 1.0));
            assert!(atomic_write(&path, b"new").is_err());
        }
        assert_eq!(fs::read(&path).unwrap(), b"old");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uninjected_writes_ignore_the_fault_plan() {
        let dir = temp_dir("exempt");
        let path = dir.join("stage.json");
        let _guard = scoped(FaultPlan::new(0).with_rate("io.write", 1.0));
        let before = qjo_obs::global().snapshot();
        atomic_write_uninjected(&path, b"{}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{}");
        let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
        assert!(
            deltas.keys().all(|k| !k.starts_with("fault.") && !k.starts_with("resil.")),
            "exempt write must not touch resilience counters: {deltas:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_failure_recovers_on_retry() {
        // Probe for a plan seed whose decision stream for this file name
        // is (fail, pass, ...): the first attempt dies, the retry lands.
        let salt = qjo_obs::fnv1a64(b"out.csv");
        let seed = (0..256)
            .find(|&seed| {
                let _guard = scoped(FaultPlan::new(seed).with_rate("io.write", 0.5));
                should_inject("io.write", salt, 0) && !should_inject("io.write", salt, 1)
            })
            .expect("some seed in 0..256 yields (fail, pass)");
        let dir = temp_dir("recover");
        let path = dir.join("out.csv");
        let _guard = scoped(FaultPlan::new(seed).with_rate("io.write", 0.5));
        let before = qjo_obs::global().snapshot();
        atomic_write(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
        assert_eq!(deltas.get("resil.io.write.retries"), Some(&1));
        assert_eq!(deltas.get("resil.io.write.recovered"), Some(&1));
        let _ = fs::remove_dir_all(&dir);
    }
}
