//! The workspace-level error taxonomy.
//!
//! Each pipeline crate keeps its own precise error type; [`QjoError`]
//! is the umbrella the driver layer converges on, so retry/fallback
//! policies and CLI reporting handle one type. Variants for errors from
//! crates *above* `qjo-resil` in the dependency DAG (`AnnealError`,
//! `EmbeddingError`) carry the rendered message; their `From` impls live
//! in `qjo-anneal` where both types are visible.

use std::fmt;

use crate::fault::FaultSpecError;
use qjo_qubo::io::ParseError;
use qjo_qubo::QuboError;

/// Any error the join-order pipeline can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum QjoError {
    /// A QUBO model construction/evaluation error.
    Qubo(QuboError),
    /// A QUBO text-format parse error.
    Parse(ParseError),
    /// A minor-embedding failure (message of an `EmbeddingError`).
    Embedding(String),
    /// An annealer sampling failure (message of an `AnnealError`).
    Anneal(String),
    /// A malformed `QJO_FAULTS` / `--faults` spec.
    FaultSpec(FaultSpecError),
    /// An artifact/checkpoint IO failure.
    Io(String),
    /// A retry budget ran dry: `attempts` tries at `site` all failed.
    Exhausted {
        /// The fault/retry site that gave up.
        site: String,
        /// How many attempts were made.
        attempts: usize,
        /// The rendered last error.
        last: String,
    },
}

impl fmt::Display for QjoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QjoError::Qubo(e) => write!(f, "qubo: {e}"),
            QjoError::Parse(e) => write!(f, "parse: {e}"),
            QjoError::Embedding(msg) => write!(f, "embedding: {msg}"),
            QjoError::Anneal(msg) => write!(f, "anneal: {msg}"),
            QjoError::FaultSpec(e) => write!(f, "fault spec: {e}"),
            QjoError::Io(msg) => write!(f, "io: {msg}"),
            QjoError::Exhausted { site, attempts, last } => {
                write!(f, "{site}: retry budget exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for QjoError {}

impl From<QuboError> for QjoError {
    fn from(e: QuboError) -> Self {
        QjoError::Qubo(e)
    }
}

impl From<ParseError> for QjoError {
    fn from(e: ParseError) -> Self {
        QjoError::Parse(e)
    }
}

impl From<FaultSpecError> for QjoError {
    fn from(e: FaultSpecError) -> Self {
        QjoError::FaultSpec(e)
    }
}

impl From<std::io::Error> for QjoError {
    fn from(e: std::io::Error) -> Self {
        QjoError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_wrapped_message() {
        let e = QjoError::from(ParseError::MissingHeader);
        assert!(e.to_string().starts_with("parse: "), "{e}");
        let e = QjoError::Io("disk on fire".into());
        assert_eq!(e.to_string(), "io: disk on fire");
        let e = QjoError::Exhausted { site: "anneal.embed".into(), attempts: 3, last: "x".into() };
        assert_eq!(e.to_string(), "anneal.embed: retry budget exhausted after 3 attempts: x");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        match QjoError::from(io) {
            QjoError::Io(msg) => assert!(msg.contains("gone")),
            other => panic!("unexpected variant {other:?}"),
        }
    }
}
