//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] assigns an injection probability to each *site* — a
//! named failure point in the pipeline (see [`SITES`]). Whether a given
//! operation fails is decided by hashing `(plan seed, site, salt, unit)`
//! SplitMix64-style into a uniform draw in `[0, 1)` and comparing it to
//! the site's probability. The decision depends on nothing else: no
//! wall-clock, no thread count, no global event order, no mutable
//! counters — so a chaos run is exactly reproducible, and bit-identical
//! under any `QJO_THREADS`.
//!
//! `salt` is chosen by the call site to separate independent streams
//! (typically the component's own seed); `unit` indexes the work unit or
//! attempt within that stream.
//!
//! # Spec grammar
//!
//! Plans are parsed from the `QJO_FAULTS` environment variable or the
//! `--faults` flag of the `experiments` driver:
//!
//! ```text
//! seed=7;anneal.embed=0.25;transpile.route=0.2;io.write=0.15
//! ```
//!
//! Clauses are separated by `;` (or `,`); each is `key=value`. The
//! optional `seed` clause sets the plan seed (default 0); every other
//! key must be a known site name from [`SITES`] with a probability in
//! `[0, 1]`. Sites not named in the spec never fire.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// Every fault-injection site in the workspace.
///
/// | site | failure simulated |
/// |------|-------------------|
/// | `anneal.embed` | minor-embedding attempt fails |
/// | `anneal.job` | QPU scheduler rejects the annealing job |
/// | `anneal.chain_storm` | a read batch comes back with broken chains |
/// | `gatesim.trajectory` | a noisy-simulator trajectory is lost |
/// | `transpile.route` | a routing pass fails on the device |
/// | `qaoa.step` | an optimiser objective evaluation returns NaN |
/// | `io.write` | an artifact write dies before the atomic rename |
pub const SITES: &[&str] = &[
    "anneal.embed",
    "anneal.job",
    "anneal.chain_storm",
    "gatesim.trajectory",
    "transpile.route",
    "qaoa.step",
    "io.write",
];

/// A malformed fault spec.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpecError {
    /// A clause was not of the form `key=value`.
    BadClause(String),
    /// The clause named a site that does not exist (see [`SITES`]).
    UnknownSite(String),
    /// The `seed=` value did not parse as a `u64`.
    BadSeed(String),
    /// A site probability did not parse, or fell outside `[0, 1]`.
    BadProbability {
        /// The site whose probability was rejected.
        site: String,
        /// The literal value text.
        value: String,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::BadClause(c) => write!(f, "clause `{c}` is not of the form key=value"),
            FaultSpecError::UnknownSite(s) => {
                write!(f, "unknown fault site `{s}` (known: {})", SITES.join(", "))
            }
            FaultSpecError::BadSeed(v) => write!(f, "seed `{v}` is not a u64"),
            FaultSpecError::BadProbability { site, value } => {
                write!(f, "probability `{value}` for site `{site}` is not a number in [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A seeded assignment of injection probabilities to sites.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The plan seed every fault decision is derived from.
    pub seed: u64,
    rates: BTreeMap<String, f64>,
}

impl FaultPlan {
    /// An empty plan (no site ever fires) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rates: BTreeMap::new() }
    }

    /// Builder: sets `site`'s injection probability.
    ///
    /// # Panics
    /// If `site` is not in [`SITES`] or `p` is outside `[0, 1]` — the
    /// programmatic builder is for tests, where a typo should be loud.
    pub fn with_rate(mut self, site: &str, p: f64) -> Self {
        assert!(SITES.contains(&site), "unknown fault site `{site}`");
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.rates.insert(site.to_string(), p);
        self
    }

    /// The injection probability of `site` (0 when unlisted).
    pub fn rate(&self, site: &str) -> f64 {
        self.rates.get(site).copied().unwrap_or(0.0)
    }

    /// Parses the spec grammar described in the [module docs](self).
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split([';', ',']) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((key, value)) = clause.split_once('=') else {
                return Err(FaultSpecError::BadClause(clause.to_string()));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed =
                    value.parse().map_err(|_| FaultSpecError::BadSeed(value.to_string()))?;
                continue;
            }
            if !SITES.contains(&key) {
                return Err(FaultSpecError::UnknownSite(key.to_string()));
            }
            let p: f64 = value.parse().map_err(|_| FaultSpecError::BadProbability {
                site: key.to_string(),
                value: value.to_string(),
            })?;
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultSpecError::BadProbability {
                    site: key.to_string(),
                    value: value.to_string(),
                });
            }
            plan.rates.insert(key.to_string(), p);
        }
        Ok(plan)
    }

    /// Renders back to the spec grammar (sites in sorted order).
    pub fn render(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for (site, p) in &self.rates {
            out.push_str(&format!(";{site}={p}"));
        }
        out
    }
}

/// Process-wide plan. The `ACTIVE` flag keeps the no-plan fast path at
/// one relaxed atomic load.
fn plan_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Installs `plan` process-wide; all subsequent [`should_inject`] calls
/// consult it until [`clear`] replaces it.
pub fn install(plan: FaultPlan) {
    *plan_slot().write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(plan));
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; injection becomes a no-op again.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *plan_slot().write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// The installed plan, if any.
pub fn active() -> Option<Arc<FaultPlan>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    plan_slot().read().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Installs the plan described by the `QJO_FAULTS` environment variable.
///
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset or empty.
pub fn install_from_env() -> Result<bool, FaultSpecError> {
    match std::env::var("QJO_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(FaultPlan::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Serialises tests (and other scoped users) that install a plan: the
/// plan slot is process-global, so concurrent tests in one binary must
/// not interleave installs.
fn scope_mutex() -> &'static Mutex<()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
}

/// A guard that holds `plan` installed; dropping it clears the plan.
///
/// Holding the guard also holds a process-wide mutex, so scoped plans
/// in concurrent tests serialise instead of trampling each other.
pub struct ScopedFaults {
    _lock: MutexGuard<'static, ()>,
}

/// Installs `plan` for the lifetime of the returned guard (test aid).
pub fn scoped(plan: FaultPlan) -> ScopedFaults {
    let lock = scope_mutex().lock().unwrap_or_else(|p| p.into_inner());
    install(plan);
    ScopedFaults { _lock: lock }
}

/// Runs `f` with *no* plan installed, under the same scope mutex —
/// lets deterministic baseline tests coexist with chaos tests in one
/// test binary.
pub fn without_faults<T>(f: impl FnOnce() -> T) -> T {
    let _lock = scope_mutex().lock().unwrap_or_else(|p| p.into_inner());
    clear();
    f()
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        clear();
    }
}

/// Decides whether the fault at `site` fires for work unit `unit` of
/// stream `salt`, and counts it under `fault.injected.<site>` if so.
///
/// Pure in `(plan seed, site, salt, unit)`; always `false` with no plan
/// installed (one relaxed atomic load on that path).
pub fn should_inject(site: &str, salt: u64, unit: u64) -> bool {
    let Some(plan) = active() else {
        return false;
    };
    let p = plan.rate(site);
    if p <= 0.0 {
        return false;
    }
    let base = plan.seed ^ qjo_obs::fnv1a64(site.as_bytes()) ^ salt.rotate_left(17);
    let draw = qjo_exec::stream_seed(base, unit);
    // Top 53 bits → uniform in [0, 1), the usual f64 construction.
    let uniform = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let hit = uniform < p;
    if hit {
        qjo_obs::counter(&format!("fault.injected.{site}")).incr();
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan = FaultPlan::parse("seed=7; anneal.embed=0.25;io.write=0.5,qaoa.step=1").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rate("anneal.embed"), 0.25);
        assert_eq!(plan.rate("io.write"), 0.5);
        assert_eq!(plan.rate("qaoa.step"), 1.0);
        assert_eq!(plan.rate("transpile.route"), 0.0);
    }

    #[test]
    fn empty_spec_is_an_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new(0));
        assert_eq!(FaultPlan::parse(" ; , ").unwrap(), FaultPlan::new(0));
    }

    #[test]
    fn round_trips_through_render() {
        let plan = FaultPlan::parse("seed=42;anneal.job=0.125;io.write=0.25").unwrap();
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn rejects_malformed_clause() {
        assert_eq!(
            FaultPlan::parse("anneal.embed").unwrap_err(),
            FaultSpecError::BadClause("anneal.embed".into())
        );
    }

    #[test]
    fn rejects_unknown_site() {
        assert_eq!(
            FaultPlan::parse("anneal.embd=0.5").unwrap_err(),
            FaultSpecError::UnknownSite("anneal.embd".into())
        );
    }

    #[test]
    fn rejects_bad_seed() {
        assert_eq!(FaultPlan::parse("seed=-3").unwrap_err(), FaultSpecError::BadSeed("-3".into()));
    }

    #[test]
    fn rejects_out_of_range_or_unparsable_probability() {
        for spec in ["io.write=1.5", "io.write=-0.1", "io.write=lots", "io.write=NaN"] {
            match FaultPlan::parse(spec).unwrap_err() {
                FaultSpecError::BadProbability { site, .. } => assert_eq!(site, "io.write"),
                other => panic!("unexpected error {other:?} for {spec}"),
            }
        }
    }

    #[test]
    fn spec_errors_render() {
        let msg = FaultSpecError::UnknownSite("nope".into()).to_string();
        assert!(msg.contains("nope") && msg.contains("anneal.embed"), "{msg}");
        assert!(FaultSpecError::BadClause("x".into()).to_string().contains("key=value"));
        assert!(FaultSpecError::BadSeed("z".into()).to_string().contains("u64"));
        let msg = FaultSpecError::BadProbability { site: "io.write".into(), value: "2".into() }
            .to_string();
        assert!(msg.contains("io.write") && msg.contains("[0, 1]"), "{msg}");
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let _guard = scoped(FaultPlan::parse("seed=9;gatesim.trajectory=0.3").unwrap());
        let draws: Vec<bool> =
            (0..2000).map(|u| should_inject("gatesim.trajectory", 5, u)).collect();
        let again: Vec<bool> =
            (0..2000).map(|u| should_inject("gatesim.trajectory", 5, u)).collect();
        assert_eq!(draws, again, "same (site, salt, unit) must decide identically");
        let hits = draws.iter().filter(|&&h| h).count();
        assert!((400..800).contains(&hits), "p=0.3 over 2000 draws gave {hits} hits");
        // Unlisted sites and different salts are independent streams.
        assert!((0..2000).all(|u| !should_inject("anneal.embed", 5, u)));
        let other_salt: Vec<bool> =
            (0..2000).map(|u| should_inject("gatesim.trajectory", 6, u)).collect();
        assert_ne!(draws, other_salt);
    }

    #[test]
    fn extreme_rates_always_and_never_fire() {
        let plan = FaultPlan::new(1).with_rate("io.write", 1.0).with_rate("qaoa.step", 0.0);
        let _guard = scoped(plan);
        assert!((0..100).all(|u| should_inject("io.write", 0, u)));
        assert!((0..100).all(|u| !should_inject("qaoa.step", 0, u)));
    }

    #[test]
    fn no_plan_means_no_faults() {
        without_faults(|| {
            assert!(!should_inject("io.write", 0, 0));
        });
    }

    #[test]
    fn injections_are_counted_per_site() {
        let _guard = scoped(FaultPlan::new(3).with_rate("transpile.route", 1.0));
        let before = qjo_obs::global().snapshot();
        for u in 0..5 {
            should_inject("transpile.route", 0, u);
        }
        let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
        assert_eq!(deltas.get("fault.injected.transpile.route"), Some(&5));
    }
}
