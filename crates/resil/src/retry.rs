//! Attempt-bounded retry: the policy engine's core loop.
//!
//! Budgets are **attempt counts, never wall-clock** — a retried run
//! makes the same decisions on a loaded CI box as on an idle laptop, so
//! results stay bit-identical at any thread count. The closure receives
//! the 0-based attempt index; call sites use it to derive a fresh seed
//! per attempt (via [`crate::stream_seed`]), which is what turns a
//! deterministic failure into a genuinely different retry.
//!
//! Every outcome is counted: `resil.<site>.retries` (an attempt failed
//! with budget remaining), `resil.<site>.recovered` (a retry succeeded),
//! `resil.<site>.exhausted` (the whole budget failed).

/// Runs `op` up to `max_attempts` times, returning the first success or
/// the last error.
///
/// # Panics
/// If `max_attempts` is 0.
pub fn with_retries<T, E>(
    site: &str,
    max_attempts: usize,
    mut op: impl FnMut(usize) -> Result<T, E>,
) -> Result<T, E> {
    assert!(max_attempts >= 1, "retry budget must allow at least one attempt");
    let mut last = None;
    for attempt in 0..max_attempts {
        match op(attempt) {
            Ok(value) => {
                if attempt > 0 {
                    qjo_obs::counter(&format!("resil.{site}.recovered")).incr();
                }
                return Ok(value);
            }
            Err(e) => {
                if attempt + 1 < max_attempts {
                    qjo_obs::counter(&format!("resil.{site}.retries")).incr();
                }
                last = Some(e);
            }
        }
    }
    qjo_obs::counter(&format!("resil.{site}.exhausted")).incr();
    Err(last.expect("max_attempts >= 1 guarantees at least one result"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deltas_since(before: &qjo_obs::Snapshot) -> std::collections::BTreeMap<String, u64> {
        qjo_obs::global().snapshot().counter_deltas_since(before)
    }

    #[test]
    fn first_try_success_counts_nothing() {
        let before = qjo_obs::global().snapshot();
        let out: Result<i32, ()> = with_retries("t.first", 3, |_| Ok(7));
        assert_eq!(out, Ok(7));
        let d = deltas_since(&before);
        assert!(d.keys().all(|k| !k.starts_with("resil.t.first.")), "{d:?}");
    }

    #[test]
    fn recovery_counts_retries_and_recovered() {
        let before = qjo_obs::global().snapshot();
        let out: Result<usize, &str> =
            with_retries("t.recover", 4, |a| if a < 2 { Err("boom") } else { Ok(a) });
        assert_eq!(out, Ok(2));
        let d = deltas_since(&before);
        assert_eq!(d.get("resil.t.recover.retries"), Some(&2));
        assert_eq!(d.get("resil.t.recover.recovered"), Some(&1));
        assert_eq!(d.get("resil.t.recover.exhausted"), None);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let before = qjo_obs::global().snapshot();
        let out: Result<(), String> = with_retries("t.dry", 3, |a| Err(format!("attempt {a}")));
        assert_eq!(out, Err("attempt 2".to_string()));
        let d = deltas_since(&before);
        assert_eq!(d.get("resil.t.dry.retries"), Some(&2));
        assert_eq!(d.get("resil.t.dry.exhausted"), Some(&1));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_budget_is_a_bug() {
        let _: Result<(), ()> = with_retries("t.zero", 0, |_| Ok(()));
    }
}
