//! Atomic JSON checkpoints.
//!
//! A checkpoint is a small JSON document saved with
//! [`atomic_write_uninjected`], so a crash mid-save leaves either the
//! previous checkpoint or none — never a torn one. Checkpoints are the
//! recovery substrate itself, so they are exempt from `io.write` fault
//! injection. The `experiments` driver writes one per completed sweep
//! stage and replays them under `--resume`.

use std::path::Path;

use crate::atomic::atomic_write_uninjected;
use crate::error::QjoError;
use qjo_obs::json::Json;

/// Saves `doc` to `path` atomically, bypassing fault injection.
pub fn save(path: impl AsRef<Path>, doc: &Json) -> Result<(), QjoError> {
    atomic_write_uninjected(path, doc.render().as_bytes()).map_err(QjoError::from)
}

/// Loads the checkpoint at `path`.
///
/// Returns `Ok(None)` when the file is absent *or* unparsable: a
/// checkpoint that cannot be trusted is treated as missing, and the
/// caller simply redoes the work it would have skipped.
pub fn load(path: impl AsRef<Path>) -> Result<Option<Json>, QjoError> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(QjoError::from(e)),
    };
    Ok(Json::parse(&text).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::without_faults;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_and_treats_garbage_as_missing() {
        without_faults(|| {
            let dir =
                std::env::temp_dir().join(format!("qjo-resil-checkpoint-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let path = dir.join("stage.json");

            assert_eq!(load(&path).unwrap(), None, "missing file is None");

            let doc = Json::Obj(BTreeMap::from([
                ("stage".to_string(), Json::Str("table1".to_string())),
                ("duration_ms".to_string(), Json::Num(12.0)),
            ]));
            save(&path, &doc).unwrap();
            assert_eq!(load(&path).unwrap(), Some(doc));

            std::fs::write(&path, "{ torn").unwrap();
            assert_eq!(load(&path).unwrap(), None, "corrupt checkpoint is None");
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
}
