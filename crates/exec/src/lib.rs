//! Deterministic parallel execution for solvers, samplers, and sweeps.
//!
//! Every Monte-Carlo quantity in this workspace — SA/tabu restarts, SQA
//! reads, noisy-trajectory shots, grid evaluations, experiment cells — is
//! a map over independent work units. This crate provides that map in a
//! form whose output is **bit-identical at any thread count**:
//!
//! * [`par_map`] preserves input order and never lets scheduling reach
//!   the results: unit `i`'s output always lands in slot `i`.
//! * [`par_map_seeded`] additionally hands unit `i` its own
//!   [`StdRng`] derived from `(base_seed, i)` via [`stream_seed`], so no
//!   RNG is shared across units and the draw sequence seen by a unit
//!   cannot depend on which thread ran it or in what order.
//! * [`Parallelism`] is the thread-count knob plumbed through solver and
//!   sampler configs; it changes wall-clock only, never results.
//!
//! # Seed-stream derivation
//!
//! `stream_seed(base, i)` is the `(i + 1)`-th output of a SplitMix64
//! generator seeded with `base`: the counter is advanced `i + 1`
//! golden-ratio steps and finalised. Streams for different units are
//! therefore as statistically independent as SplitMix64's split
//! operation provides, and the mapping is a pure function — re-running
//! with the same `(base, i)` always yields the same stream.
//!
//! # Panic propagation
//!
//! If a work-unit closure panics, [`par_map`] finishes cleanly (no
//! poisoned locks, no secondary worker deaths) and re-raises the payload
//! of the **lowest-indexed** failing unit on the caller's thread, so the
//! surfaced panic is deterministic too.
//!
//! # Observability
//!
//! When `qjo-obs` event tracing or convergence recording is active, each
//! work unit runs under a `qjo_obs::trace` unit scope: traces show units
//! as named slices on per-worker virtual thread tracks, and convergence
//! series opened inside a unit are keyed by the unit's index path — a
//! pure function of the work, never of scheduling. See
//! [`par_map_indexed`] for details; with telemetry off the integration
//! costs two relaxed atomic loads per map.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread-count configuration for parallel maps.
///
/// `threads == 0` means "auto": one thread per available core. Any other
/// value is used as given (and still capped at the number of work units).
/// The setting affects wall-clock time only — results are identical for
/// every value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads to use; `0` resolves to the available core count.
    pub threads: usize,
}

impl Parallelism {
    /// One thread per available core.
    pub fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Exactly one thread: runs on the caller, no spawning.
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// A fixed thread count (`0` means auto).
    pub fn new(threads: usize) -> Self {
        Parallelism { threads }
    }

    /// The concrete worker count this configuration resolves to.
    ///
    /// `threads == 0` (auto) first consults the `QJO_THREADS` environment
    /// variable — the process-wide pin CI's determinism matrix uses to
    /// force every auto-parallel path to a fixed width — and falls back to
    /// the available core count. Explicit thread counts ignore the
    /// variable. Either way, results never depend on the resolved value.
    pub fn resolve(self) -> usize {
        if self.threads == 0 {
            if let Some(pinned) = env_threads() {
                return pinned;
            }
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for Parallelism {
    /// Auto: one thread per available core.
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// The `QJO_THREADS` pin, if set to a positive integer (any other value,
/// including `0`, is ignored).
fn env_threads() -> Option<usize> {
    std::env::var("QJO_THREADS").ok()?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Derives the seed of work unit `unit_index`'s RNG stream from a base
/// seed.
///
/// This is the `(unit_index + 1)`-th output of a SplitMix64 sequence
/// seeded with `base_seed`; see the module docs for the independence
/// argument.
#[inline]
pub fn stream_seed(base_seed: u64, unit_index: u64) -> u64 {
    let counter =
        base_seed.wrapping_add(unit_index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut z = counter;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `parallelism.resolve()` scoped threads,
/// preserving input order in the output.
///
/// Work units are handed out dynamically (an atomic cursor), but each
/// unit's result is written to its input slot, so the output is
/// independent of scheduling. With one thread (or one item) the map runs
/// inline on the caller with no spawning.
///
/// # Panics
/// Re-raises the panic payload of the lowest-indexed failing unit after
/// all workers have stopped.
pub fn par_map<T, R, F>(items: Vec<T>, parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_indexed(items, parallelism, |_, item| f(item))
}

/// [`par_map`] where each unit also receives its own deterministic RNG,
/// seeded with [`stream_seed`]`(base_seed, index)`.
///
/// This is the primitive behind every parallelised restart/read/
/// trajectory loop: one generator per unit, derived from the unit index,
/// shared with nobody.
pub fn par_map_seeded<T, R, F>(
    items: Vec<T>,
    base_seed: u64,
    parallelism: Parallelism,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T, &mut StdRng) -> R + Sync,
{
    par_map_indexed(items, parallelism, |index, item| {
        let mut rng = StdRng::seed_from_u64(stream_seed(base_seed, index as u64));
        f(item, &mut rng)
    })
}

/// Order-preserving parallel map where the closure also sees the unit
/// index.
///
/// # Observability
///
/// When `qjo-obs` telemetry is active, every work unit runs under a unit
/// scope: the unit's index extends the thread-local *unit path* (which
/// keys convergence series deterministically, including through nested
/// maps), and — when event tracing is enabled — the unit appears as a
/// named slice (`{caller span path} · unit i`) on the virtual thread
/// track of the worker slot that ran it. Both are record-on-drop, so
/// units that panic still show up. With telemetry off, the map pays two
/// relaxed atomic loads total.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = parallelism.resolve().max(1).min(n);
    let telemetry = qjo_obs::trace::is_enabled() || qjo_obs::convergence::is_active();
    // The unit label and path prefix belong to the *caller*: workers
    // inherit them so slices are named after the span that launched the
    // map and nested maps key their units as "outer/inner".
    let label = if telemetry {
        let path = qjo_obs::current_span_path();
        if path.is_empty() {
            "par_map".to_string()
        } else {
            path
        }
    } else {
        String::new()
    };
    let prefix = if telemetry { qjo_obs::trace::unit_path() } else { Vec::new() };
    if threads <= 1 {
        if !telemetry {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let _unit = qjo_obs::trace::unit_scope(&label, i as u64);
                f(i, item)
            })
            .collect();
    }

    // Jobs are taken via an atomic cursor; each worker owns the item it
    // claimed. Results are pushed with their index and sorted afterwards,
    // so no lock is ever held across `f` and a panic cannot poison
    // anything another worker needs.
    let jobs: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (f, label, prefix) = (&f, &label, &prefix);
            let (jobs, cursor, failed) = (&jobs, &cursor, &failed);
            let (results, first_panic) = (&results, &first_panic);
            scope.spawn(move || {
                let _track = telemetry.then(|| qjo_obs::trace::worker_scope(worker as u32 + 1));
                let _inherited = telemetry.then(|| qjo_obs::trace::unit_prefix_scope(prefix));
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let item = jobs[index]
                        .lock()
                        .expect("job slot is locked once and f runs outside it")
                        .take()
                        .expect("each job is claimed exactly once");
                    match catch_unwind(AssertUnwindSafe(|| {
                        let _unit =
                            telemetry.then(|| qjo_obs::trace::unit_scope(label, index as u64));
                        f(index, item)
                    })) {
                        Ok(out) => {
                            results
                                .lock()
                                .expect("no panic ever unwinds while holding the results lock")
                                .push((index, out));
                        }
                        Err(payload) => {
                            failed.store(true, Ordering::Relaxed);
                            let mut slot = first_panic
                                .lock()
                                .expect("no panic ever unwinds while holding the panic slot");
                            match &*slot {
                                Some((earlier, _)) if *earlier <= index => {}
                                _ => *slot = Some((index, payload)),
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some((_, payload)) = first_panic.into_inner().expect("workers joined") {
        resume_unwind(payload);
    }
    let mut indexed = results.into_inner().expect("workers joined");
    indexed.sort_unstable_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map(items.clone(), Parallelism::new(threads), |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn seeded_map_is_identical_across_thread_counts() {
        let draw = |_: usize, rng: &mut StdRng| -> Vec<f64> {
            (0..16).map(|_| rng.random::<f64>()).collect()
        };
        let items: Vec<usize> = (0..37).collect();
        let sequential = par_map_seeded(items.clone(), 42, Parallelism::sequential(), draw);
        for threads in [2, 4, 8] {
            let parallel = par_map_seeded(items.clone(), 42, Parallelism::new(threads), draw);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn stream_seeds_are_distinct_and_reproducible() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, u64::MAX] {
            for i in 0..1_000 {
                assert_eq!(stream_seed(base, i), stream_seed(base, i));
                seen.insert(stream_seed(base, i));
            }
        }
        assert_eq!(seen.len(), 3_000, "stream seeds collided");
    }

    #[test]
    fn stream_seed_matches_splitmix_sequence() {
        // Unit i's seed is the (i+1)-th output of SplitMix64(base).
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..10 {
            assert_eq!(rng.next_u64(), stream_seed(99, i));
        }
    }

    use rand::RngCore;

    #[test]
    #[should_panic(expected = "boom at unit 13")]
    fn propagates_the_original_panic_payload() {
        par_map((0..64).collect::<Vec<usize>>(), Parallelism::new(4), |x| {
            if x == 13 {
                panic!("boom at unit 13");
            }
            x
        });
    }

    #[test]
    fn propagates_the_lowest_indexed_panic() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed((0..32).collect::<Vec<usize>>(), Parallelism::sequential(), |i, _| {
                if i >= 5 {
                    panic!("unit {i} failed");
                }
                i
            })
        })
        .expect_err("must panic");
        let message =
            caught.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string payload".into());
        assert_eq!(message, "unit 5 failed");
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = par_map(Vec::new(), Parallelism::auto(), |x: u32| x);
        assert!(empty.is_empty());
        let one = par_map(vec![7], Parallelism::auto(), |x| x + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn auto_resolves_to_at_least_one_thread() {
        assert!(Parallelism::auto().resolve() >= 1);
        assert_eq!(Parallelism::sequential().resolve(), 1);
        assert_eq!(Parallelism::new(5).resolve(), 5);
    }

    /// Serialises tests that toggle the process-global qjo-obs telemetry.
    fn telemetry_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn traced_units_appear_on_virtual_worker_tracks() {
        let _serial = telemetry_serial();
        let _span = qjo_obs::span!("exec-test-traced-map");
        qjo_obs::trace::start(1 << 12);
        par_map((0..8).collect::<Vec<usize>>(), Parallelism::new(4), |x| x * 2);
        qjo_obs::trace::stop();
        let events = qjo_obs::trace::snapshot_events();
        let units: Vec<_> =
            events.iter().filter(|e| e.name.starts_with("exec-test-traced-map · unit ")).collect();
        assert_eq!(units.len(), 8, "one slice per work unit: {units:?}");
        let mut seen_units: Vec<u64> = units.iter().map(|e| e.unit.unwrap()).collect();
        seen_units.sort_unstable();
        assert_eq!(seen_units, (0..8).collect::<Vec<u64>>());
        for unit in &units {
            assert!(
                unit.tid > qjo_obs::trace::WORKER_TID_BASE,
                "unit slices land on virtual worker tracks: {unit:?}"
            );
        }
        // The whole export still passes the nesting validator.
        let doc = qjo_obs::trace::to_chrome_json();
        qjo_obs::trace::validate_chrome_trace(&doc).expect("trace nests cleanly");
    }

    #[test]
    fn sequential_path_also_records_unit_slices() {
        let _serial = telemetry_serial();
        qjo_obs::trace::start(1 << 12);
        par_map((0..3).collect::<Vec<usize>>(), Parallelism::sequential(), |x| x);
        qjo_obs::trace::stop();
        let events = qjo_obs::trace::snapshot_events();
        let units: Vec<_> =
            events.iter().filter(|e| e.name.starts_with("par_map · unit ")).collect();
        assert_eq!(units.len(), 3, "{units:?}");
        for unit in &units {
            assert!(
                unit.tid < qjo_obs::trace::WORKER_TID_BASE,
                "inline units stay on the caller's track: {unit:?}"
            );
        }
    }

    #[test]
    fn convergence_series_are_byte_identical_across_thread_counts() {
        let _serial = telemetry_serial();
        let run = |threads: usize| {
            qjo_obs::convergence::start(2);
            qjo_obs::convergence::set_phase("exec-test");
            par_map((0..6).collect::<Vec<usize>>(), Parallelism::new(threads), |x| {
                let series = qjo_obs::convergence::series("exec-conv-test", "value");
                for step in 0..10u64 {
                    series.record(step, (x as u64 * 100 + step) as f64);
                }
                x
            });
            qjo_obs::convergence::drain_csv()
                .into_iter()
                .find(|(group, _)| group == "exec-conv-test")
                .map(|(_, csv)| csv)
                .expect("group recorded")
        };
        let sequential = run(1);
        // Units key rows by their par_map index.
        assert!(sequential.contains("exec-test,value,3,0,4,304\n"), "{sequential}");
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn nested_maps_extend_the_unit_path() {
        let _serial = telemetry_serial();
        qjo_obs::convergence::start(1);
        par_map((0..2).collect::<Vec<usize>>(), Parallelism::new(2), |_| {
            // The inner map runs on a worker thread; its units inherit the
            // outer unit index as a prefix.
            par_map((0..2).collect::<Vec<usize>>(), Parallelism::sequential(), |y| {
                qjo_obs::convergence::series("exec-nest-test", "v").record(0, y as f64);
                y
            })
        });
        let drained = qjo_obs::convergence::drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "exec-nest-test").unwrap().1;
        for unit in ["0/0", "0/1", "1/0", "1/1"] {
            assert!(csv.contains(&format!(",v,{unit},0,0,")), "missing unit {unit}: {csv}");
        }
    }

    #[test]
    fn qjo_threads_env_pins_auto_only() {
        // Env vars are process-global: set, observe, and restore promptly.
        // Explicit thread counts must ignore the pin.
        std::env::set_var("QJO_THREADS", "3");
        let auto = Parallelism::auto().resolve();
        let explicit = Parallelism::new(5).resolve();
        std::env::set_var("QJO_THREADS", "not-a-number");
        let garbage = Parallelism::auto().resolve();
        std::env::remove_var("QJO_THREADS");
        assert_eq!(auto, 3);
        assert_eq!(explicit, 5);
        assert!(garbage >= 1, "garbage pin falls back to core count");
    }
}
