//! A minimal JSON document model: enough to write and read run manifests
//! in a hermetic build (no serde available), with deterministic output
//! (object keys are sorted, numbers round-trip).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers up to 2^53 survive the round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) if map.is_empty() => out.push_str("{}"),
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// Containers may nest at most [`MAX_PARSE_DEPTH`] levels; deeper
    /// documents return an error rather than overflowing the stack (the
    /// parser recurses per level).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Maximum container nesting [`Json::parse`] accepts.
pub const MAX_PARSE_DEPTH: usize = 128;

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; manifests never emit them.
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Json::Null),
            Some(b't') => self.eat_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("containers nest deeper than MAX_PARSE_DEPTH"));
        }
        let result = self.array_inner();
        self.depth -= 1;
        result
    }

    fn array_inner(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("containers nest deeper than MAX_PARSE_DEPTH"));
        }
        let result = self.object_inner();
        self.depth -= 1;
        result
    }

    fn object_inner(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired: manifests never
                            // emit them, so reject instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) -> Json {
        Json::parse(&value.render()).expect("rendered JSON re-parses")
    }

    #[test]
    fn renders_deterministically_with_sorted_keys() {
        let mut map = BTreeMap::new();
        map.insert("b".to_string(), Json::from(2u64));
        map.insert("a".to_string(), Json::from("x"));
        let doc = Json::Obj(map);
        assert_eq!(doc.render(), "{\n  \"a\": \"x\",\n  \"b\": 2\n}\n");
    }

    #[test]
    fn integers_render_without_exponents_or_fractions() {
        let mut out = String::new();
        write_number(&mut out, 9_007_199_254_740_992.0); // 2^53
        assert_eq!(out, "9007199254740992");
        let mut out = String::new();
        write_number(&mut out, 0.5);
        assert_eq!(out, "0.5");
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}—".to_string());
        assert_eq!(roundtrip(&original), original);
        assert!(original.render().contains("\\u0001"));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(r#"{"a": [1, 2.5, null, true, "s"], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_f64(), Some(-300.0));
        assert_eq!(roundtrip(&doc), doc);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::Arr(Vec::new()).render(), "[]\n");
        assert_eq!(Json::Obj(BTreeMap::new()).render(), "{}\n");
    }

    // -- seeded random round-trip and malformed-input coverage ------------

    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_string(rng: &mut StdRng) -> String {
        let alphabet: Vec<char> = "ab\"\\/\n\r\t\u{1}\u{7f}é—\u{10348} z0".chars().collect();
        let len = rng.random_range(0..8usize);
        (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
    }

    fn random_number(rng: &mut StdRng) -> f64 {
        match rng.random_range(0..4u32) {
            // Integers survive exactly up to 2^53.
            0 => rng.random_range(-(1i64 << 53)..=(1i64 << 53)) as f64,
            1 => rng.random_range(-10i64..10) as f64,
            2 => rng.random::<f64>() * 2e6 - 1e6,
            // Extreme magnitudes exercise the exponent path.
            _ => rng.random::<f64>() * 1e300,
        }
    }

    fn random_value(rng: &mut StdRng, depth: usize) -> Json {
        let max_kind = if depth == 0 { 4 } else { 6 };
        match rng.random_range(0..max_kind as u32) {
            0 => Json::Null,
            1 => Json::Bool(rng.random_bool(0.5)),
            2 => Json::Num(random_number(rng)),
            3 => Json::Str(random_string(rng)),
            4 => Json::Arr(
                (0..rng.random_range(0..5usize)).map(|_| random_value(rng, depth - 1)).collect(),
            ),
            _ => Json::Obj(
                (0..rng.random_range(0..5usize))
                    .map(|_| (random_string(rng), random_value(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn random_documents_roundtrip_exactly() {
        let mut rng = StdRng::seed_from_u64(0x9a05);
        for case in 0..300 {
            let doc = random_value(&mut rng, 4);
            let rendered = doc.render();
            let reparsed =
                Json::parse(&rendered).unwrap_or_else(|e| panic!("case {case}: {e}\n{rendered}"));
            assert_eq!(reparsed, doc, "case {case} drifted:\n{rendered}");
        }
    }

    #[test]
    fn truncated_documents_error_at_every_prefix() {
        // Every proper prefix of a valid document must fail to parse —
        // with an error, never a panic.
        let doc = r#"{"a": [1, -2.5e3, null, true, "sé\n"], "b": {"c": []}}"#;
        assert!(Json::parse(doc).is_ok());
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            assert!(Json::parse(prefix).is_err(), "prefix {prefix:?} accepted");
        }
    }

    #[test]
    fn bad_escapes_are_rejected() {
        for bad in [
            r#""\x""#,     // unknown escape
            r#""\"#,       // escape at end of input
            r#""\u12""#,   // truncated \u
            r#""\u12g4""#, // non-hex \u
            r#""\ud800""#, // lone surrogate
            "\"ab",        // unterminated string
        ] {
            let err = Json::parse(bad).expect_err(&format!("accepted {bad:?}"));
            assert!(err.offset <= bad.len(), "{err}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the limit: parses fine.
        let ok = format!("{}{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One past the limit: a clean error.
        let over =
            format!("{}{}", "[".repeat(MAX_PARSE_DEPTH + 1), "]".repeat(MAX_PARSE_DEPTH + 1));
        let err = Json::parse(&over).expect_err("depth limit enforced");
        assert!(err.message.contains("MAX_PARSE_DEPTH"), "{err}");
        // Pathologically deep input must not overflow the stack. Objects
        // recurse through the same guard.
        for open in ["[", "{\"k\":"] {
            let deep = open.repeat(100_000);
            assert!(Json::parse(&deep).is_err(), "accepted bottomless {open:?} nesting");
        }
    }

    #[test]
    fn depth_counts_nesting_not_sibling_containers() {
        // Thousands of siblings at depth 2 stay well under the limit.
        let wide = format!("[{}]", vec!["[]"; 5_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }
}
