//! Chrome-trace event collection behind the [`span!`](crate::span)/
//! [`ScopedTimer`](crate::ScopedTimer) API.
//!
//! When tracing is enabled ([`start`]), every span records a *complete*
//! (`"ph": "X"`) event into a per-thread ring buffer on drop — including
//! drops that happen while a panic unwinds, so a trace always shows the
//! work that ran, not just the work that finished. [`to_chrome_json`]
//! exports the buffers as a Chrome `trace_event` document that loads
//! directly in [perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! `qjo-exec` integrates at two points:
//!
//! * each `par_map` worker runs under a [`worker_scope`], which places its
//!   slices on a stable **virtual thread track** (`worker-1`, `worker-2`,
//!   …) keyed by worker slot rather than by short-lived OS thread, and
//! * each work unit runs under a [`unit_scope`], which both emits a named
//!   slice (`{caller span path} · unit i`) and maintains the per-thread
//!   **unit path** ([`unit_path`]) that the convergence recorder uses to
//!   key series deterministically.
//!
//! Buffers are rings: when a thread's buffer is full the oldest events are
//! overwritten and counted in [`TraceStats::dropped`], so tracing is
//! bounded-memory no matter how long the run is. All bookkeeping is
//! dependency-free and costs one relaxed atomic load per span when
//! tracing is disabled.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default ring capacity per thread (events), used by the experiments
/// driver: ~64k events × ~100 bytes ≈ 6 MiB per active thread worst-case.
pub const DEFAULT_THREAD_CAPACITY: usize = 1 << 16;

/// Virtual thread-id base for `par_map` worker tracks: worker slot `w`
/// records on tid `WORKER_TID_BASE + w`. Raw threads get small ids
/// allocated from 1, so the bands cannot collide in practice.
pub const WORKER_TID_BASE: u32 = 1000;

/// One completed slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slice name (span path, unit label, or stage label).
    pub name: String,
    /// Start, in nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Track id (virtual for `par_map` workers).
    pub tid: u32,
    /// Work-unit index, when the slice is a `par_map` unit.
    pub unit: Option<u64>,
}

#[derive(Debug, Default)]
struct ThreadLog {
    events: Vec<TraceEvent>,
    /// Next overwrite position once `events` reached capacity.
    write_head: usize,
    dropped: u64,
}

struct Shared {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    /// Events currently held across all rings.
    stored: AtomicU64,
    /// High-water mark of `stored`.
    peak: AtomicU64,
    /// Every thread log ever registered; kept alive after thread death so
    /// short-lived worker threads still appear in the export.
    logs: Mutex<Vec<Arc<Mutex<ThreadLog>>>>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(DEFAULT_THREAD_CAPACITY),
        stored: AtomicU64::new(0),
        peak: AtomicU64::new(0),
        logs: Mutex::new(Vec::new()),
    })
}

/// The process-wide trace epoch: all timestamps are relative to the first
/// time anyone asked for it (pinned by [`start`]).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static NEXT_RAW_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL_LOG: RefCell<Option<Arc<Mutex<ThreadLog>>>> = const { RefCell::new(None) };
    /// 0 = not yet assigned; workers override via [`worker_scope`].
    static TID: Cell<u32> = const { Cell::new(0) };
    static UNIT_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn current_tid() -> u32 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_RAW_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Enables collection with the given per-thread ring capacity (clamped to
/// at least 1), clearing any previously buffered events.
pub fn start(capacity_per_thread: usize) {
    let s = shared();
    let _ = epoch();
    s.capacity.store(capacity_per_thread.max(1), Ordering::Relaxed);
    for log in s.logs.lock().expect("no panic while holding the trace log list").iter() {
        let mut log = log.lock().expect("no panic while holding a thread log");
        log.events.clear();
        log.write_head = 0;
        log.dropped = 0;
    }
    s.stored.store(0, Ordering::Relaxed);
    s.peak.store(0, Ordering::Relaxed);
    s.enabled.store(true, Ordering::SeqCst);
}

/// Disables collection; buffered events stay available for export.
pub fn stop() {
    shared().enabled.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being collected.
#[inline]
pub fn is_enabled() -> bool {
    shared().enabled.load(Ordering::Relaxed)
}

/// Records one completed slice (no-op while disabled). Called by
/// [`ScopedTimer`](crate::ScopedTimer), [`unit_scope`], and
/// [`slice_scope`] guards on drop.
pub fn record(name: String, start: Instant, end: Instant, unit: Option<u64>) {
    if !is_enabled() {
        return;
    }
    let ep = epoch();
    let ts_ns = saturating_ns(start.checked_duration_since(ep).unwrap_or_default().as_nanos());
    let dur_ns = saturating_ns(end.checked_duration_since(start).unwrap_or_default().as_nanos());
    let event = TraceEvent { name, ts_ns, dur_ns, tid: current_tid(), unit };

    let s = shared();
    let log = LOCAL_LOG.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let log = Arc::new(Mutex::new(ThreadLog::default()));
            s.logs
                .lock()
                .expect("no panic while holding the trace log list")
                .push(Arc::clone(&log));
            *slot = Some(log);
        }
        Arc::clone(slot.as_ref().expect("just initialised"))
    });
    let mut log = log.lock().expect("no panic while holding a thread log");
    let capacity = s.capacity.load(Ordering::Relaxed);
    if log.events.len() < capacity {
        log.events.push(event);
        let now = s.stored.fetch_add(1, Ordering::Relaxed) + 1;
        s.peak.fetch_max(now, Ordering::Relaxed);
    } else {
        // Ring is full: overwrite the oldest slot.
        if log.write_head >= log.events.len() {
            log.write_head = 0;
        }
        let head = log.write_head;
        log.events[head] = event;
        log.write_head += 1;
        log.dropped += 1;
    }
}

fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// Collection statistics, for `BENCH.json` and capacity tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Events offered since [`start`] (stored + dropped).
    pub recorded: u64,
    /// Events still buffered.
    pub stored: u64,
    /// Events overwritten by ring wrap-around.
    pub dropped: u64,
    /// High-water mark of buffered events across all threads.
    pub peak_occupancy: u64,
}

/// Current collection statistics.
pub fn stats() -> TraceStats {
    let s = shared();
    let dropped: u64 = s
        .logs
        .lock()
        .expect("no panic while holding the trace log list")
        .iter()
        .map(|log| log.lock().expect("no panic while holding a thread log").dropped)
        .sum();
    let stored = s.stored.load(Ordering::Relaxed);
    TraceStats {
        recorded: stored + dropped,
        stored,
        dropped,
        peak_occupancy: s.peak.load(Ordering::Relaxed),
    }
}

/// Copies out every buffered event, ordered by `(tid, ts, dur desc)` so
/// parents precede children on each track.
pub fn snapshot_events() -> Vec<TraceEvent> {
    let s = shared();
    let logs: Vec<Arc<Mutex<ThreadLog>>> =
        s.logs.lock().expect("no panic while holding the trace log list").clone();
    let mut events = Vec::new();
    for log in logs {
        let log = log.lock().expect("no panic while holding a thread log");
        if log.dropped > 0 {
            // Ring has wrapped: logical order starts at the write head.
            events.extend_from_slice(&log.events[log.write_head..]);
            events.extend_from_slice(&log.events[..log.write_head]);
        } else {
            events.extend_from_slice(&log.events);
        }
    }
    events.sort_by(|a, b| {
        (a.tid, a.ts_ns, std::cmp::Reverse(a.dur_ns), &a.name).cmp(&(
            b.tid,
            b.ts_ns,
            std::cmp::Reverse(b.dur_ns),
            &b.name,
        ))
    });
    events
}

fn track_name(tid: u32) -> String {
    if tid > WORKER_TID_BASE {
        format!("worker-{}", tid - WORKER_TID_BASE)
    } else {
        format!("thread-{tid}")
    }
}

/// Exports all buffered events as a Chrome `trace_event` document
/// (`{"traceEvents": [...]}` with `"ph": "X"` complete events and
/// `thread_name` metadata, timestamps in microseconds).
pub fn to_chrome_json() -> Json {
    let events = snapshot_events();
    let tids: BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
    let mut arr = Vec::with_capacity(events.len() + tids.len());
    for tid in tids {
        let mut args = std::collections::BTreeMap::new();
        args.insert("name".to_string(), Json::from(track_name(tid)));
        let mut meta = std::collections::BTreeMap::new();
        meta.insert("ph".to_string(), Json::from("M"));
        meta.insert("name".to_string(), Json::from("thread_name"));
        meta.insert("pid".to_string(), Json::from(0u64));
        meta.insert("tid".to_string(), Json::from(u64::from(tid)));
        meta.insert("args".to_string(), Json::Obj(args));
        arr.push(Json::Obj(meta));
    }
    for e in events {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("ph".to_string(), Json::from("X"));
        obj.insert("cat".to_string(), Json::from("qjo"));
        obj.insert("name".to_string(), Json::from(e.name));
        obj.insert("pid".to_string(), Json::from(0u64));
        obj.insert("tid".to_string(), Json::from(u64::from(e.tid)));
        obj.insert("ts".to_string(), Json::from(e.ts_ns as f64 / 1000.0));
        obj.insert("dur".to_string(), Json::from(e.dur_ns as f64 / 1000.0));
        if let Some(unit) = e.unit {
            let mut args = std::collections::BTreeMap::new();
            args.insert("unit".to_string(), Json::from(unit));
            obj.insert("args".to_string(), Json::Obj(args));
        }
        arr.push(Json::Obj(obj));
    }
    let mut doc = std::collections::BTreeMap::new();
    doc.insert("displayTimeUnit".to_string(), Json::from("ms"));
    doc.insert("traceEvents".to_string(), Json::Arr(arr));
    Json::Obj(doc)
}

/// Writes [`to_chrome_json`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, to_chrome_json().render())
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCheck {
    /// Slices checked (`X` events plus matched `B`/`E` pairs).
    pub events: usize,
    /// Distinct thread tracks.
    pub threads: usize,
    /// Deepest slice nesting seen on any track.
    pub max_depth: usize,
}

/// Validates that `doc` is a well-formed Chrome trace whose slices nest
/// properly per track: every `X` event lies fully inside any enclosing
/// `X` event on the same tid, and `B`/`E` events pair up with matching
/// names. Metadata (`M`) events are ignored.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceCheck, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "document has no traceEvents array".to_string())?;

    // (tid, ts, neg_dur, kind, name); sorting puts longer slices first at
    // equal start times so parents are visited before their children, and
    // `End` before `Begin` so adjacent B/E pairs sharing a timestamp close
    // before the next slice opens.
    #[derive(PartialEq, PartialOrd)]
    enum Kind {
        Complete(f64), // end timestamp
        End,
        Begin,
    }
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64, Kind, String)>> =
        std::collections::BTreeMap::new();

    for (i, event) in events.iter().enumerate() {
        let obj = event.as_obj().ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no \"ph\" phase field"))?;
        if ph == "M" {
            continue;
        }
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?
            .to_string();
        let ts = obj
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}) has no numeric ts"))?;
        let tid = obj.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match ph {
            "X" => {
                let dur = obj
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("X event {i} ({name}) has no numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("X event {i} ({name}) has negative dur {dur}"));
                }
                by_tid.entry(tid).or_default().push((ts, -dur, Kind::Complete(ts + dur), name));
            }
            "B" => by_tid.entry(tid).or_default().push((ts, 0.0, Kind::Begin, name)),
            "E" => by_tid.entry(tid).or_default().push((ts, 0.0, Kind::End, name)),
            other => return Err(format!("event {i} ({name}) has unsupported phase {other:?}")),
        }
    }

    let mut check = TraceCheck { threads: by_tid.len(), ..TraceCheck::default() };
    for (tid, mut track) in by_tid {
        track.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // Complete-event containment stack and begin/end pairing stack.
        let mut open_x: Vec<(f64, String)> = Vec::new(); // (end, name)
        let mut open_be: Vec<String> = Vec::new();
        for (ts, _, kind, name) in track {
            match kind {
                Kind::Complete(end) => {
                    while open_x.last().is_some_and(|(top_end, _)| *top_end <= ts) {
                        open_x.pop();
                    }
                    if let Some((top_end, top_name)) = open_x.last() {
                        if end > *top_end {
                            return Err(format!(
                                "tid {tid}: slice {name:?} [{ts}, {end}] overlaps enclosing \
                                 {top_name:?} ending at {top_end}"
                            ));
                        }
                    }
                    open_x.push((end, name));
                    check.events += 1;
                    check.max_depth = check.max_depth.max(open_x.len() + open_be.len());
                }
                Kind::Begin => {
                    open_be.push(name);
                    check.max_depth = check.max_depth.max(open_x.len() + open_be.len());
                }
                Kind::End => match open_be.pop() {
                    Some(opened) if opened == name => check.events += 1,
                    Some(opened) => {
                        return Err(format!(
                            "tid {tid}: E event {name:?} closes B event {opened:?}"
                        ))
                    }
                    None => return Err(format!("tid {tid}: E event {name:?} has no open B")),
                },
            }
        }
        if let Some(unclosed) = open_be.last() {
            return Err(format!("tid {tid}: B event {unclosed:?} is never closed"));
        }
    }
    Ok(check)
}

// ---------------------------------------------------------------------------
// Scopes: virtual worker tracks, unit paths, and ad-hoc slices.
// ---------------------------------------------------------------------------

/// Pins this thread's events to the virtual track of `par_map` worker
/// slot `worker` (1-based) until the guard drops.
pub struct WorkerScope {
    prev: u32,
}

/// Enters worker slot `worker`'s virtual thread track.
pub fn worker_scope(worker: u32) -> WorkerScope {
    WorkerScope { prev: TID.replace(WORKER_TID_BASE + worker) }
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        TID.set(self.prev);
    }
}

/// Replaces this thread's unit path with `prefix` until the guard drops —
/// used by `par_map` workers to inherit the caller's position in nested
/// parallel maps.
pub struct UnitPrefixScope {
    prev: Vec<u64>,
}

/// The current unit path: one index per enclosing `par_map` unit, empty on
/// the main thread outside any unit.
pub fn unit_path() -> Vec<u64> {
    UNIT_STACK.with(|s| s.borrow().clone())
}

/// The unit path rendered for CSV keys: `-` when empty, else
/// `/`-joined indices (`"3/0"`).
pub fn unit_path_string() -> String {
    let path = unit_path();
    if path.is_empty() {
        "-".to_string()
    } else {
        path.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
    }
}

/// Installs `prefix` as this thread's unit path.
pub fn unit_prefix_scope(prefix: &[u64]) -> UnitPrefixScope {
    UnitPrefixScope { prev: UNIT_STACK.with(|s| s.replace(prefix.to_vec())) }
}

impl Drop for UnitPrefixScope {
    fn drop(&mut self) {
        UNIT_STACK.with(|s| {
            *s.borrow_mut() = std::mem::take(&mut self.prev);
        });
    }
}

/// One `par_map` work unit: pushes `index` onto the unit path and, when
/// tracing, emits a named slice on drop (surviving unwinds).
pub struct UnitScope {
    label: Option<String>,
    start: Instant,
    index: u64,
}

/// Enters work unit `index` of the map labelled `label` (typically the
/// caller's span path).
pub fn unit_scope(label: &str, index: u64) -> UnitScope {
    UNIT_STACK.with(|s| s.borrow_mut().push(index));
    UnitScope {
        label: is_enabled().then(|| format!("{label} · unit {index}")),
        start: Instant::now(),
        index,
    }
}

impl Drop for UnitScope {
    fn drop(&mut self) {
        if let Some(label) = self.label.take() {
            record(label, self.start, Instant::now(), Some(self.index));
        }
        UNIT_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// An ad-hoc named slice (no histogram, no span stack) — used by the
/// experiments driver for per-stage slices with runtime-built names.
pub struct SliceScope {
    name: String,
    start: Instant,
}

/// Starts a slice named `name`; recorded on drop if tracing is enabled.
pub fn slice_scope(name: impl Into<String>) -> SliceScope {
    SliceScope { name: name.into(), start: Instant::now() }
}

impl Drop for SliceScope {
    fn drop(&mut self) {
        record(std::mem::take(&mut self.name), self.start, Instant::now(), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _serial = crate::test_serial();
        start(4);
        // A dedicated thread owns its ring exclusively.
        let tid = std::thread::spawn(|| {
            let t0 = Instant::now();
            for i in 0..10 {
                record(format!("trace-test-ring-{i}"), t0, t0, None);
            }
            current_tid()
        })
        .join()
        .unwrap();
        stop();
        let ours: Vec<TraceEvent> = snapshot_events()
            .into_iter()
            .filter(|e| e.tid == tid && e.name.starts_with("trace-test-ring-"))
            .collect();
        assert_eq!(ours.len(), 4, "{ours:?}");
        // Oldest-first logical order: the last four recorded survive.
        let names: Vec<&str> = ours.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["trace-test-ring-6", "trace-test-ring-7", "trace-test-ring-8", "trace-test-ring-9"]
        );
        assert!(stats().dropped >= 6, "{:?}", stats());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _serial = crate::test_serial();
        start(16);
        stop();
        record("trace-test-disabled".into(), Instant::now(), Instant::now(), None);
        assert!(snapshot_events().iter().all(|e| e.name != "trace-test-disabled"));
    }

    #[test]
    fn spans_survive_unwinding() {
        let _serial = crate::test_serial();
        start(1 << 10);
        let caught = std::panic::catch_unwind(|| {
            let _span = crate::span!("trace-test-panicking-span");
            panic!("trace-test boom");
        });
        stop();
        assert!(caught.is_err());
        assert!(
            snapshot_events().iter().any(|e| e.name == "trace-test-panicking-span"),
            "span dropped during unwind must still be recorded"
        );
    }

    #[test]
    fn export_roundtrips_and_validates() {
        let _serial = crate::test_serial();
        start(1 << 10);
        {
            let _outer = crate::span!("trace-test-outer");
            std::thread::sleep(std::time::Duration::from_micros(50));
            {
                let _inner = crate::span!("trace-test-inner");
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            let _w = worker_scope(7);
            let _p = unit_prefix_scope(&[3]);
            let _unit = unit_scope("trace-test-map", 2);
            assert_eq!(unit_path(), vec![3, 2]);
            assert_eq!(unit_path_string(), "3/2");
        }
        stop();
        let rendered = to_chrome_json().render();
        let parsed = Json::parse(&rendered).expect("exported trace re-parses");
        let check = validate_chrome_trace(&parsed).expect("exported trace nests");
        assert!(check.events >= 3, "{check:?}");
        assert!(check.threads >= 2, "{check:?}");
        assert!(check.max_depth >= 2, "{check:?}");
        let events = snapshot_events();
        let unit = events
            .iter()
            .find(|e| e.name == "trace-test-map · unit 2")
            .expect("unit slice recorded");
        assert_eq!(unit.tid, WORKER_TID_BASE + 7);
        assert_eq!(unit.unit, Some(2));
        // The inner span nests inside the outer one on the same track.
        let outer = events.iter().find(|e| e.name == "trace-test-outer").unwrap();
        let inner = events.iter().find(|e| e.name == "trace-test-outer/trace-test-inner").unwrap();
        assert_eq!(outer.tid, inner.tid);
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[test]
    fn unit_and_prefix_scopes_restore_state() {
        let prev = unit_path();
        {
            let _p = unit_prefix_scope(&[5]);
            {
                let _u = unit_scope("trace-test-nest", 1);
                assert_eq!(unit_path(), vec![5, 1]);
            }
            assert_eq!(unit_path(), vec![5]);
        }
        assert_eq!(unit_path(), prev);
        assert_eq!(unit_path_string(), "-");
    }

    #[test]
    fn validator_rejects_overlapping_slices() {
        let doc = Json::parse(
            r#"{"traceEvents": [
                {"ph": "X", "name": "a", "pid": 0, "tid": 1, "ts": 0, "dur": 10},
                {"ph": "X", "name": "b", "pid": 0, "tid": 1, "ts": 5, "dur": 10}
            ]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("overlap must be rejected");
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn validator_accepts_nested_and_adjacent_slices() {
        let doc = Json::parse(
            r#"{"traceEvents": [
                {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1,
                 "args": {"name": "main"}},
                {"ph": "X", "name": "a", "pid": 0, "tid": 1, "ts": 0, "dur": 10},
                {"ph": "X", "name": "b", "pid": 0, "tid": 1, "ts": 0, "dur": 4},
                {"ph": "X", "name": "c", "pid": 0, "tid": 1, "ts": 4, "dur": 6},
                {"ph": "X", "name": "d", "pid": 0, "tid": 2, "ts": 5, "dur": 10}
            ]}"#,
        )
        .unwrap();
        let check = validate_chrome_trace(&doc).expect("clean trace validates");
        assert_eq!(check.events, 4);
        assert_eq!(check.threads, 2);
        assert_eq!(check.max_depth, 2);
    }

    #[test]
    fn validator_pairs_begin_end_events() {
        let ok = Json::parse(
            r#"{"traceEvents": [
                {"ph": "B", "name": "a", "tid": 1, "ts": 0},
                {"ph": "B", "name": "b", "tid": 1, "ts": 1},
                {"ph": "E", "name": "b", "tid": 1, "ts": 2},
                {"ph": "E", "name": "a", "tid": 1, "ts": 3}
            ]}"#,
        )
        .unwrap();
        assert_eq!(validate_chrome_trace(&ok).unwrap().events, 2);

        for bad in [
            // Crossed pair.
            r#"{"traceEvents": [
                {"ph": "B", "name": "a", "tid": 1, "ts": 0},
                {"ph": "B", "name": "b", "tid": 1, "ts": 1},
                {"ph": "E", "name": "a", "tid": 1, "ts": 2},
                {"ph": "E", "name": "b", "tid": 1, "ts": 3}
            ]}"#,
            // Unclosed begin.
            r#"{"traceEvents": [{"ph": "B", "name": "a", "tid": 1, "ts": 0}]}"#,
            // End with no begin.
            r#"{"traceEvents": [{"ph": "E", "name": "a", "tid": 1, "ts": 0}]}"#,
            // Unsupported phase.
            r#"{"traceEvents": [{"ph": "Q", "name": "a", "tid": 1, "ts": 0}]}"#,
            // Not an object.
            r#"{"traceEvents": [42]}"#,
            // No traceEvents at all.
            r#"{"other": []}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(validate_chrome_trace(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn stats_track_stored_and_peak() {
        let _serial = crate::test_serial();
        start(1 << 10);
        let t0 = Instant::now();
        record("trace-test-stats-1".into(), t0, t0, None);
        record("trace-test-stats-2".into(), t0, t0, None);
        stop();
        let s = stats();
        assert!(s.stored >= 2, "{s:?}");
        assert!(s.peak_occupancy >= 2, "{s:?}");
        assert_eq!(s.recorded, s.stored + s.dropped);
    }
}
