//! Machine-readable run manifests.
//!
//! A [`RunManifest`] is the structured record an experiment run leaves
//! behind (`run_manifest.json`): volatile run metadata (git revision,
//! thread count, wall-clock durations), deterministic per-stage counter
//! deltas, final counter/gauge values, span timings, and a fingerprint of
//! every artifact (CSV) the run wrote.
//!
//! # Drift detection
//!
//! [`diff`] compares the **deterministic** sections of two manifests —
//! stage names and counters, global counters, resilience counters
//! (fault injections and recovery activity), gauges, and artifact
//! row counts / byte sizes / content hashes — and ignores everything
//! timing-dependent (the `run` section, `duration_ms` fields, and span
//! histograms). Two runs of the same code at any thread count therefore
//! diff clean, and CI uses this as its regression gate: a non-empty diff
//! against the committed baseline means a PR changed experiment outputs.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::Snapshot;

/// Current manifest schema version; bump on breaking layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Fingerprint of one artifact (CSV) the run wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// File name relative to the output directory (e.g. `table2.csv`).
    pub name: String,
    /// Data rows (excluding the header).
    pub rows: u64,
    /// Size of the written bytes.
    pub bytes: u64,
    /// `fnv1a64` hex digest of the exact bytes written.
    pub hash: String,
    /// Whether the content is timing-dependent (e.g. a wall-clock
    /// benchmark table): [`diff`] then checks only the row count, not the
    /// hash or size.
    pub volatile: bool,
}

/// One pipeline stage of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (e.g. `table3`).
    pub name: String,
    /// Wall-clock duration (timing-dependent; ignored by [`diff`]).
    pub duration_ms: f64,
    /// Counter increments attributed to this stage.
    pub counters: BTreeMap<String, u64>,
}

/// Span timing summary (timing-dependent; ignored by [`diff`]).
///
/// Percentiles come from the log2-bucketed histogram, resolved to bucket
/// upper bounds (see
/// [`HistogramSnapshot::percentile_ns`](crate::HistogramSnapshot::percentile_ns)),
/// so they over-estimate by at most 2×.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Observations recorded under this span path.
    pub count: u64,
    /// Total milliseconds across observations.
    pub total_ms: f64,
    /// Median observation, in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile observation, in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile observation, in milliseconds.
    pub p99_ms: f64,
}

/// The full record of one experiment run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Volatile run metadata (git rev, threads, totals) — never diffed.
    pub run: BTreeMap<String, Json>,
    /// Stages in execution order.
    pub stages: Vec<StageRecord>,
    /// Final global counter values (excluding the resilience taxonomy).
    pub counters: BTreeMap<String, u64>,
    /// Fault-injection and recovery counters (`fault.*` / `resil.*`),
    /// split out of [`counters`](Self::counters) so chaos activity is
    /// auditable — and drift-gated — as its own section.
    pub resilience: BTreeMap<String, u64>,
    /// Final global gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Span timings by path.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Artifacts written, in emission order.
    pub artifacts: Vec<Artifact>,
    /// Counters whose value is wall-clock-dependent (e.g. attempts under
    /// a time budget): [`diff`] skips them in the global and per-stage
    /// counter sections. Declared by the producer, sorted.
    pub volatile_counters: Vec<String>,
}

impl RunManifest {
    /// Fills the counter/gauge/span sections from a registry snapshot,
    /// routing `fault.*` / `resil.*` counters into the
    /// [`resilience`](Self::resilience) section.
    pub fn set_metrics(&mut self, snapshot: &Snapshot) {
        let (resilience, counters) =
            snapshot.counters.clone().into_iter().partition(|(name, _)| is_resilience(name));
        self.counters = counters;
        self.resilience = resilience;
        self.gauges = snapshot.gauges.clone();
        self.spans = snapshot
            .histograms
            .iter()
            .map(|(path, h)| {
                let summary = SpanSummary {
                    count: h.count,
                    total_ms: h.sum_ns as f64 / 1e6,
                    p50_ms: h.percentile_ms(0.50),
                    p90_ms: h.percentile_ms(0.90),
                    p99_ms: h.percentile_ms(0.99),
                };
                (path.clone(), summary)
            })
            .collect();
    }

    /// The manifest as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("schema_version".to_string(), Json::from(SCHEMA_VERSION));
        root.insert("run".to_string(), Json::Obj(self.run.clone()));
        let stages = self
            .stages
            .iter()
            .map(|stage| {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::from(stage.name.as_str()));
                obj.insert("duration_ms".to_string(), Json::from(round3(stage.duration_ms)));
                obj.insert("counters".to_string(), counters_json(&stage.counters));
                Json::Obj(obj)
            })
            .collect();
        root.insert("stages".to_string(), Json::Arr(stages));
        root.insert("counters".to_string(), counters_json(&self.counters));
        root.insert("resilience".to_string(), counters_json(&self.resilience));
        root.insert(
            "gauges".to_string(),
            Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect()),
        );
        let spans = self
            .spans
            .iter()
            .map(|(path, span)| {
                let mut obj = BTreeMap::new();
                obj.insert("count".to_string(), Json::from(span.count));
                obj.insert("total_ms".to_string(), Json::from(round3(span.total_ms)));
                obj.insert("p50_ms".to_string(), Json::from(round3(span.p50_ms)));
                obj.insert("p90_ms".to_string(), Json::from(round3(span.p90_ms)));
                obj.insert("p99_ms".to_string(), Json::from(round3(span.p99_ms)));
                (path.clone(), Json::Obj(obj))
            })
            .collect();
        root.insert("spans".to_string(), Json::Obj(spans));
        let artifacts = self
            .artifacts
            .iter()
            .map(|a| {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::from(a.name.as_str()));
                obj.insert("rows".to_string(), Json::from(a.rows));
                obj.insert("bytes".to_string(), Json::from(a.bytes));
                obj.insert("hash".to_string(), Json::from(a.hash.as_str()));
                if a.volatile {
                    obj.insert("volatile".to_string(), Json::Bool(true));
                }
                Json::Obj(obj)
            })
            .collect();
        root.insert("artifacts".to_string(), Json::Arr(artifacts));
        root.insert(
            "volatile_counters".to_string(),
            Json::Arr(
                self.volatile_counters.iter().map(|name| Json::from(name.as_str())).collect(),
            ),
        );
        Json::Obj(root)
    }

    /// Renders the manifest as pretty-printed JSON.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a manifest previously written by [`RunManifest::render`].
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("manifest lacks a numeric schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported manifest schema_version {version}"));
        }
        let run = doc.get("run").and_then(Json::as_obj).cloned().unwrap_or_default();
        let stages = doc
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or("manifest lacks a stages array")?
            .iter()
            .map(|stage| {
                Ok(StageRecord {
                    name: stage
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("stage lacks a name")?
                        .to_string(),
                    duration_ms: stage.get("duration_ms").and_then(Json::as_f64).unwrap_or(0.0),
                    counters: parse_counters(stage.get("counters"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let counters = parse_counters(doc.get("counters"))?;
        let resilience = parse_counters(doc.get("resilience"))?;
        let gauges = doc
            .get("gauges")
            .and_then(Json::as_obj)
            .map(|map| {
                map.iter()
                    .map(|(k, v)| {
                        let value =
                            v.as_f64().ok_or_else(|| format!("gauge {k} is not a number"))?;
                        Ok((k.clone(), value))
                    })
                    .collect::<Result<BTreeMap<_, _>, String>>()
            })
            .transpose()?
            .unwrap_or_default();
        let spans = doc
            .get("spans")
            .and_then(Json::as_obj)
            .map(|map| {
                map.iter()
                    .map(|(path, v)| {
                        let summary = SpanSummary {
                            count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
                            total_ms: v.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0),
                            p50_ms: v.get("p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
                            p90_ms: v.get("p90_ms").and_then(Json::as_f64).unwrap_or(0.0),
                            p99_ms: v.get("p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
                        };
                        (path.clone(), summary)
                    })
                    .collect()
            })
            .unwrap_or_default();
        let artifacts = doc
            .get("artifacts")
            .and_then(Json::as_arr)
            .ok_or("manifest lacks an artifacts array")?
            .iter()
            .map(|a| {
                Ok(Artifact {
                    name: a
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("artifact lacks a name")?
                        .to_string(),
                    rows: a.get("rows").and_then(Json::as_u64).ok_or("artifact lacks rows")?,
                    bytes: a.get("bytes").and_then(Json::as_u64).ok_or("artifact lacks bytes")?,
                    hash: a
                        .get("hash")
                        .and_then(Json::as_str)
                        .ok_or("artifact lacks a hash")?
                        .to_string(),
                    volatile: matches!(a.get("volatile"), Some(Json::Bool(true))),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let volatile_counters = doc
            .get("volatile_counters")
            .and_then(Json::as_arr)
            .map(|arr| arr.iter().filter_map(Json::as_str).map(str::to_string).collect())
            .unwrap_or_default();
        Ok(RunManifest {
            run,
            stages,
            counters,
            resilience,
            gauges,
            spans,
            artifacts,
            volatile_counters,
        })
    }
}

/// Whether a counter belongs to the manifest's `resilience` section.
///
/// The resilience taxonomy is prefix-based: `fault.injected.<site>`
/// records injected faults, `resil.<site>.*` records the recovery
/// machinery's reaction (retries, fallbacks, escalations, divergences).
pub fn is_resilience(counter: &str) -> bool {
    counter.starts_with("fault.") || counter.starts_with("resil.")
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn counters_json(counters: &BTreeMap<String, u64>) -> Json {
    Json::Obj(counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect())
}

fn parse_counters(value: Option<&Json>) -> Result<BTreeMap<String, u64>, String> {
    value
        .and_then(Json::as_obj)
        .map(|map| {
            map.iter()
                .map(|(k, v)| {
                    let value = v.as_u64().ok_or_else(|| format!("counter {k} is not a u64"))?;
                    Ok((k.clone(), value))
                })
                .collect::<Result<BTreeMap<_, _>, String>>()
        })
        .transpose()
        .map(Option::unwrap_or_default)
}

/// One divergence found by [`diff_entries`]: which section and key
/// drifted, the expected (baseline) and actual (current) values, and the
/// one-line description [`diff`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftEntry {
    /// Manifest section (`stages`, `stage <name>`, `counters`,
    /// `resilience`, `gauges`, or `artifacts`).
    pub section: String,
    /// Key within the section (counter/gauge/artifact name).
    pub key: String,
    /// Baseline value, `(absent)` when the key only exists in `current`.
    pub expected: String,
    /// Current value, `(absent)` when the key only exists in `baseline`.
    pub actual: String,
    /// Human-readable one-liner.
    pub detail: String,
}

const ABSENT: &str = "(absent)";

/// Compares the deterministic sections of two manifests, returning one
/// human-readable line per divergence (empty = no drift).
///
/// Ignored as timing-dependent: the `run` section, every `duration_ms`,
/// the `spans` section, and any counter either manifest lists in
/// `volatile_counters`.
pub fn diff(baseline: &RunManifest, current: &RunManifest) -> Vec<String> {
    diff_entries(baseline, current).into_iter().map(|entry| entry.detail).collect()
}

/// [`diff`] with structured per-key expected/actual values, for table
/// rendering via [`render_drift_table`].
pub fn diff_entries(baseline: &RunManifest, current: &RunManifest) -> Vec<DriftEntry> {
    let mut drift = Vec::new();
    let volatile: std::collections::BTreeSet<&str> = baseline
        .volatile_counters
        .iter()
        .chain(&current.volatile_counters)
        .map(String::as_str)
        .collect();

    let baseline_stages: Vec<&str> = baseline.stages.iter().map(|s| s.name.as_str()).collect();
    let current_stages: Vec<&str> = current.stages.iter().map(|s| s.name.as_str()).collect();
    if baseline_stages != current_stages {
        drift.push(DriftEntry {
            section: "stages".to_string(),
            key: "(order)".to_string(),
            expected: format!("{baseline_stages:?}"),
            actual: format!("{current_stages:?}"),
            detail: format!("stages changed: {baseline_stages:?} -> {current_stages:?}"),
        });
    } else {
        for (b, c) in baseline.stages.iter().zip(&current.stages) {
            diff_counters(
                &mut drift,
                &format!("stage {}", b.name),
                &b.counters,
                &c.counters,
                &volatile,
            );
        }
    }

    diff_counters(&mut drift, "counters", &baseline.counters, &current.counters, &volatile);
    diff_counters(&mut drift, "resilience", &baseline.resilience, &current.resilience, &volatile);

    for (name, &b) in &baseline.gauges {
        match current.gauges.get(name) {
            None => drift.push(DriftEntry {
                section: "gauges".to_string(),
                key: name.clone(),
                expected: format!("{b}"),
                actual: ABSENT.to_string(),
                detail: format!("gauge {name} disappeared (was {b})"),
            }),
            Some(&c) if c != b => drift.push(DriftEntry {
                section: "gauges".to_string(),
                key: name.clone(),
                expected: format!("{b}"),
                actual: format!("{c}"),
                detail: format!("gauge {name}: {b} -> {c}"),
            }),
            Some(_) => {}
        }
    }
    for (name, &c) in &current.gauges {
        if !baseline.gauges.contains_key(name) {
            drift.push(DriftEntry {
                section: "gauges".to_string(),
                key: name.clone(),
                expected: ABSENT.to_string(),
                actual: format!("{c}"),
                detail: format!("gauge {name} appeared"),
            });
        }
    }

    let describe = |a: &Artifact| format!("hash {} ({} rows, {} bytes)", a.hash, a.rows, a.bytes);
    let baseline_artifacts: BTreeMap<&str, &Artifact> =
        baseline.artifacts.iter().map(|a| (a.name.as_str(), a)).collect();
    let current_artifacts: BTreeMap<&str, &Artifact> =
        current.artifacts.iter().map(|a| (a.name.as_str(), a)).collect();
    for (name, b) in &baseline_artifacts {
        match current_artifacts.get(name) {
            None => drift.push(DriftEntry {
                section: "artifacts".to_string(),
                key: (*name).to_string(),
                expected: describe(b),
                actual: ABSENT.to_string(),
                detail: format!("artifact {name} disappeared"),
            }),
            // Timing-dependent artifacts (benchmark tables) keep a stable
            // shape but not stable bytes: check the row count only.
            Some(c) if b.volatile || c.volatile => {
                if c.rows != b.rows {
                    drift.push(DriftEntry {
                        section: "artifacts".to_string(),
                        key: (*name).to_string(),
                        expected: format!("{} rows", b.rows),
                        actual: format!("{} rows", c.rows),
                        detail: format!(
                            "volatile artifact {name} changed shape: {} -> {} rows",
                            b.rows, c.rows
                        ),
                    });
                }
            }
            Some(c) if c.hash != b.hash => drift.push(DriftEntry {
                section: "artifacts".to_string(),
                key: (*name).to_string(),
                expected: describe(b),
                actual: describe(c),
                detail: format!(
                    "artifact {name} content drifted: hash {} -> {} ({} -> {} rows, {} -> {} \
                     bytes)",
                    b.hash, c.hash, b.rows, c.rows, b.bytes, c.bytes
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, c) in &current_artifacts {
        if !baseline_artifacts.contains_key(name) {
            drift.push(DriftEntry {
                section: "artifacts".to_string(),
                key: (*name).to_string(),
                expected: ABSENT.to_string(),
                actual: describe(c),
                detail: format!("artifact {name} appeared"),
            });
        }
    }

    drift
}

fn diff_counters(
    drift: &mut Vec<DriftEntry>,
    context: &str,
    baseline: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    volatile: &std::collections::BTreeSet<&str>,
) {
    for (name, &b) in baseline {
        if volatile.contains(name.as_str()) {
            continue;
        }
        match current.get(name) {
            None => drift.push(DriftEntry {
                section: context.to_string(),
                key: name.clone(),
                expected: format!("{b}"),
                actual: ABSENT.to_string(),
                detail: format!("{context}: counter {name} disappeared (was {b})"),
            }),
            Some(&c) if c != b => drift.push(DriftEntry {
                section: context.to_string(),
                key: name.clone(),
                expected: format!("{b}"),
                actual: format!("{c}"),
                detail: format!("{context}: counter {name}: {b} -> {c}"),
            }),
            Some(_) => {}
        }
    }
    for (name, &c) in current {
        if !baseline.contains_key(name) && !volatile.contains(name.as_str()) {
            drift.push(DriftEntry {
                section: context.to_string(),
                key: name.clone(),
                expected: ABSENT.to_string(),
                actual: format!("{c}"),
                detail: format!("{context}: counter {name} appeared"),
            });
        }
    }
}

/// Renders drift entries as a column-aligned expected-vs-actual table, one
/// row per key, so CI failures are diagnosable from the log alone.
/// Returns an empty string for no entries.
pub fn render_drift_table(entries: &[DriftEntry]) -> String {
    if entries.is_empty() {
        return String::new();
    }
    let header = ["section", "key", "expected", "actual"];
    let rows: Vec<[&str; 4]> = entries
        .iter()
        .map(|e| [e.section.as_str(), e.key.as_str(), e.expected.as_str(), e.actual.as_str()])
        .collect();
    let mut widths: [usize; 4] = header.map(str::len);
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, row: &[&str; 4]| {
        for (c, cell) in row.iter().enumerate() {
            let pad = if c + 1 == row.len() { 0 } else { widths[c] + 2 - cell.len() };
            out.push_str(cell);
            for _ in 0..pad {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    write_row(&mut out, &header);
    let total: usize = widths.iter().map(|w| w + 2).sum::<usize>() - 2;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in &rows {
        write_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> RunManifest {
        let mut manifest = RunManifest::default();
        manifest.run.insert("git_rev".to_string(), Json::from("abc123"));
        manifest.run.insert("threads".to_string(), Json::from(8u64));
        manifest.stages.push(StageRecord {
            name: "table1".to_string(),
            duration_ms: 12.345678,
            counters: BTreeMap::from([("sa.restarts".to_string(), 40u64)]),
        });
        manifest.counters.insert("sa.restarts".to_string(), 40);
        manifest.gauges.insert("anneal.chain_break_fraction".to_string(), 0.125);
        manifest.spans.insert(
            "experiments/table1".to_string(),
            SpanSummary { count: 1, total_ms: 12.3, p50_ms: 12.0, p90_ms: 12.0, p99_ms: 12.0 },
        );
        manifest.artifacts.push(Artifact {
            name: "table1.csv".to_string(),
            rows: 4,
            bytes: 210,
            hash: crate::fnv1a64_hex(b"csv-bytes"),
            volatile: false,
        });
        manifest
    }

    #[test]
    fn renders_and_reparses_losslessly() {
        let manifest = sample_manifest();
        let parsed = RunManifest::parse(&manifest.render()).unwrap();
        // duration_ms is rounded to 3 decimals on render.
        assert_eq!(parsed.stages[0].duration_ms, 12.346);
        assert_eq!(parsed.counters, manifest.counters);
        assert_eq!(parsed.gauges, manifest.gauges);
        assert_eq!(parsed.artifacts, manifest.artifacts);
        assert_eq!(parsed.run["git_rev"], Json::from("abc123"));
        assert_eq!(parsed.spans, manifest.spans, "percentiles survive the round-trip");
    }

    #[test]
    fn diff_ignores_durations_and_run_metadata() {
        let baseline = sample_manifest();
        let mut current = sample_manifest();
        current.run.insert("git_rev".to_string(), Json::from("def456"));
        current.run.insert("threads".to_string(), Json::from(1u64));
        current.stages[0].duration_ms = 99999.0;
        current.spans.get_mut("experiments/table1").unwrap().total_ms = 1e9;
        assert_eq!(diff(&baseline, &current), Vec::<String>::new());
    }

    #[test]
    fn diff_reports_counter_and_artifact_drift() {
        let baseline = sample_manifest();
        let mut current = sample_manifest();
        current.counters.insert("sa.restarts".to_string(), 41);
        current.stages[0].counters.insert("sa.restarts".to_string(), 41);
        current.artifacts[0].hash = "0000000000000000".to_string();
        let drift = diff(&baseline, &current);
        assert_eq!(drift.len(), 3, "{drift:?}");
        assert!(drift.iter().any(|d| d.contains("stage table1")));
        assert!(drift.iter().any(|d| d.contains("counters: counter sa.restarts: 40 -> 41")));
        assert!(drift.iter().any(|d| d.contains("artifact table1.csv content drifted")));
    }

    #[test]
    fn diff_reports_added_and_removed_artifacts_and_stages() {
        let baseline = sample_manifest();
        let mut current = sample_manifest();
        current.stages.push(StageRecord {
            name: "fig9".to_string(),
            duration_ms: 0.0,
            counters: BTreeMap::new(),
        });
        current.artifacts.clear();
        let drift = diff(&baseline, &current);
        assert!(drift.iter().any(|d| d.contains("stages changed")));
        assert!(drift.iter().any(|d| d.contains("artifact table1.csv disappeared")));
    }

    #[test]
    fn volatile_counters_are_skipped_in_both_sections() {
        let mut baseline = sample_manifest();
        baseline.counters.insert("embed.tries".to_string(), 25);
        baseline.stages[0].counters.insert("embed.tries".to_string(), 25);
        baseline.volatile_counters = vec!["embed.tries".to_string()];
        // Round-trips through JSON.
        let mut current = RunManifest::parse(&baseline.render()).unwrap();
        assert_eq!(current.volatile_counters, baseline.volatile_counters);
        current.counters.insert("embed.tries".to_string(), 24);
        current.stages[0].counters.insert("embed.tries".to_string(), 24);
        assert_eq!(diff(&baseline, &current), Vec::<String>::new());
        // A volatile counter appearing only on one side is not drift either.
        current.counters.remove("embed.tries");
        current.stages[0].counters.remove("embed.tries");
        assert_eq!(diff(&baseline, &current), Vec::<String>::new());
        // Non-volatile counters still drift.
        current.counters.insert("sa.restarts".to_string(), 41);
        assert_eq!(diff(&baseline, &current).len(), 1);
    }

    #[test]
    fn volatile_artifacts_diff_on_shape_only() {
        let mut baseline = sample_manifest();
        baseline.artifacts[0].volatile = true;
        // Round-trips through JSON (the flag is only serialised when set).
        let mut current = RunManifest::parse(&baseline.render()).unwrap();
        assert!(current.artifacts[0].volatile);
        current.artifacts[0].hash = "0000000000000000".to_string();
        current.artifacts[0].bytes += 17;
        assert_eq!(diff(&baseline, &current), Vec::<String>::new());
        current.artifacts[0].rows += 1;
        let drift = diff(&baseline, &current);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("changed shape"), "{drift:?}");
    }

    #[test]
    fn set_metrics_splits_resilience_counters_out() {
        let reg = crate::Registry::new();
        reg.counter("sa.restarts").add(3);
        reg.counter("fault.injected.anneal.embed").add(2);
        reg.counter("resil.anneal.embed.fallback").add(1);
        let mut manifest = RunManifest::default();
        manifest.set_metrics(&reg.snapshot());
        assert_eq!(manifest.counters, BTreeMap::from([("sa.restarts".to_string(), 3)]));
        assert_eq!(
            manifest.resilience,
            BTreeMap::from([
                ("fault.injected.anneal.embed".to_string(), 2),
                ("resil.anneal.embed.fallback".to_string(), 1),
            ])
        );
    }

    #[test]
    fn resilience_section_round_trips_and_diffs() {
        let mut baseline = sample_manifest();
        baseline.resilience.insert("fault.injected.io.write".to_string(), 4);
        baseline.resilience.insert("resil.io.write.recovered".to_string(), 4);
        let mut current = RunManifest::parse(&baseline.render()).unwrap();
        assert_eq!(current.resilience, baseline.resilience);
        assert_eq!(diff(&baseline, &current), Vec::<String>::new());
        // A chaos plan firing differently is drift, same as any counter.
        current.resilience.insert("resil.io.write.recovered".to_string(), 3);
        current.resilience.insert("resil.io.write.exhausted".to_string(), 1);
        let drift = diff(&baseline, &current);
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(drift
            .iter()
            .any(|d| d.contains("resilience: counter resil.io.write.recovered: 4 -> 3")));
        assert!(drift.iter().any(|d| d.contains("resilience: counter resil.io.write.exhausted")));
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let text =
            sample_manifest().render().replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(RunManifest::parse(&text).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn set_metrics_copies_a_snapshot() {
        let reg = crate::Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(2.5);
        reg.histogram("h").record_ns(2_000_000);
        let mut manifest = RunManifest::default();
        manifest.set_metrics(&reg.snapshot());
        assert_eq!(manifest.counters["c"], 7);
        assert_eq!(manifest.gauges["g"], 2.5);
        assert_eq!(manifest.spans["h"].count, 1);
        assert_eq!(manifest.spans["h"].total_ms, 2.0);
        // 2 ms lands in bucket 21 ([2^20, 2^21) ns): upper bound 2^21 - 1.
        let expected = ((1u64 << 21) - 1) as f64 / 1e6;
        assert_eq!(manifest.spans["h"].p50_ms, expected);
        assert_eq!(manifest.spans["h"].p99_ms, expected);
    }

    #[test]
    fn diff_entries_carry_expected_and_actual_values() {
        let baseline = sample_manifest();
        let mut current = sample_manifest();
        current.counters.insert("sa.restarts".to_string(), 41);
        current.gauges.remove("anneal.chain_break_fraction");
        current.artifacts[0].hash = "0000000000000000".to_string();
        let entries = diff_entries(&baseline, &current);
        assert_eq!(entries.len(), 3, "{entries:?}");

        let counter = entries.iter().find(|e| e.section == "counters").unwrap();
        assert_eq!(counter.key, "sa.restarts");
        assert_eq!(counter.expected, "40");
        assert_eq!(counter.actual, "41");

        let gauge = entries.iter().find(|e| e.section == "gauges").unwrap();
        assert_eq!(gauge.expected, "0.125");
        assert_eq!(gauge.actual, "(absent)");

        let artifact = entries.iter().find(|e| e.section == "artifacts").unwrap();
        assert_eq!(artifact.key, "table1.csv");
        assert!(artifact.expected.contains("4 rows"), "{artifact:?}");
        assert!(artifact.actual.contains("hash 0000000000000000"), "{artifact:?}");

        // The string diff stays in lockstep with the entries.
        let lines = diff(&baseline, &current);
        assert_eq!(lines, entries.iter().map(|e| e.detail.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn drift_table_renders_aligned_columns() {
        let baseline = sample_manifest();
        let mut current = sample_manifest();
        current.counters.insert("sa.restarts".to_string(), 41);
        current.counters.insert("sqa.sweeps-with-a-long-name".to_string(), 7);
        let entries = diff_entries(&baseline, &current);
        let table = render_drift_table(&entries);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + entries.len(), "{table}");
        assert!(lines[0].starts_with("section"), "{table}");
        assert!(lines[1].chars().all(|c| c == '-'), "{table}");
        // Every data row starts its "expected" column at the same offset.
        let offset = lines[0].find("expected").unwrap();
        assert_eq!(&lines[2][offset..offset + 2], "40");
        assert_eq!(&lines[3][offset..offset + 8], "(absent)");
        // No drift renders as nothing rather than an empty table.
        assert_eq!(render_drift_table(&[]), "");
    }
}
