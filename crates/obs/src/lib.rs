//! Observability for the qjo workspace.
//!
//! The pipeline (formulate → QUBO → transpile/anneal → sample → decode) is
//! instrumented with three metric kinds, all held in a process-global,
//! thread-safe [`Registry`]:
//!
//! * **Counters** — monotonically increasing `u64`s (restarts run, reads
//!   taken, trajectories simulated, SWAPs inserted, …).
//! * **Gauges** — last-written `f64`s for quantities that are levels, not
//!   totals (chain-break fraction of the most recent job, …).
//! * **Histograms** — log-bucketed (powers of two of nanoseconds) duration
//!   distributions, fed by [`ScopedTimer`]/[`span!`].
//!
//! # Determinism
//!
//! All instrumented code in this workspace runs its Monte-Carlo work units
//! through `qjo-exec`'s order-preserving `par_map`, and every counter is
//! incremented with a **commutative** merge (an atomic add of a per-unit
//! total). The final counter values therefore depend only on the set of
//! work units executed — never on thread count or scheduling — so a run
//! manifest built from a [`Snapshot`] is identical at any `Parallelism`
//! setting, apart from wall-clock duration fields. Gauges are only written
//! at deterministic reduction points (after a `par_map` returns), which
//! preserves the same property.
//!
//! # Overhead
//!
//! Instrumentation is deliberately coarse-grained: one span per pipeline
//! pass and one counter add per restart/read/trajectory (bulk-added, e.g.
//! `sweeps × 1` per restart rather than `1 × sweeps`). The [`counter!`]
//! macro caches the registry handle in a `static`, so a hot call site
//! costs one relaxed atomic add. Measured overhead on the full
//! `experiments all` sweep is well under the 2% budget.
//!
//! ```
//! use qjo_obs::counter;
//!
//! {
//!     let _span = qjo_obs::span!("example.outer");
//!     counter!("example.widgets").add(3);
//! }
//! let snap = qjo_obs::global().snapshot();
//! assert!(snap.counters["example.widgets"] >= 3);
//! assert!(snap.histograms["example.outer"].count >= 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod convergence;
pub mod json;
pub mod log;
pub mod manifest;
pub mod trace;

/// Number of log2 buckets in a duration histogram: bucket `b` counts
/// durations with `floor(log2(ns)) + 1 == b` (bucket 0 holds exact zeros),
/// so the full `u64` nanosecond range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter handle.
///
/// Cheap to clone; all clones share the underlying atomic.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins `f64` gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Lock-free log-bucketed duration histogram.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
        }
    }

    /// Index of the bucket a duration of `ns` nanoseconds falls into.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        (64 - ns.leading_zeros()) as usize
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Total nanoseconds across all observations.
    pub sum_ns: u64,
    /// Per-log2-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) in nanoseconds, resolved to the
    /// **upper bound** of the log2 bucket holding that observation — an
    /// over-estimate by at most 2×, which is the histogram's resolution.
    /// Returns 0 when the histogram is empty.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bucket, &observations) in self.buckets.iter().enumerate() {
            cumulative += observations;
            if cumulative >= target {
                return match bucket {
                    0 => 0,
                    64 => u64::MAX,
                    b => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }

    /// [`Self::percentile_ns`] in milliseconds.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile_ns(q) as f64 / 1e6
    }
}

/// A thread-safe metrics registry.
///
/// Use [`global`] for the process-wide instance the [`counter!`],
/// [`gauge!`], and [`span!`] macros feed; constructing private instances
/// is mainly useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("no panic while holding the counter map");
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Returns (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("no panic while holding the gauge map");
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
        map.insert(name.to_string(), g.clone());
        g
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("no panic while holding the histogram map");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// A consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("no panic while holding the counter map")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("no panic while holding the gauge map")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("no panic while holding the histogram map")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by span path.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter increments since `earlier` (names absent from `earlier`
    /// count from zero; zero deltas are omitted).
    pub fn counter_deltas_since(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(name, &now)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (now > before).then(|| (name.clone(), now - before))
            })
            .collect()
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for [`global`]`().counter(name)`. Prefer the [`counter!`]
/// macro on hot paths — it caches the handle in a `static`.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Shorthand for [`global`]`().gauge(name)`.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// This thread's current `outer/inner` span path (empty outside any
/// span). `qjo-exec` uses it to label `par_map` unit slices after the
/// span that launched the map.
pub fn current_span_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("/"))
}

/// RAII wall-clock timer: records the elapsed time into the global
/// registry's histogram for this span's path when dropped.
///
/// Spans nest per thread: a `ScopedTimer` created while another is alive
/// on the same thread records under `"outer/inner"`. Worker threads (e.g.
/// inside `par_map`) start at the root — cross-thread parenting is
/// intentionally not tracked, so instrument at the call site that owns the
/// wall-clock story.
#[derive(Debug)]
pub struct ScopedTimer {
    path: String,
    start: Instant,
}

impl ScopedTimer {
    /// Starts a span named `name` (a `'static` name keeps the per-thread
    /// stack allocation-free).
    pub fn new(name: &'static str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        ScopedTimer { path, start: Instant::now() }
    }

    /// The full `outer/inner` path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let end = Instant::now();
        let ns = u64::try_from((end - self.start).as_nanos()).unwrap_or(u64::MAX);
        global().histogram(&self.path).record_ns(ns);
        // Record-on-drop: this also runs while a panic unwinds, so traces
        // show spans that died, not just spans that finished.
        if trace::is_enabled() {
            trace::record(std::mem::take(&mut self.path), self.start, end, None);
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Starts a [`ScopedTimer`]; bind it to keep the span open:
/// `let _span = qjo_obs::span!("transpile.route");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::ScopedTimer::new($name)
    };
}

/// Returns the global counter `$name`, caching the handle in a `static`
/// so repeated calls cost one relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Returns the global gauge `$name`, caching the handle in a `static`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// 64-bit FNV-1a hash of `bytes` — the workspace's dependency-free content
/// hash for run-manifest artifact fingerprints.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv1a64`] as the fixed-width hex string stored in manifests.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Serialises tests that mutate process-global telemetry state (trace
/// collector, convergence recorder, log level): the test binary runs
/// tests on concurrent threads.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counters["x"], 3);
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let reg = Registry::new();
        reg.gauge("g").set(0.25);
        reg.gauge("g").set(0.75);
        assert_eq!(reg.snapshot().gauges["g"], 0.75);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        let h = Histogram::new();
        h.record_ns(0);
        h.record_ns(3);
        h.record_ns(3);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_ns, 6);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.mean_ms(), 6.0 / 3.0 / 1e6);
    }

    #[test]
    fn percentiles_resolve_to_bucket_upper_bounds() {
        let h = Histogram::new();
        // Buckets: 1 → [1,1]; 2,3 → [2,3]; 4 → [4,7].
        for ns in [1, 2, 3, 4] {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        // Rank ceil(0.25·4) = 1 lands in bucket 1 (upper bound 1).
        assert_eq!(snap.percentile_ns(0.25), 1);
        // Rank 2 and 3 land in bucket 2 (upper bound 3).
        assert_eq!(snap.percentile_ns(0.5), 3);
        assert_eq!(snap.percentile_ns(0.75), 3);
        // Ranks beyond land in bucket 3 (upper bound 7).
        assert_eq!(snap.percentile_ns(0.9), 7);
        assert_eq!(snap.percentile_ns(1.0), 7);
        assert_eq!(snap.percentile_ms(1.0), 7.0 / 1e6);
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile_ns(0.5), 0, "empty histogram");
        h.record_ns(0);
        assert_eq!(h.snapshot().percentile_ns(0.5), 0, "zero bucket");
        h.record_ns(u64::MAX);
        assert_eq!(h.snapshot().percentile_ns(1.0), u64::MAX, "top bucket");
        // A tiny q still resolves to the first occupied bucket.
        assert_eq!(h.snapshot().percentile_ns(1e-9), 0);
    }

    #[test]
    fn current_span_path_tracks_the_stack() {
        assert_eq!(current_span_path(), "");
        let _outer = ScopedTimer::new("obs-test-path-outer");
        assert_eq!(current_span_path(), "obs-test-path-outer");
        {
            let _inner = ScopedTimer::new("obs-test-path-inner");
            assert_eq!(current_span_path(), "obs-test-path-outer/obs-test-path-inner");
        }
        assert_eq!(current_span_path(), "obs-test-path-outer");
    }

    #[test]
    fn counter_totals_are_thread_order_independent() {
        // The determinism contract: concurrent commutative adds reach the
        // same total as any sequential interleaving.
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = reg.counter("total");
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.add(t + 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("total").get(), 1000 * (1..=8).sum::<u64>());
    }

    #[test]
    fn snapshot_deltas_subtract_earlier_values() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        let before = reg.snapshot();
        reg.counter("a").add(2);
        reg.counter("b").incr();
        let deltas = reg.snapshot().counter_deltas_since(&before);
        assert_eq!(deltas["a"], 2);
        assert_eq!(deltas["b"], 1);
        assert!(!deltas.contains_key("c"));
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        {
            let outer = ScopedTimer::new("obs-test-outer");
            assert_eq!(outer.path(), "obs-test-outer");
            {
                let inner = ScopedTimer::new("obs-test-inner");
                assert_eq!(inner.path(), "obs-test-outer/obs-test-inner");
            }
        }
        let snap = global().snapshot();
        assert!(snap.histograms["obs-test-outer"].count >= 1);
        assert!(snap.histograms["obs-test-outer/obs-test-inner"].count >= 1);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a64_hex(b""), "cbf29ce484222325");
    }

    #[test]
    fn macros_feed_the_global_registry() {
        counter!("obs-test-macro-counter").add(4);
        gauge!("obs-test-macro-gauge").set(1.5);
        let snap = global().snapshot();
        assert!(snap.counters["obs-test-macro-counter"] >= 4);
        assert_eq!(snap.gauges["obs-test-macro-gauge"], 1.5);
    }
}
