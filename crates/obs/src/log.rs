//! Leveled stderr logging gated by the `QJO_LOG` environment variable.
//!
//! Library crates in this workspace must never write to stdout
//! unconditionally: diagnostics go through [`error!`](crate::error),
//! [`warn!`](crate::warn), [`info!`](crate::info), [`debug!`](crate::debug),
//! or [`trace!`](crate::trace!), which write to **stderr** and are filtered
//! by the process-wide maximum level. `QJO_LOG` accepts `off`, `error`,
//! `warn`, `info`, `debug`, or `trace` (case-insensitive); the default is
//! `info`.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from [`Level::Error`] (always shown unless `off`)
/// to [`Level::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// Progress and results (the default).
    Info = 3,
    /// Per-iteration diagnostics (replaces ad-hoc `QJO_*_DEBUG` vars).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as accepted by `QJO_LOG`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `QJO_LOG` value; `None` for unrecognised strings.
    /// `"off"` parses as `Some(None)` — valid, but no level passes.
    fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// 0 = unset (read `QJO_LOG` lazily), 1 = off, `level + 1` otherwise.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
const OFF: u8 = 1;

fn level_from_env() -> u8 {
    let parsed = std::env::var("QJO_LOG").ok().and_then(|v| Level::parse(&v));
    match parsed {
        Some(None) => OFF,
        Some(Some(level)) => level as u8 + 1,
        None => Level::Info as u8 + 1,
    }
}

fn max_level_raw() -> u8 {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => {
            let resolved = level_from_env();
            // Racing initialisers compute the same value; either store wins.
            MAX_LEVEL.store(resolved, Ordering::Relaxed);
            resolved
        }
        v => v,
    }
}

/// The current maximum level; `None` means logging is off.
pub fn max_level() -> Option<Level> {
    match max_level_raw() {
        2 => Some(Level::Error),
        3 => Some(Level::Warn),
        4 => Some(Level::Info),
        5 => Some(Level::Debug),
        6 => Some(Level::Trace),
        _ => None,
    }
}

/// Overrides the `QJO_LOG`-derived maximum level (`None` = off); mainly
/// for tests and embedding applications.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(OFF, |l| l as u8 + 1), Ordering::Relaxed);
}

/// Applies a `QJO_LOG`-style spec (`"off"`, `"error"`, …, `"trace"`)
/// immediately, bypassing the first-read cache.
///
/// The level is cached after the first `enabled()`/`log()` call, so a
/// test that does `std::env::set_var("QJO_LOG", …)` mid-process silently
/// no-ops. Call this instead; restore with [`set_max_level`] afterwards.
///
/// # Errors
/// Returns the offending spec for strings `QJO_LOG` would not accept.
pub fn set_level_for_tests(spec: &str) -> Result<(), String> {
    match Level::parse(spec) {
        Some(level) => {
            set_max_level(level);
            Ok(())
        }
        None => Err(format!("unrecognised log level {spec:?}")),
    }
}

/// Whether a record at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) < max_level_raw()
}

/// Emits one record to stderr (used via the level macros, not directly).
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    // Single write_all so concurrent records do not interleave mid-line.
    let line = format!("[{:5} {target}] {args}\n", level.name());
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Trace, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_from_error_to_trace() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_accepts_names_case_insensitively() {
        assert_eq!(Level::parse("TRACE"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("Warn"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("warning"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn set_max_level_gates_enabled() {
        // Other tests share the process-wide level: serialise and restore.
        let _serial = crate::test_serial();
        let saved = max_level();
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        set_max_level(saved);
    }

    #[test]
    fn env_is_cached_but_test_override_applies_immediately() {
        let _serial = crate::test_serial();
        let saved = max_level();

        // Force the first read so the cache is populated, then change the
        // env var: the cached level must win (this is the regression —
        // mid-process env changes silently no-op).
        let cached = max_level();
        std::env::set_var("QJO_LOG", if cached == Some(Level::Trace) { "error" } else { "trace" });
        assert_eq!(max_level(), cached, "env changes after the first read are ignored");

        // The test-visible override bypasses the cache.
        set_level_for_tests("trace").expect("valid spec");
        assert_eq!(max_level(), Some(Level::Trace));
        assert!(enabled(Level::Trace));
        set_level_for_tests("off").expect("off is a valid spec");
        assert_eq!(max_level(), None);

        let err = set_level_for_tests("verbose").expect_err("invalid spec");
        assert!(err.contains("verbose"), "{err}");
        assert_eq!(max_level(), None, "a rejected spec leaves the level unchanged");

        std::env::remove_var("QJO_LOG");
        set_max_level(saved);
    }
}
