//! Deterministic convergence telemetry for solvers and optimisers.
//!
//! Solvers emit per-iteration series (energy vs. sweep, acceptance rates,
//! chain-break fractions, optimiser objective trajectories, …) into a
//! process-global recorder. Everything about a drained series is a pure
//! function of the work performed — *never* of wall clock or thread
//! scheduling — so the exported `convergence_*.csv` artifacts are
//! byte-identical at any `QJO_THREADS` setting and can sit behind the run
//! manifest's drift gate:
//!
//! * series are keyed by `(group, phase, name, unit path, instance)`,
//!   where the unit path comes from [`trace::unit_path`] (the enclosing
//!   `par_map` unit indices) and `instance` counts same-key creations,
//!   which happen in program order within a unit;
//! * downsampling is a fixed stride on the producer's *step* number
//!   (`step % stride == 0`), not on time or buffer pressure;
//! * values are recorded as `f64` and rendered with Rust's shortest
//!   round-trip `Display`, which is deterministic.
//!
//! When the recorder is inactive (the default), [`series`] returns an
//! inert handle and the producer pays one relaxed atomic load.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::trace;

/// Default downsampling stride used by the experiments driver.
pub const DEFAULT_STRIDE: u64 = 4;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    group: String,
    phase: String,
    name: String,
    unit: Vec<u64>,
    instance: u64,
}

#[derive(Debug, Default)]
struct SeriesData {
    points: Vec<(u64, f64)>,
}

#[derive(Debug, Default)]
struct RecorderState {
    default_stride: u64,
    phase: String,
    /// Next instance number per `(group, phase, name, unit)`.
    instances: BTreeMap<(String, String, String, Vec<u64>), u64>,
    series: BTreeMap<SeriesKey, Arc<Mutex<SeriesData>>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<RecorderState> {
    static STATE: OnceLock<Mutex<RecorderState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(RecorderState::default()))
}

/// Enables recording with the given default stride (clamped to at least
/// 1), discarding any previously recorded series.
pub fn start(default_stride: u64) {
    let mut s = state().lock().expect("no panic while holding the recorder state");
    s.default_stride = default_stride.max(1);
    s.phase.clear();
    s.instances.clear();
    s.series.clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables recording; already-created handles become inert on their next
/// stride check only if re-created, so stop between runs, not mid-solver.
pub fn stop() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is accepting new series.
#[inline]
pub fn is_active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Names the current phase (experiment stage); stamped into every series
/// created afterwards.
pub fn set_phase(phase: &str) {
    let mut s = state().lock().expect("no panic while holding the recorder state");
    s.phase = phase.to_string();
}

/// A handle producers record into. Inert (all methods no-ops) when the
/// recorder was inactive at creation or the exemplar filter rejected it.
#[derive(Debug, Clone)]
pub struct Series {
    inner: Option<SeriesInner>,
}

#[derive(Debug, Clone)]
struct SeriesInner {
    stride: u64,
    data: Arc<Mutex<SeriesData>>,
}

impl Series {
    const INERT: Series = Series { inner: None };

    /// Whether records will actually be kept.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `step` passes the stride filter — use to skip computing
    /// expensive values (see also [`Series::record_with`]).
    pub fn wants(&self, step: u64) -> bool {
        self.inner.as_ref().is_some_and(|inner| step.is_multiple_of(inner.stride))
    }

    /// Records `(step, value)` if `step` passes the stride filter.
    pub fn record(&self, step: u64, value: f64) {
        if let Some(inner) = &self.inner {
            if step.is_multiple_of(inner.stride) {
                inner
                    .data
                    .lock()
                    .expect("no panic while holding series data")
                    .points
                    .push((step, value));
            }
        }
    }

    /// Like [`Series::record`], but only computes the value for kept
    /// steps.
    pub fn record_with(&self, step: u64, value: impl FnOnce() -> f64) {
        if self.wants(step) {
            self.record(step, value());
        }
    }
}

/// Opens a series under the recorder's default stride. Inert when the
/// recorder is inactive.
pub fn series(group: &str, name: &str) -> Series {
    open(group, name, 0, false)
}

/// Opens a series with an explicit stride (use stride 1 for series whose
/// steps are category indices rather than long iteration counts).
pub fn series_with_stride(group: &str, name: &str, stride: u64) -> Series {
    open(group, name, stride, false)
}

/// Opens a series only on *exemplar* units: the recorder keeps unit 0 of
/// each enclosing `par_map` (and the main thread) and drops the rest.
/// Bounds the data volume of expensive high-fan-out producers (e.g.
/// per-sweep SQA replica energies across hundreds of reads).
pub fn exemplar_series(group: &str, name: &str) -> Series {
    open(group, name, 0, true)
}

fn open(group: &str, name: &str, stride: u64, exemplar_only: bool) -> Series {
    if !is_active() {
        return Series::INERT;
    }
    let unit = trace::unit_path();
    if exemplar_only && unit.iter().any(|&i| i != 0) {
        return Series::INERT;
    }
    let mut s = state().lock().expect("no panic while holding the recorder state");
    let stride = if stride == 0 { s.default_stride } else { stride };
    let phase = s.phase.clone();
    let counter_key = (group.to_string(), phase.clone(), name.to_string(), unit.clone());
    let instance = {
        let next = s.instances.entry(counter_key).or_insert(0);
        let instance = *next;
        *next += 1;
        instance
    };
    let key = SeriesKey { group: group.to_string(), phase, name: name.to_string(), unit, instance };
    let data = Arc::new(Mutex::new(SeriesData::default()));
    s.series.insert(key, Arc::clone(&data));
    Series { inner: Some(SeriesInner { stride, data }) }
}

/// Stops the recorder and drains everything recorded into one CSV per
/// group, sorted by group name. Each CSV has the header
/// `phase,series,unit,instance,step,value` with rows sorted by
/// `(phase, series, unit, instance, step)`; the unit column is the
/// `/`-joined unit path (`-` outside any `par_map`).
pub fn drain_csv() -> Vec<(String, String)> {
    stop();
    let series = {
        let mut s = state().lock().expect("no panic while holding the recorder state");
        s.instances.clear();
        std::mem::take(&mut s.series)
    };
    let mut groups: BTreeMap<String, String> = BTreeMap::new();
    for (key, data) in series {
        let csv = groups
            .entry(key.group)
            .or_insert_with(|| "phase,series,unit,instance,step,value\n".to_string());
        let unit = if key.unit.is_empty() {
            "-".to_string()
        } else {
            key.unit.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
        };
        let data = data.lock().expect("no panic while holding series data");
        for &(step, value) in &data.points {
            let _ =
                writeln!(csv, "{},{},{unit},{},{step},{value}", key.phase, key.name, key.instance);
        }
    }
    groups.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_recorder_hands_out_inert_handles() {
        let _serial = crate::test_serial();
        stop();
        let s = series("conv-test", "inert");
        assert!(!s.is_active());
        assert!(!s.wants(0));
        s.record(0, 1.0);
        s.record_with(0, || panic!("must not be evaluated"));
    }

    #[test]
    fn records_stride_filtered_points_into_group_csv() {
        let _serial = crate::test_serial();
        start(2);
        set_phase("t1");
        let s = series("conv-test", "energy");
        for step in 0..6 {
            s.record(step, -(step as f64 + 1.0));
        }
        let drained = drain_csv();
        let (group, csv) = drained.iter().find(|(g, _)| g == "conv-test").expect("group drained");
        assert_eq!(group, "conv-test");
        assert_eq!(
            csv,
            "phase,series,unit,instance,step,value\n\
             t1,energy,-,0,0,-1\n\
             t1,energy,-,0,2,-3\n\
             t1,energy,-,0,4,-5\n"
        );
    }

    #[test]
    fn instances_disambiguate_same_key_series() {
        let _serial = crate::test_serial();
        start(1);
        set_phase("p");
        let a = series("conv-test", "e");
        let b = series("conv-test", "e");
        a.record(0, 1.0);
        b.record(0, 2.0);
        let drained = drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "conv-test").unwrap().1;
        assert!(csv.contains("p,e,-,0,0,1\n"), "{csv}");
        assert!(csv.contains("p,e,-,1,0,2\n"), "{csv}");
    }

    #[test]
    fn unit_path_keys_series_and_gates_exemplars() {
        let _serial = crate::test_serial();
        start(1);
        set_phase("p");
        {
            let _prefix = crate::trace::unit_prefix_scope(&[0]);
            let ex = exemplar_series("conv-test", "replica");
            assert!(ex.is_active(), "unit 0 is the exemplar");
            ex.record(0, 5.0);
        }
        {
            let _prefix = crate::trace::unit_prefix_scope(&[3]);
            let ex = exemplar_series("conv-test", "replica");
            assert!(!ex.is_active(), "non-zero units are dropped");
            ex.record(0, 9.0);
            let all = series("conv-test", "all-units");
            all.record(0, 7.0);
        }
        let drained = drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "conv-test").unwrap().1;
        assert!(csv.contains("p,replica,0,0,0,5\n"), "{csv}");
        assert!(!csv.contains(",9\n"), "{csv}");
        assert!(csv.contains("p,all-units,3,0,0,7\n"), "{csv}");
    }

    #[test]
    fn explicit_stride_overrides_default() {
        let _serial = crate::test_serial();
        start(10);
        let s = series_with_stride("conv-test", "passes", 1);
        for step in 0..3 {
            assert!(s.wants(step));
            s.record(step, step as f64);
        }
        let lazy = series("conv-test", "lazy");
        let mut evaluated = 0;
        for step in 0..20 {
            lazy.record_with(step, || {
                evaluated += 1;
                0.0
            });
        }
        assert_eq!(evaluated, 2, "steps 0 and 10 pass a stride of 10");
        let drained = drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "conv-test").unwrap().1;
        assert_eq!(csv.matches("passes").count(), 3, "{csv}");
    }

    #[test]
    fn drain_sorts_rows_and_resets_state() {
        let _serial = crate::test_serial();
        start(1);
        set_phase("zz");
        series("conv-test", "late").record(0, 1.0);
        set_phase("aa");
        series("conv-test", "early").record(0, 2.0);
        let drained = drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "conv-test").unwrap().1;
        let aa = csv.find("aa,early").expect("aa row present");
        let zz = csv.find("zz,late").expect("zz row present");
        assert!(aa < zz, "rows sort by phase: {csv}");
        assert!(!is_active(), "drain stops the recorder");
        assert!(drain_csv().is_empty(), "drain clears recorded series");
    }
}
