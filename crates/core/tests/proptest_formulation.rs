//! Property-style tests for the JO → MILP → BILP → QUBO chain.
//!
//! Each property runs over a deterministic family of random queries drawn
//! from a seeded [`StdRng`] — the hermetic stand-in for the proptest
//! strategies the suite originally used. Seeds are fixed so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_core::classical::dp_optimal;
use qjo_core::decode::decode_assignment;
use qjo_core::formulate::{milp_to_bilp, BilpSolver, JoVar};
use qjo_core::{
    qubit_upper_bound, JoEncoder, Predicate, Query, QueryGenerator, QueryGraph, ThresholdSpec,
};
use qjo_qubo::solve::ExactSolver;

/// Draws a small random integer-log query (2–4 relations; cycles need 3+).
fn arb_query(rng: &mut StdRng) -> Query {
    loop {
        let t = rng.random_range(2usize..=4);
        let graph =
            [QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle][rng.random_range(0..3usize)];
        if matches!(graph, QueryGraph::Cycle) && t < 3 {
            continue;
        }
        let seed = rng.random_range(0u64..1000);
        return QueryGenerator::paper_defaults(graph, t).generate(seed);
    }
}

fn for_cases(cases: u64, mut body: impl FnMut(&mut StdRng, u64)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xF0_2000 + case);
        body(&mut rng, case);
    }
}

/// Theorem 5.3: the bound dominates the exact variable count for any
/// query, threshold count, and precision.
#[test]
fn qubit_bound_dominates() {
    for_cases(24, |rng, case| {
        let query = arb_query(rng);
        let r = rng.random_range(1usize..4);
        let d = rng.random_range(0u32..3);
        let omega = 10f64.powi(-(d as i32));
        let enc = JoEncoder { thresholds: ThresholdSpec::Auto(r), omega, ..Default::default() }
            .encode(&query);
        let bound = qubit_upper_bound(&query, r, omega).total();
        assert!(enc.num_qubits() <= bound, "case {case}: {} > {bound}", enc.num_qubits());
    });
}

/// The QUBO ground state always decodes to a *valid* join order, and
/// its BILP image is feasible with matching objective.
#[test]
fn ground_state_is_valid() {
    for_cases(24, |rng, case| {
        let query = arb_query(rng);
        let enc = JoEncoder::default().encode(&query);
        if enc.num_qubits() > 24 {
            return; // exact-solver budget
        }
        let ground = ExactSolver::new().solve(&enc.qubo).expect("fits");
        let order = decode_assignment(&ground.assignment, &enc.registry, &query);
        assert!(order.is_some(), "case {case}: invalid ground state");
        assert!(enc.bilp.feasible(&ground.assignment, 1e-6), "case {case}");
        let obj = enc.bilp.objective_value(&ground.assignment);
        assert!((obj - ground.energy).abs() < 1e-6, "case {case}: {obj} vs {ground:?}");
    });
}

/// The QUBO minimum equals the BILP optimum (penalty encoding is tight).
#[test]
fn qubo_matches_bilp_optimum() {
    for_cases(24, |rng, case| {
        let query = arb_query(rng);
        let enc = JoEncoder::default().encode(&query);
        if enc.num_qubits() > 22 {
            return; // keep branch & bound fast too
        }
        let qubo_min = ExactSolver::new().min_energy(&enc.qubo).expect("fits");
        let bilp_opt = BilpSolver::default().solve(&enc.bilp).expect("feasible");
        assert!(
            (qubo_min - bilp_opt.objective).abs() < 1e-6,
            "case {case}: QUBO {qubo_min} vs BILP {}",
            bilp_opt.objective
        );
    });
}

/// Pruning shrinks the model, keeps the ground state valid, and never
/// raises the optimum. (The optima need not be *equal*: the original
/// Trummer–Koch model also charges the j = 0 outer operand — the base
/// relation scan — which the paper's `C_out`-based pruning drops, so
/// the original objective carries extra non-negative terms.)
#[test]
fn pruning_shrinks_without_breaking_validity() {
    for_cases(24, |rng, case| {
        let query = arb_query(rng);
        let pruned = JoEncoder::default().encode(&query);
        let original = JoEncoder { prune: false, ..Default::default() }.encode(&query);
        if original.num_qubits() > 24 {
            return;
        }
        assert!(pruned.num_qubits() < original.num_qubits(), "case {case}");
        let a = ExactSolver::new().solve(&pruned.qubo).expect("fits");
        let b = ExactSolver::new().solve(&original.qubo).expect("fits");
        assert!(
            a.energy <= b.energy + 1e-6,
            "case {case}: pruned {} vs original {}",
            a.energy,
            b.energy
        );
        // Both ground states decode to valid join orders.
        assert!(decode_assignment(&a.assignment, &pruned.registry, &query).is_some());
        assert!(decode_assignment(&b.assignment, &original.registry, &query).is_some());
    });
}

/// Decoding is the inverse of hand-encoding a join order through the
/// tii variables.
#[test]
fn encode_decode_round_trip() {
    use rand::seq::SliceRandom;
    for_cases(24, |rng, case| {
        let query = arb_query(rng);
        let perm_seed = rng.random_range(0u64..100);
        let t = query.num_relations();
        let mut order: Vec<usize> = (0..t).collect();
        let mut perm_rng = StdRng::seed_from_u64(perm_seed);
        order.shuffle(&mut perm_rng);

        let enc = JoEncoder::default().encode(&query);
        let mut x = vec![false; enc.num_qubits()];
        for (j, &rel) in order[1..].iter().enumerate() {
            let idx = enc.registry.get(JoVar::Tii { t: rel, j }).expect("tii exists");
            x[idx] = true;
        }
        let decoded = decode_assignment(&x, &enc.registry, &query).expect("valid by construction");
        assert_eq!(decoded.order, order, "case {case}");
    });
}

/// The milp→bilp conversion preserves feasibility status on the
/// ground-state assignment restricted to original variables.
#[test]
fn milp_and_bilp_agree_on_ground_state() {
    for_cases(24, |rng, case| {
        let query = arb_query(rng);
        let enc = JoEncoder::default().encode(&query);
        if enc.num_qubits() > 24 {
            return;
        }
        let ground = ExactSolver::new().solve(&enc.qubo).expect("fits");
        // BILP feasibility (with slack) must imply MILP feasibility of the
        // original-variable projection.
        assert!(enc.bilp.feasible(&ground.assignment, 1e-6), "case {case}");
        assert!(enc.milp.feasible(&ground.assignment[..enc.milp.registry.len()]), "case {case}");
    });
}

#[test]
fn dp_is_a_lower_bound_for_all_decodable_assignments() {
    // Deterministic spot check: every decodable assignment costs at least
    // the DP optimum.
    let query =
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
    let enc = JoEncoder::default().encode(&query);
    let (_, optimal) = dp_optimal(&query);
    let exact = ExactSolver::new();
    for sol in exact.solve_k_best(&enc.qubo, 10).expect("fits") {
        if let Some(order) = decode_assignment(&sol.assignment, &enc.registry, &query) {
            assert!(order.cost(&query) >= optimal - 1e-9);
        }
    }
}

#[test]
fn milp_to_bilp_is_idempotent_on_equalities() {
    let query = Query::new(vec![1.0, 2.0], vec![]);
    let enc = JoEncoder::default().encode(&query);
    let again = milp_to_bilp(&enc.milp);
    assert_eq!(again.num_vars(), enc.bilp.num_vars());
    assert_eq!(again.rows.len(), enc.bilp.rows.len());
}
