//! Random query generation following Steinbrunn et al.
//!
//! The paper generates join-ordering instances with controlled query-graph
//! shapes (chain, star, cycle; we add clique) and randomised cardinalities
//! and selectivities, using the generator of Steinbrunn et al. via
//! Trummer's query-optimizer-lib. We reproduce the knobs that matter:
//! graph type, cardinality range, selectivity range, and the *integer-log*
//! mode the paper's QPU experiments rely on (Section 4.1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::query::{Predicate, Query, QueryGraph};

/// Configuration of the random query generator.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    /// Join-graph shape.
    pub graph: QueryGraph,
    /// Number of relations.
    pub num_relations: usize,
    /// Inclusive range of base-10 log cardinalities.
    pub log_card_range: (f64, f64),
    /// Inclusive range of base-10 log selectivities (non-positive).
    pub log_sel_range: (f64, f64),
    /// Round all logs to integers (the paper's evaluation setting, which
    /// keeps QUBO coefficients exact at ω = 1).
    pub integer_log: bool,
}

impl QueryGenerator {
    /// The paper's evaluation defaults: integer logs, cardinalities in
    /// `10^1..10^4`, selectivities in `10^−2..10^−1`.
    pub fn paper_defaults(graph: QueryGraph, num_relations: usize) -> Self {
        QueryGenerator {
            graph,
            num_relations,
            log_card_range: (1.0, 4.0),
            log_sel_range: (-2.0, -1.0),
            integer_log: true,
        }
    }

    /// Generates one query from the given seed.
    pub fn generate(&self, seed: u64) -> Query {
        assert!(self.num_relations >= 2, "need at least two relations");
        assert!(self.log_sel_range.1 <= 0.0, "selectivity logs must be non-positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let t = self.num_relations;

        let mut draw = |range: (f64, f64)| -> f64 {
            let v = if range.0 == range.1 { range.0 } else { rng.random_range(range.0..=range.1) };
            if self.integer_log {
                v.round()
            } else {
                v
            }
        };

        let log_cards: Vec<f64> = (0..t).map(|_| draw(self.log_card_range)).collect();
        let pairs: Vec<(usize, usize)> = match self.graph {
            QueryGraph::Chain => (0..t - 1).map(|i| (i, i + 1)).collect(),
            QueryGraph::Star => (1..t).map(|i| (0, i)).collect(),
            QueryGraph::Cycle => {
                assert!(t >= 3, "a cycle needs at least three relations");
                let mut v: Vec<_> = (0..t - 1).map(|i| (i, i + 1)).collect();
                v.push((t - 1, 0));
                v
            }
            QueryGraph::Clique => {
                let mut v = Vec::new();
                for a in 0..t {
                    for b in a + 1..t {
                        v.push((a, b));
                    }
                }
                v
            }
        };
        let predicates = pairs
            .into_iter()
            .map(|(rel_a, rel_b)| Predicate {
                rel_a,
                rel_b,
                log_sel: draw(self.log_sel_range).min(0.0),
            })
            .collect();
        Query::new(log_cards, predicates)
    }

    /// Generates a batch of queries with consecutive seeds.
    pub fn generate_many(&self, base_seed: u64, count: usize) -> Vec<Query> {
        (0..count).map(|i| self.generate(base_seed + i as u64)).collect()
    }

    /// A query with `predicates` of the chain predicates kept and the rest
    /// dropped — the paper's "vary the number of predicates at fixed
    /// relations" scenario (0 predicates forces cross products everywhere).
    pub fn with_predicate_count(&self, seed: u64, predicates: usize) -> Query {
        let full = self.generate(seed);
        let kept: Vec<Predicate> = full.predicates().iter().copied().take(predicates).collect();
        Query::new(full.log_cards().to_vec(), kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_shapes_have_expected_predicate_counts() {
        for (graph, expected) in [
            (QueryGraph::Chain, 4),
            (QueryGraph::Star, 4),
            (QueryGraph::Cycle, 5),
            (QueryGraph::Clique, 10),
        ] {
            let q = QueryGenerator::paper_defaults(graph, 5).generate(1);
            assert_eq!(q.num_predicates(), expected, "{graph:?}");
            assert_eq!(q.num_relations(), 5);
        }
    }

    #[test]
    fn chain_touches_consecutive_relations() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Chain, 4).generate(0);
        let pairs: Vec<(usize, usize)> =
            q.predicates().iter().map(|p| (p.rel_a, p.rel_b)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn star_centres_on_relation_zero() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Star, 5).generate(0);
        assert!(q.predicates().iter().all(|p| p.rel_a == 0));
    }

    #[test]
    fn integer_log_mode_rounds_everything() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Cycle, 6).generate(3);
        assert!(q.is_integer_log());
    }

    #[test]
    fn continuous_mode_produces_fractional_logs() {
        let gen = QueryGenerator {
            integer_log: false,
            ..QueryGenerator::paper_defaults(QueryGraph::Chain, 8)
        };
        let q = gen.generate(5);
        assert!(!q.is_integer_log(), "8 draws should not all be integers");
    }

    #[test]
    fn values_respect_ranges() {
        let gen = QueryGenerator::paper_defaults(QueryGraph::Clique, 6);
        for seed in 0..10 {
            let q = gen.generate(seed);
            for &c in q.log_cards() {
                assert!((1.0..=4.0).contains(&c), "card log {c}");
            }
            for p in q.predicates() {
                assert!((-2.0..=-1.0).contains(&p.log_sel), "sel log {}", p.log_sel);
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let gen = QueryGenerator::paper_defaults(QueryGraph::Chain, 5);
        assert_eq!(gen.generate(7), gen.generate(7));
        let distinct = (0..10).map(|s| gen.generate(s)).collect::<Vec<_>>();
        assert!(distinct.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn predicate_count_override() {
        let gen = QueryGenerator::paper_defaults(QueryGraph::Cycle, 3);
        for count in 0..=3 {
            let q = gen.with_predicate_count(2, count);
            assert_eq!(q.num_predicates(), count);
            assert_eq!(q.num_relations(), 3);
        }
    }

    #[test]
    fn generate_many_uses_consecutive_seeds() {
        let gen = QueryGenerator::paper_defaults(QueryGraph::Chain, 4);
        let batch = gen.generate_many(10, 3);
        assert_eq!(batch[0], gen.generate(10));
        assert_eq!(batch[2], gen.generate(12));
    }
}
