//! Left-deep join orders and the `C_out` cost function.
//!
//! The paper restricts plans to left-deep trees with cross products
//! (NP-complete per Cluet & Moerkotte) and costs them with
//! `C_out(n_i, n_j) = n_i · n_j · f_ij`: the total cost of an order
//! `s_1 … s_n` is the sum of all intermediate result cardinalities
//! (Equation 2).

use crate::query::Query;

/// A left-deep join order: `order[0]` is the outer relation of the first
/// join, `order[i]` (i ≥ 1) the inner operand of join `i − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOrder {
    /// Permutation of relation indices.
    pub order: Vec<usize>,
}

impl JoinOrder {
    /// Builds and validates a join order for a query of `t` relations.
    pub fn new(order: Vec<usize>, num_relations: usize) -> Option<JoinOrder> {
        if order.len() != num_relations {
            return None;
        }
        let mut seen = vec![false; num_relations];
        for &r in &order {
            if r >= num_relations || seen[r] {
                return None;
            }
            seen[r] = true;
        }
        Some(JoinOrder { order })
    }

    /// The `C_out` cost (Equation 2): sum of intermediate result sizes
    /// after each join. Computed through log cardinalities; saturates at
    /// `f64::INFINITY` on overflow rather than panicking.
    pub fn cost(&self, query: &Query) -> f64 {
        let mut total = 0.0f64;
        let mut prefix: u64 = 1 << self.order[0];
        for &rel in &self.order[1..] {
            prefix |= 1 << rel;
            let log_intermediate = query.log_card_of_set(prefix);
            total += 10f64.powf(log_intermediate);
        }
        total
    }

    /// Log10 of the largest intermediate result along the order.
    pub fn max_intermediate_log(&self, query: &Query) -> f64 {
        let mut max = f64::NEG_INFINITY;
        let mut prefix: u64 = 1 << self.order[0];
        for &rel in &self.order[1..] {
            prefix |= 1 << rel;
            max = max.max(query.log_card_of_set(prefix));
        }
        max
    }

    /// The staircase-approximated cost the MILP objective optimises
    /// (Section 3.2): for each intermediate (outer operand of joins
    /// `1..J`), every threshold its log cardinality strictly exceeds adds
    /// that threshold's value.
    ///
    /// `log_thresholds` holds `log10 θ_r` values.
    pub fn threshold_cost(&self, query: &Query, log_thresholds: &[f64]) -> f64 {
        let mut total = 0.0f64;
        let mut prefix: u64 = 1 << self.order[0];
        for &rel in &self.order[1..self.order.len() - 1] {
            prefix |= 1 << rel;
            let c = query.log_card_of_set(prefix);
            for &lt in log_thresholds {
                if c > lt + 1e-9 {
                    total += 10f64.powf(lt);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    /// The running example of the paper (Example 3.3): three relations of
    /// cardinality 100 and one predicate R⋈S with selectivity 0.1.
    fn example_query() -> Query {
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
    }

    #[test]
    fn validation_rejects_bad_orders() {
        assert!(JoinOrder::new(vec![0, 1, 2], 3).is_some());
        assert!(JoinOrder::new(vec![0, 1], 3).is_none()); // too short
        assert!(JoinOrder::new(vec![0, 1, 1], 3).is_none()); // duplicate
        assert!(JoinOrder::new(vec![0, 1, 3], 3).is_none()); // out of range
    }

    #[test]
    fn paper_example_costs() {
        let q = example_query();
        // (R ⋈ S) ⋈ T: intermediate 100·100·0.1 = 1000, final 1000·100 = 1e5.
        let good = JoinOrder::new(vec![0, 1, 2], 3).unwrap();
        assert_eq!(good.cost(&q), 1_000.0 + 100_000.0);
        // (R × T) ⋈ S: intermediate 100·100 = 1e4, final 1e4·100·0.1 = 1e5.
        let bad = JoinOrder::new(vec![0, 2, 1], 3).unwrap();
        assert_eq!(bad.cost(&q), 10_000.0 + 100_000.0);
        assert!(good.cost(&q) < bad.cost(&q));
    }

    #[test]
    fn symmetric_prefix_orders_cost_the_same() {
        let q = example_query();
        let a = JoinOrder::new(vec![0, 1, 2], 3).unwrap();
        let b = JoinOrder::new(vec![1, 0, 2], 3).unwrap();
        assert_eq!(a.cost(&q), b.cost(&q));
    }

    #[test]
    fn max_intermediate_tracks_peak() {
        let q = example_query();
        let good = JoinOrder::new(vec![0, 1, 2], 3).unwrap();
        assert_eq!(good.max_intermediate_log(&q), 5.0);
        let bad = JoinOrder::new(vec![0, 2, 1], 3).unwrap();
        assert_eq!(bad.max_intermediate_log(&q), 5.0);
    }

    #[test]
    fn threshold_cost_matches_paper_example() {
        // Example 3.3: thresholds θ0 = 100, θ1 = 1000; order (R ⋈ S) ⋈ T has
        // one intermediate (log 3), which exceeds log θ0 = 2 but not
        // log θ1 = 3 → approximated cost = 100.
        let q = example_query();
        let order = JoinOrder::new(vec![0, 1, 2], 3).unwrap();
        assert_eq!(order.threshold_cost(&q, &[2.0, 3.0]), 100.0);
        // The cross-product order's intermediate has log 4 > both: 1100.
        let bad = JoinOrder::new(vec![0, 2, 1], 3).unwrap();
        assert_eq!(bad.threshold_cost(&q, &[2.0, 3.0]), 1_100.0);
    }

    #[test]
    fn two_relation_queries_have_single_join() {
        let q = Query::new(vec![1.0, 2.0], vec![]);
        let o = JoinOrder::new(vec![0, 1], 2).unwrap();
        // Only the final result counts: 10^3.
        assert_eq!(o.cost(&q), 1_000.0);
        // And no intermediates exist for the threshold cost.
        assert_eq!(o.threshold_cost(&q, &[1.0]), 0.0);
    }
}
