//! Classical join-ordering baselines: exact optimisation (exhaustive and
//! dynamic programming) and greedy heuristics.
//!
//! These provide the ground truth against which quantum samples are judged
//! "optimal" in Tables 2 and 3 of the paper, and stand in for the classical
//! side of any quantum-vs-classical comparison.

mod dp;
mod greedy;
mod randomized;

pub use dp::{dp_optimal, exhaustive_optimal};
pub use greedy::{greedy_min_cardinality, greedy_min_cost};
pub use randomized::{iterative_improvement, simulated_annealing_jo};
