//! Randomised join-ordering heuristics after Steinbrunn, Moerkotte &
//! Kemper (VLDB Journal 1997) — the paper the query generator comes from.
//!
//! Both operate on the space of left-deep orders (permutations) with the
//! classic *move set*: swap two positions, or relocate ("3-cycle") one
//! relation to another position.
//!
//! * [`iterative_improvement`]: repeated greedy descent from random starts.
//! * [`simulated_annealing_jo`]: Metropolis walk with geometric cooling.
//!
//! These are the classical competitors quantum approaches must eventually
//! beat; they also serve as strong upper bounds when exhaustive DP is out
//! of reach (T > 28).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::jointree::JoinOrder;
use crate::query::Query;

/// A random neighbour move on a permutation.
fn random_move(order: &mut Vec<usize>, rng: &mut StdRng) -> (usize, usize, bool) {
    let n = order.len();
    let i = rng.random_range(0..n);
    let mut j = rng.random_range(0..n - 1);
    if j >= i {
        j += 1;
    }
    if rng.random_bool(0.5) {
        order.swap(i, j);
        (i, j, true)
    } else {
        let rel = order.remove(i);
        order.insert(j.min(order.len()), rel);
        (i, j, false)
    }
}

fn undo_move(order: &mut Vec<usize>, mv: (usize, usize, bool)) {
    let (i, j, was_swap) = mv;
    if was_swap {
        order.swap(i, j);
    } else {
        let rel = order.remove(j.min(order.len() - 1));
        order.insert(i, rel);
    }
}

fn random_order(n: usize, rng: &mut StdRng) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut v: Vec<usize> = (0..n).collect();
    v.shuffle(rng);
    v
}

/// Iterative improvement: from each random start, keep applying improving
/// random moves until `patience` consecutive moves fail, then restart.
pub fn iterative_improvement(
    query: &Query,
    restarts: usize,
    patience: usize,
    seed: u64,
) -> (JoinOrder, f64) {
    assert!(restarts >= 1, "need at least one restart");
    let n = query.num_relations();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(Vec<usize>, f64)> = None;
    for _ in 0..restarts {
        let mut order = random_order(n, &mut rng);
        let mut cost = JoinOrder { order: order.clone() }.cost(query);
        let mut failures = 0usize;
        while failures < patience {
            let mv = random_move(&mut order, &mut rng);
            let new_cost = JoinOrder { order: order.clone() }.cost(query);
            if new_cost < cost {
                cost = new_cost;
                failures = 0;
            } else {
                undo_move(&mut order, mv);
                failures += 1;
            }
        }
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((order, cost)),
        }
    }
    let (order, cost) = best.expect("restarts >= 1");
    (JoinOrder::new(order, n).expect("moves preserve permutations"), cost)
}

/// Simulated annealing over join orders with geometric cooling.
pub fn simulated_annealing_jo(query: &Query, sweeps: usize, seed: u64) -> (JoinOrder, f64) {
    assert!(sweeps >= 1, "need at least one sweep");
    let n = query.num_relations();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order = random_order(n, &mut rng);
    let mut cost = JoinOrder { order: order.clone() }.cost(query);
    let mut best = (order.clone(), cost);

    // Initial temperature: a fraction of the starting cost, so early moves
    // are mostly accepted; geometric decay to a freezing floor.
    let mut temp = (cost * 0.1).max(1e-9);
    let moves_per_sweep = n.max(4) * 4;
    for _ in 0..sweeps {
        for _ in 0..moves_per_sweep {
            let mv = random_move(&mut order, &mut rng);
            let new_cost = JoinOrder { order: order.clone() }.cost(query);
            let delta = new_cost - cost;
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                cost = new_cost;
                if cost < best.1 {
                    best = (order.clone(), cost);
                }
            } else {
                undo_move(&mut order, mv);
            }
        }
        temp *= 0.9;
    }
    let (order, cost) = best;
    (JoinOrder::new(order, n).expect("moves preserve permutations"), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::dp_optimal;
    use crate::query::QueryGraph;
    use crate::querygen::QueryGenerator;

    #[test]
    fn moves_preserve_permutations() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut order: Vec<usize> = (0..7).collect();
        for _ in 0..200 {
            random_move(&mut order, &mut rng);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn undo_inverts_every_move() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let mut order = random_order(6, &mut rng);
            let before = order.clone();
            let mv = random_move(&mut order, &mut rng);
            undo_move(&mut order, mv);
            assert_eq!(order, before);
        }
    }

    #[test]
    fn ii_reaches_optimum_on_small_queries() {
        for graph in [QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle] {
            let q = QueryGenerator::paper_defaults(graph, 6).generate(2);
            let (_, opt) = dp_optimal(&q);
            let (_, ii) = iterative_improvement(&q, 20, 60, 7);
            let rel = (ii - opt) / opt;
            assert!(rel < 1e-9, "{graph:?}: II {ii} vs DP {opt}");
        }
    }

    #[test]
    fn sa_reaches_optimum_on_small_queries() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Chain, 7).generate(3);
        let (_, opt) = dp_optimal(&q);
        let (_, sa) = simulated_annealing_jo(&q, 120, 5);
        let rel = (sa - opt) / opt;
        assert!(rel < 1e-9, "SA {sa} vs DP {opt}");
    }

    #[test]
    fn heuristics_never_beat_dp() {
        for seed in 0..5 {
            let q = QueryGenerator::paper_defaults(QueryGraph::Cycle, 8).generate(seed);
            let (_, opt) = dp_optimal(&q);
            let (o1, c1) = iterative_improvement(&q, 5, 30, seed);
            let (o2, c2) = simulated_annealing_jo(&q, 50, seed);
            assert!(c1 >= opt - 1e-6);
            assert!(c2 >= opt - 1e-6);
            // Reported costs re-evaluate to themselves.
            assert!((o1.cost(&q) - c1).abs() < 1e-9);
            assert!((o2.cost(&q) - c2).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Star, 9).generate(1);
        let a = iterative_improvement(&q, 3, 20, 11);
        let b = iterative_improvement(&q, 3, 20, 11);
        assert_eq!(a.0.order, b.0.order);
        let a = simulated_annealing_jo(&q, 30, 11);
        let b = simulated_annealing_jo(&q, 30, 11);
        assert_eq!(a.0.order, b.0.order);
    }

    #[test]
    fn scales_beyond_dp_reach() {
        // 30 relations: DP (2^30 states) is impractical; the randomised
        // heuristics still return valid orders.
        let q = QueryGenerator::paper_defaults(QueryGraph::Chain, 30).generate(0);
        let (order, cost) = iterative_improvement(&q, 2, 40, 0);
        assert_eq!(order.order.len(), 30);
        assert!(cost.is_finite());
    }
}
