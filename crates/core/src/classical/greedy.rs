//! Greedy join-ordering heuristics.
//!
//! Classical polynomial-time baselines: both build the order left to right,
//! [`greedy_min_cardinality`] always appending the relation minimising the
//! next intermediate result, [`greedy_min_cost`] minimising the accumulated
//! cost so far (equivalent step-wise, but kept separate for the starting
//! relation choice: min-cost tries all starts).

use crate::jointree::JoinOrder;
use crate::query::Query;

/// Greedy: start with the smallest relation, repeatedly append the relation
/// that minimises the next intermediate cardinality.
pub fn greedy_min_cardinality(query: &Query) -> (JoinOrder, f64) {
    let t = query.num_relations();
    let start = (0..t)
        .min_by(|&a, &b| query.log_card(a).partial_cmp(&query.log_card(b)).expect("finite logs"))
        .expect("at least two relations");
    let order = build_from(query, start);
    let cost = order.cost(query);
    (order, cost)
}

/// Greedy with all starting relations tried, keeping the cheapest order.
pub fn greedy_min_cost(query: &Query) -> (JoinOrder, f64) {
    let t = query.num_relations();
    (0..t)
        .map(|start| {
            let order = build_from(query, start);
            let cost = order.cost(query);
            (order, cost)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("at least two relations")
}

fn build_from(query: &Query, start: usize) -> JoinOrder {
    let t = query.num_relations();
    let mut order = vec![start];
    let mut set: u64 = 1 << start;
    while order.len() < t {
        let next = (0..t)
            .filter(|&r| set >> r & 1 == 0)
            .min_by(|&a, &b| {
                let ca = query.log_card_of_set(set | 1 << a);
                let cb = query.log_card_of_set(set | 1 << b);
                ca.partial_cmp(&cb).expect("finite logs")
            })
            .expect("unjoined relation remains");
        order.push(next);
        set |= 1 << next;
    }
    JoinOrder::new(order, t).expect("constructed a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::dp_optimal;
    use crate::query::{Predicate, Query, QueryGraph};
    use crate::querygen::QueryGenerator;

    #[test]
    fn greedy_is_optimal_on_easy_instances() {
        // Cross products only: greedy ascending order is exactly optimal.
        let q = Query::new(vec![4.0, 1.0, 2.0, 3.0], vec![]);
        let (order, cost) = greedy_min_cardinality(&q);
        assert_eq!(order.order, vec![1, 2, 3, 0]);
        let (_, opt) = dp_optimal(&q);
        assert_eq!(cost, opt);
    }

    #[test]
    fn greedy_never_beats_dp() {
        for graph in [QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle] {
            for seed in 0..10 {
                let q = QueryGenerator::paper_defaults(graph, 7).generate(seed);
                let (_, opt) = dp_optimal(&q);
                let (_, g1) = greedy_min_cardinality(&q);
                let (_, g2) = greedy_min_cost(&q);
                assert!(g1 >= opt - 1e-6, "{graph:?} seed {seed}");
                assert!(g2 >= opt - 1e-6, "{graph:?} seed {seed}");
                // Trying all starts can only help.
                assert!(g2 <= g1 + 1e-6);
            }
        }
    }

    #[test]
    fn greedy_prefers_selective_joins() {
        // Equal cardinalities; predicate makes {0,1} the cheap pair.
        let q =
            Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
        let (order, cost) = greedy_min_cost(&q);
        let first_two: Vec<usize> = order.order[..2].to_vec();
        assert!(first_two == vec![0, 1] || first_two == vec![1, 0], "{order:?}");
        assert_eq!(cost, 101_000.0);
    }

    #[test]
    fn greedy_returns_valid_permutations() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Clique, 9).generate(4);
        let (order, _) = greedy_min_cardinality(&q);
        let mut sorted = order.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }
}
