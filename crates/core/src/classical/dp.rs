//! Exact left-deep join ordering.
//!
//! [`dp_optimal`] runs Bellman-style dynamic programming over relation
//! subsets in O(2^T · T): because `C_out` cost of a prefix depends only on
//! the *set* of joined relations (uncorrelated predicates), the best order
//! for a set extends the best order of one of its subsets. Cross products
//! are allowed, matching the paper's problem class. [`exhaustive_optimal`]
//! enumerates all T! permutations as an independent oracle for testing.

use crate::jointree::JoinOrder;
use crate::query::Query;

/// Exact optimum by subset DP. Supports up to 28 relations (2^28 states).
pub fn dp_optimal(query: &Query) -> (JoinOrder, f64) {
    let t = query.num_relations();
    assert!(t <= 28, "subset DP beyond 28 relations is impractical");
    let full: u64 = (1u64 << t) - 1;

    // best_cost[set] = minimal cost of a left-deep prefix joining `set`;
    // best_last[set] = the relation joined last in that optimum.
    let size = 1usize << t;
    let mut best_cost = vec![f64::INFINITY; size];
    let mut best_last = vec![usize::MAX; size];

    // Singleton prefixes cost nothing (the outer relation is just scanned).
    for r in 0..t {
        best_cost[1usize << r] = 0.0;
        best_last[1usize << r] = r;
    }

    for set in 1..size as u64 {
        if set.count_ones() < 2 {
            continue;
        }
        let intermediate = 10f64.powf(query.log_card_of_set(set));
        let mut best = f64::INFINITY;
        let mut arg = usize::MAX;
        let mut rest = set;
        while rest != 0 {
            let r = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let prev = set & !(1u64 << r);
            let cand = best_cost[prev as usize] + intermediate;
            if cand < best {
                best = cand;
                arg = r;
            }
        }
        best_cost[set as usize] = best;
        best_last[set as usize] = arg;
    }

    // Reconstruct the order back-to-front.
    let mut order = Vec::with_capacity(t);
    let mut set = full;
    while set != 0 {
        let last = best_last[set as usize];
        order.push(last);
        set &= !(1u64 << last);
    }
    order.reverse();
    let cost = best_cost[full as usize];
    (JoinOrder::new(order, t).expect("DP builds a permutation"), cost)
}

/// Exact optimum by brute-force permutation enumeration (≤ 10 relations).
pub fn exhaustive_optimal(query: &Query) -> (JoinOrder, f64) {
    let t = query.num_relations();
    assert!(t <= 10, "{t}! permutations is too many");
    let mut perm: Vec<usize> = (0..t).collect();
    let mut best: Option<(Vec<usize>, f64)> = None;
    permute(&mut perm, 0, &mut |p| {
        let cost = JoinOrder { order: p.to_vec() }.cost(query);
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((p.to_vec(), cost)),
        }
    });
    let (order, cost) = best.expect("at least one permutation");
    (JoinOrder::new(order, t).expect("permutation"), cost)
}

fn permute<F: FnMut(&[usize])>(p: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == p.len() {
        f(p);
        return;
    }
    for i in k..p.len() {
        p.swap(k, i);
        permute(p, k + 1, f);
        p.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, QueryGraph};
    use crate::querygen::QueryGenerator;

    #[test]
    fn dp_matches_exhaustive_on_random_queries() {
        for graph in [QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle] {
            for seed in 0..5 {
                let q = QueryGenerator::paper_defaults(graph, 6).generate(seed);
                let (dp_order, dp_cost) = dp_optimal(&q);
                let (_, ex_cost) = exhaustive_optimal(&q);
                let rel = (dp_cost - ex_cost).abs() / ex_cost.max(1.0);
                assert!(rel < 1e-9, "{graph:?} seed {seed}: DP {dp_cost} vs {ex_cost}");
                assert!((dp_order.cost(&q) - dp_cost).abs() / dp_cost.max(1.0) < 1e-9);
            }
        }
    }

    #[test]
    fn paper_example_prefers_selective_join_first() {
        let q = crate::query::Query::new(
            vec![2.0, 2.0, 2.0],
            vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }],
        );
        let (order, cost) = dp_optimal(&q);
        // Optimal orders start with {R0, R1} in either order.
        let first_two: Vec<usize> = order.order[..2].to_vec();
        assert!(first_two == vec![0, 1] || first_two == vec![1, 0]);
        assert_eq!(cost, 101_000.0);
    }

    #[test]
    fn dp_handles_pure_cross_products() {
        // No predicates: the largest relation joins last (the first two
        // positions commute, so only the tail ordering is determined).
        let q = crate::query::Query::new(vec![3.0, 1.0, 2.0], vec![]);
        let (order, cost) = dp_optimal(&q);
        assert_eq!(*order.order.last().unwrap(), 0);
        let reference = JoinOrder::new(vec![1, 2, 0], 3).unwrap();
        assert_eq!(cost, reference.cost(&q));
    }

    #[test]
    fn two_relations_trivial() {
        let q = crate::query::Query::new(vec![1.0, 2.0], vec![]);
        let (order, cost) = dp_optimal(&q);
        assert_eq!(cost, 1_000.0);
        assert_eq!(order.order.len(), 2);
    }

    #[test]
    fn dp_scales_to_fifteen_relations() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Chain, 15).generate(0);
        let (order, cost) = dp_optimal(&q);
        assert_eq!(order.order.len(), 15);
        assert!(cost.is_finite());
        assert!((order.cost(&q) - cost).abs() / cost < 1e-9);
    }
}
