//! Preset catalogues with realistic statistics.
//!
//! Section 6.1 of the paper sizes future QPUs against "queries roughly
//! equal in size to those considered in the JO benchmark by Leis et al."
//! (the Join Order Benchmark over IMDB). This module provides an IMDB-like
//! catalogue with representative cardinalities so examples and co-design
//! projections can be phrased over named relations instead of synthetic
//! ones. Statistics are approximate (order-of-magnitude from the published
//! dataset), which is all the logarithmic encoding consumes anyway.

use crate::query::{Predicate, Query};

/// A named relation with a representative cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogRelation {
    /// Relation name.
    pub name: &'static str,
    /// Base-10 log of the cardinality.
    pub log_card: f64,
}

/// The IMDB-like catalogue used by the Join Order Benchmark.
pub const IMDB_CATALOG: &[CatalogRelation] = &[
    CatalogRelation { name: "title", log_card: 6.4 }, // ~2.5 M
    CatalogRelation { name: "movie_info", log_card: 7.2 }, // ~14.8 M
    CatalogRelation { name: "cast_info", log_card: 7.6 }, // ~36 M
    CatalogRelation { name: "name", log_card: 6.6 },  // ~4.2 M
    CatalogRelation { name: "movie_keyword", log_card: 6.7 }, // ~4.5 M
    CatalogRelation { name: "keyword", log_card: 5.1 }, // ~134 k
    CatalogRelation { name: "movie_companies", log_card: 6.4 }, // ~2.6 M
    CatalogRelation { name: "company_name", log_card: 5.4 }, // ~235 k
    CatalogRelation { name: "company_type", log_card: 0.6 }, // 4
    CatalogRelation { name: "info_type", log_card: 2.0 }, // 113
    CatalogRelation { name: "movie_info_idx", log_card: 6.1 }, // ~1.4 M
    CatalogRelation { name: "kind_type", log_card: 0.8 }, // 7
    CatalogRelation { name: "aka_name", log_card: 5.9 }, // ~900 k
];

/// Builds a JOB-style star-with-dimension query over the first
/// `num_relations` catalogue entries: every non-fact relation joins the
/// fact (`title`) through a key predicate with the given selectivity log.
///
/// Returns the query and the relation names in variable order.
pub fn imdb_star_query(num_relations: usize, log_sel: f64) -> (Query, Vec<&'static str>) {
    assert!(
        (2..=IMDB_CATALOG.len()).contains(&num_relations),
        "need 2..={} relations",
        IMDB_CATALOG.len()
    );
    assert!(log_sel <= 0.0, "selectivity logs are non-positive");
    let relations = &IMDB_CATALOG[..num_relations];
    let log_cards = relations.iter().map(|r| r.log_card).collect();
    let predicates =
        (1..num_relations).map(|i| Predicate { rel_a: 0, rel_b: i, log_sel }).collect();
    (Query::new(log_cards, predicates), relations.iter().map(|r| r.name).collect())
}

/// Builds a JOB-style chain query (fact → dimension → sub-dimension …)
/// over the first `num_relations` catalogue entries.
pub fn imdb_chain_query(num_relations: usize, log_sel: f64) -> (Query, Vec<&'static str>) {
    assert!(
        (2..=IMDB_CATALOG.len()).contains(&num_relations),
        "need 2..={} relations",
        IMDB_CATALOG.len()
    );
    assert!(log_sel <= 0.0, "selectivity logs are non-positive");
    let relations = &IMDB_CATALOG[..num_relations];
    let log_cards = relations.iter().map(|r| r.log_card).collect();
    let predicates =
        (1..num_relations).map(|i| Predicate { rel_a: i - 1, rel_b: i, log_sel }).collect();
    (Query::new(log_cards, predicates), relations.iter().map(|r| r.name).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::qubit_upper_bound;
    use crate::classical::{dp_optimal, greedy_min_cost};

    #[test]
    fn catalog_has_plausible_statistics() {
        assert_eq!(IMDB_CATALOG.len(), 13);
        for r in IMDB_CATALOG {
            assert!(r.log_card >= 0.0 && r.log_card < 9.0, "{} has log {}", r.name, r.log_card);
        }
        // cast_info is the largest, company_type the smallest.
        let max = IMDB_CATALOG.iter().max_by(|a, b| a.log_card.total_cmp(&b.log_card)).unwrap();
        assert_eq!(max.name, "cast_info");
    }

    #[test]
    fn star_query_structure() {
        let (q, names) = imdb_star_query(6, -5.0);
        assert_eq!(q.num_relations(), 6);
        assert_eq!(q.num_predicates(), 5);
        assert!(q.predicates().iter().all(|p| p.rel_a == 0));
        assert_eq!(names[0], "title");
    }

    #[test]
    fn chain_query_is_solvable_classically() {
        let (q, _) = imdb_chain_query(8, -5.5);
        let (order, cost) = dp_optimal(&q);
        assert_eq!(order.order.len(), 8);
        assert!(cost.is_finite() && cost > 0.0);
        let (_, greedy) = greedy_min_cost(&q);
        assert!(greedy >= cost - 1e-6);
    }

    #[test]
    fn thirteen_relation_job_query_fits_a_thousand_qubit_budget() {
        // The paper's Section 6.1 claim, instantiated on the JOB-like
        // catalogue: the full 13-relation query needs ≤ ~1,000 qubits at
        // minimal precision.
        let (q, _) = imdb_star_query(13, -6.0);
        let bound = qubit_upper_bound(&q, 1, 1.0).total();
        assert!(
            (500..=1100).contains(&bound),
            "13-relation JOB-like bound {bound} outside the expected band"
        );
    }

    #[test]
    #[should_panic(expected = "need 2..=")]
    fn rejects_oversized_requests() {
        imdb_star_query(99, -1.0);
    }
}
