//! The join-ordering problem instance: relations, cardinalities, and join
//! predicates.
//!
//! Cardinalities and selectivities are stored as base-10 logarithms, the
//! representation both the MILP reformulation (Section 3 of the paper) and
//! the qubit-bound analysis (Section 5) work in. The paper's evaluation
//! restricts itself to *integer* logarithmic cardinalities and
//! selectivities to sidestep discretisation error; [`Query::is_integer_log`]
//! detects that regime.

/// A binary join predicate between two relations with a selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// First referenced relation.
    pub rel_a: usize,
    /// Second referenced relation.
    pub rel_b: usize,
    /// Base-10 log of the selectivity; must satisfy `log_sel <= 0`
    /// (selectivities are in `(0, 1]`).
    pub log_sel: f64,
}

/// The shape of a query's join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryGraph {
    /// `R0 — R1 — … — R(n−1)`.
    Chain,
    /// `R0` joined to every other relation.
    Star,
    /// A chain closed into a ring (one extra predicate).
    Cycle,
    /// Every pair of relations joined.
    Clique,
}

/// A join-ordering problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Base-10 log of each relation's cardinality (`log_card >= 0`).
    log_cards: Vec<f64>,
    /// Join predicates (uncorrelated, per the paper's footnote 3).
    predicates: Vec<Predicate>,
}

impl Query {
    /// Builds a query, validating ranges and predicate endpoints.
    pub fn new(log_cards: Vec<f64>, predicates: Vec<Predicate>) -> Self {
        let t = log_cards.len();
        assert!(t >= 2, "a join-ordering problem needs at least two relations");
        assert!(t <= 64, "relation sets are represented as u64 bitmasks");
        assert!(
            log_cards.iter().all(|&c| c >= 0.0 && c.is_finite()),
            "log cardinalities must be finite and non-negative"
        );
        for p in &predicates {
            assert!(p.rel_a < t && p.rel_b < t, "predicate references unknown relation");
            assert_ne!(p.rel_a, p.rel_b, "self-join predicates are not supported");
            assert!(p.log_sel <= 0.0 && p.log_sel.is_finite(), "selectivities must be in (0, 1]");
        }
        Query { log_cards, predicates }
    }

    /// Number of relations `T`.
    pub fn num_relations(&self) -> usize {
        self.log_cards.len()
    }

    /// Number of joins `J = T − 1` in a left-deep tree.
    pub fn num_joins(&self) -> usize {
        self.log_cards.len() - 1
    }

    /// Number of predicates `P`.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Log cardinality of relation `t`.
    pub fn log_card(&self, t: usize) -> f64 {
        self.log_cards[t]
    }

    /// All log cardinalities.
    pub fn log_cards(&self) -> &[f64] {
        &self.log_cards
    }

    /// The predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// True when every cardinality and selectivity has an integer log —
    /// the paper's evaluation regime (discretisation-exact at ω = 1).
    pub fn is_integer_log(&self) -> bool {
        let is_int = |v: f64| (v - v.round()).abs() < 1e-9;
        self.log_cards.iter().all(|&c| is_int(c))
            && self.predicates.iter().all(|p| is_int(p.log_sel))
    }

    /// Log cardinality of joining the set of relations in `set` (bitmask):
    /// `Σ log Card(t) + Σ log Sel(p)` over predicates with both endpoints
    /// inside the set (uncorrelated-predicate model).
    pub fn log_card_of_set(&self, set: u64) -> f64 {
        let mut acc = 0.0;
        for (t, &c) in self.log_cards.iter().enumerate() {
            if set >> t & 1 == 1 {
                acc += c;
            }
        }
        for p in &self.predicates {
            if set >> p.rel_a & 1 == 1 && set >> p.rel_b & 1 == 1 {
                acc += p.log_sel;
            }
        }
        acc
    }

    /// The paper's Lemma 5.2 quantity: the maximum possible log cardinality
    /// of the outer operand of join `j` — the sum of the `j + 1` largest
    /// log cardinalities, ignoring all predicates.
    pub fn max_outer_log_card(&self, j: usize) -> f64 {
        let mut sorted = self.log_cards.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        sorted.iter().take(j + 1).sum()
    }

    /// Predicates whose endpoints both lie within `set`, excluding those
    /// already applicable within `subset` — i.e. the predicates newly
    /// applied when `set \ subset` joins `subset`.
    pub fn newly_applicable(&self, subset: u64, set: u64) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(move |p| {
            let in_set = set >> p.rel_a & 1 == 1 && set >> p.rel_b & 1 == 1;
            let in_subset = subset >> p.rel_a & 1 == 1 && subset >> p.rel_b & 1 == 1;
            in_set && !in_subset
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_rel() -> Query {
        // Cards 100, 100, 100; one predicate R0–R1 with selectivity 0.1.
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
    }

    #[test]
    fn basic_accessors() {
        let q = three_rel();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.num_joins(), 2);
        assert_eq!(q.num_predicates(), 1);
        assert_eq!(q.log_card(1), 2.0);
        assert!(q.is_integer_log());
    }

    #[test]
    fn set_cardinality_applies_predicates() {
        let q = three_rel();
        // {R0} alone: 10^2.
        assert_eq!(q.log_card_of_set(0b001), 2.0);
        // {R0, R1}: 10^2 · 10^2 · 0.1 = 10^3.
        assert_eq!(q.log_card_of_set(0b011), 3.0);
        // {R0, R2}: cross product, no predicate: 10^4.
        assert_eq!(q.log_card_of_set(0b101), 4.0);
        // All three: 10^6 · 0.1 = 10^5.
        assert_eq!(q.log_card_of_set(0b111), 5.0);
        assert_eq!(q.log_card_of_set(0), 0.0);
    }

    #[test]
    fn max_outer_log_card_uses_largest_relations() {
        let q = Query::new(vec![1.0, 3.0, 2.0], vec![]);
        // Outer of join 0 holds 1 relation; of join 1 holds 2; of join 2
        // would hold all 3 (out of range here but the formula generalises).
        assert_eq!(q.max_outer_log_card(0), 3.0);
        assert_eq!(q.max_outer_log_card(1), 5.0);
        assert_eq!(q.max_outer_log_card(2), 6.0);
    }

    #[test]
    fn newly_applicable_predicates() {
        let q = three_rel();
        // Adding R1 to {R0}: predicate 0 becomes applicable.
        let newly: Vec<_> = q.newly_applicable(0b001, 0b011).collect();
        assert_eq!(newly.len(), 1);
        // Adding R2 to {R0, R1}: nothing new.
        assert_eq!(q.newly_applicable(0b011, 0b111).count(), 0);
    }

    #[test]
    fn non_integer_logs_are_detected() {
        let q = Query::new(vec![2.0, 2.5], vec![]);
        assert!(!q.is_integer_log());
    }

    #[test]
    #[should_panic(expected = "at least two relations")]
    fn rejects_single_relation() {
        Query::new(vec![2.0], vec![]);
    }

    #[test]
    #[should_panic(expected = "u64 bitmasks")]
    fn rejects_more_than_64_relations() {
        Query::new(vec![1.0; 65], vec![]);
    }

    #[test]
    fn exactly_64_relations_is_supported() {
        let q = Query::new(vec![1.0; 64], vec![]);
        assert_eq!(q.num_relations(), 64);
        // The full-set mask exercises the top bit.
        assert_eq!(q.log_card_of_set(u64::MAX), 64.0);
    }

    #[test]
    #[should_panic(expected = "self-join")]
    fn rejects_self_join() {
        Query::new(vec![2.0, 2.0], vec![Predicate { rel_a: 1, rel_b: 1, log_sel: -1.0 }]);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn rejects_selectivity_above_one() {
        Query::new(vec![2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: 0.5 }]);
    }
}
