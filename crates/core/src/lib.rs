//! Join ordering on quantum hardware — the core library.
//!
//! Implements the contribution of *"Ready to Leap (by Co-Design)? Join
//! Order Optimisation on Quantum Hardware"* (Schönberger, Scherzinger,
//! Mauerer): the first QUBO reformulation of the join-ordering problem,
//! built as the chain
//!
//! ```text
//! Query ──► pruned MILP ──► BILP (binary slack at precision ω) ──► QUBO
//! ```
//!
//! plus everything needed around it: a random query generator
//! (chain/star/cycle/clique graphs), exact and greedy classical optimisers
//! for ground truth, the qubit-count upper bound of Theorem 5.3, and the
//! sample decoding / validity assessment of Section 3.5.
//!
//! The QUBO output plugs into the workspace's two quantum backends:
//! QAOA simulation via `qjo-gatesim` + `qjo-transpile`, and simulated
//! quantum annealing via `qjo-anneal`.
//!
//! # Quickstart
//!
//! ```
//! use qjo_core::prelude::*;
//! use qjo_qubo::solve::ExactSolver;
//!
//! // A 3-relation query: |R| = |S| = |T| = 100, sel(R ⋈ S) = 0.1.
//! let query = Query::new(
//!     vec![2.0, 2.0, 2.0],
//!     vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }],
//! );
//!
//! // Two thresholds (θ = 100, 1000) make the cardinality staircase fine
//! // enough to rank the candidate orders faithfully; a single threshold
//! // (the default) saves qubits but may leave the optimum degenerate.
//! let encoded = JoEncoder {
//!     thresholds: ThresholdSpec::ExplicitLogs(vec![2.0, 3.0]),
//!     ..JoEncoder::default()
//! }
//! .encode(&query);
//! let ground = ExactSolver::new().solve(&encoded.qubo).unwrap();
//! let order = decode_assignment(&ground.assignment, &encoded.registry, &query)
//!     .expect("the QUBO minimum is a valid join order");
//!
//! let (_, optimal_cost) = dp_optimal(&query);
//! assert_eq!(order.cost(&query), optimal_cost);
//! ```

pub mod bounds;
pub mod classical;
pub mod costmodel;
pub mod decode;
pub mod encode;
pub mod explain;
pub mod formulate;
pub mod jointree;
pub mod presets;
pub mod query;
pub mod querygen;

pub use bounds::{qubit_upper_bound, qubit_upper_bound_raw, QubitBound};
pub use costmodel::{dp_optimal_with, CostModel};
pub use decode::{assess_samples, decode_assignment, SampleQuality};
pub use encode::{JoEncoder, JoQubo, ThresholdSpec};
pub use explain::{explain, summarize, EncodingSummary};
pub use jointree::JoinOrder;
pub use query::{Predicate, Query, QueryGraph};
pub use querygen::QueryGenerator;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::bounds::qubit_upper_bound;
    pub use crate::classical::{dp_optimal, greedy_min_cost};
    pub use crate::decode::{assess_samples, decode_assignment};
    pub use crate::encode::{JoEncoder, JoQubo, ThresholdSpec};
    pub use crate::jointree::JoinOrder;
    pub use crate::query::{Predicate, Query, QueryGraph};
    pub use crate::querygen::QueryGenerator;
}
