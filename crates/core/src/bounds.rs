//! Qubit-resource bounds (Section 5 of the paper).
//!
//! Theorem 5.3: for `T` relations, `J = T − 1` joins, `P` predicates and
//! `R` thresholds at discretisation precision ω,
//!
//! ```text
//! n ≤ 2TJ + (3P + R)(J − 1) + T + R Σ_{j=1}^{J−1} (⌊log₂(c_j_max / ω)⌋ + 1)
//! ```
//!
//! where `c_j_max` (Lemma 5.2) is the sum of the `j + 1` largest log
//! cardinalities. These closed forms drive Figure 4's scaling study and the
//! co-design capacity estimates ("1,000 logical qubits ≈ 13 relations").

use crate::query::Query;

/// Breakdown of the Theorem 5.3 upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QubitBound {
    /// `2TJ` — table-operand variables.
    pub table_vars: usize,
    /// `P(J−1)` — predicate-applicability variables.
    pub pao_vars: usize,
    /// `R(J−1)` — threshold variables (upper bound, before Lemma pruning).
    pub cto_vars: usize,
    /// `T + 2P(J−1)` — single-bit slack for the simple inequalities.
    pub unit_slack: usize,
    /// `R Σ_j (⌊log₂(c_j_max/ω)⌋ + 1)` — discretised cardinality slack.
    pub card_slack: usize,
}

impl QubitBound {
    /// The total bound `n`.
    pub fn total(&self) -> usize {
        self.table_vars + self.pao_vars + self.cto_vars + self.unit_slack + self.card_slack
    }
}

/// Computes the Theorem 5.3 bound for a concrete query.
pub fn qubit_upper_bound(query: &Query, thresholds: usize, omega: f64) -> QubitBound {
    let t = query.num_relations();
    let j = query.num_joins();
    let p = query.num_predicates();
    qubit_upper_bound_raw(t, j, p, thresholds, omega, &{
        let mut logs = query.log_cards().to_vec();
        logs.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        logs
    })
}

/// The bound from raw parameters; `sorted_log_cards` must be descending.
/// Useful for hypothetical instances (Fig. 4 sweeps to 64 relations).
pub fn qubit_upper_bound_raw(
    t: usize,
    j: usize,
    p: usize,
    r: usize,
    omega: f64,
    sorted_log_cards: &[f64],
) -> QubitBound {
    assert!(omega > 0.0, "ω must be positive");
    assert_eq!(sorted_log_cards.len(), t, "need one log cardinality per relation");
    assert!(
        sorted_log_cards.windows(2).all(|w| w[0] >= w[1]),
        "log cardinalities must be sorted descending"
    );
    let mut card_slack = 0usize;
    let mut prefix: f64 = sorted_log_cards.first().copied().unwrap_or(0.0);
    // c_j_max for join j = sum of the (j + 1) largest log cardinalities.
    for &log_card in sorted_log_cards.iter().take(j).skip(1) {
        prefix += log_card;
        card_slack += r * crate::formulate::slack_bits(prefix, omega);
    }
    QubitBound {
        table_vars: 2 * t * j,
        pao_vars: p * j.saturating_sub(1),
        cto_vars: r * j.saturating_sub(1),
        unit_slack: t + 2 * p * j.saturating_sub(1),
        card_slack,
    }
}

/// The largest number of relations whose bound fits within `budget` logical
/// qubits, for cyclic query graphs (P = T, the paper's worst case) with all
/// log cardinalities equal to `log_card`.
pub fn max_relations_for_budget(
    budget: usize,
    thresholds: usize,
    omega: f64,
    log_card: f64,
) -> usize {
    let mut t = 2;
    loop {
        let logs = vec![log_card; t + 1];
        let bound = qubit_upper_bound_raw(t + 1, t, t + 1, thresholds, omega, &logs).total();
        if bound > budget {
            return t;
        }
        t += 1;
        if t > 10_000 {
            return t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::{build_milp, milp_to_bilp, JoMilpConfig};
    use crate::query::QueryGraph;
    use crate::querygen::QueryGenerator;

    #[test]
    fn bound_dominates_constructed_model_size() {
        for graph in [QueryGraph::Chain, QueryGraph::Star, QueryGraph::Cycle] {
            for t in 3..=7 {
                for r in 1..=3 {
                    for &omega in &[1.0, 0.1] {
                        let q = QueryGenerator::paper_defaults(graph, t).generate(7);
                        let thresholds = crate::formulate::auto_thresholds(&q, r);
                        let cfg = JoMilpConfig { log_thresholds: thresholds, omega, prune: true };
                        let bilp = milp_to_bilp(&build_milp(&q, &cfg));
                        let bound = qubit_upper_bound(&q, r, omega).total();
                        assert!(
                            bilp.num_vars() <= bound,
                            "{graph:?} T={t} R={r} ω={omega}: {} > {bound}",
                            bilp.num_vars()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_matches_closed_form_for_uniform_cards() {
        // T = 3, J = 2, P = 1, R = 1, ω = 1, all log cards 2:
        // 2TJ = 12; (3P+R)(J−1) = 4; T = 3;
        // card slack: j = 1, c_max = 4 → ⌊log₂ 4⌋+1 = 3.
        let b = qubit_upper_bound_raw(3, 2, 1, 1, 1.0, &[2.0, 2.0, 2.0]);
        assert_eq!(b.table_vars, 12);
        assert_eq!(b.pao_vars, 1);
        assert_eq!(b.cto_vars, 1);
        assert_eq!(b.unit_slack, 5);
        assert_eq!(b.card_slack, 3);
        assert_eq!(b.total(), 22);
    }

    #[test]
    fn scaling_is_quadratic_in_relations() {
        // The dominant 2TJ term: bound(2T)/bound(T) → ≈4 for large T.
        let bound_at = |t: usize| {
            let logs = vec![3.0; t];
            qubit_upper_bound_raw(t, t - 1, t, 2, 1.0, &logs).total() as f64
        };
        let ratio = bound_at(60) / bound_at(30);
        assert!((3.2..=4.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn precision_increases_only_the_slack_term() {
        let logs = vec![3.0; 8];
        let coarse = qubit_upper_bound_raw(8, 7, 8, 2, 1.0, &logs);
        let fine = qubit_upper_bound_raw(8, 7, 8, 2, 0.0001, &logs);
        assert_eq!(coarse.table_vars, fine.table_vars);
        assert_eq!(coarse.pao_vars, fine.pao_vars);
        assert!(fine.card_slack > coarse.card_slack);
        // Fig. 4's observation: precision matters but relations dominate —
        // four decimal digits of precision stay within ~2× of the total.
        assert!((fine.total() as f64) < 2.0 * coarse.total() as f64);
    }

    #[test]
    fn thousand_qubits_cover_about_thirteen_relations() {
        // Section 6.1's headline: a 1,000-qubit QPU handles ~13 relations
        // (depending on precision). Accept the paper's ballpark.
        let t = max_relations_for_budget(1000, 2, 1.0, 3.0);
        assert!((11..=16).contains(&t), "1000 qubits -> {t} relations");
        // And 60-relation queries need >20,000 qubits.
        let logs = vec![3.0; 60];
        let bound = qubit_upper_bound_raw(60, 59, 60, 20, 0.01, &logs).total();
        assert!(bound > 20_000, "60 relations bound {bound}");
    }

    #[test]
    fn budget_search_is_monotone_in_budget() {
        let small = max_relations_for_budget(200, 1, 1.0, 3.0);
        let large = max_relations_for_budget(2000, 1, 1.0, 3.0);
        assert!(large > small);
    }
}
