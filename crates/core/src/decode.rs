//! Postprocessing: mapping QPU samples back to join orders (Section 3.5).
//!
//! NISQ samples routinely violate BILP constraints, so validity is *not*
//! judged by the penalty value. Instead, only the `tii` assignments are
//! read: a sample is valid when every join's inner operand is represented
//! by exactly one relation, all inner relations are distinct, and exactly
//! one relation remains for the outer operand of the first join (recovered
//! by elimination).

use qjo_qubo::SampleSet;

use crate::formulate::vars::{JoVar, VarRegistry};
use crate::jointree::JoinOrder;
use crate::query::Query;

/// Decodes one binary assignment into a join order, or `None` when the
/// `tii` variables do not describe an unambiguous left-deep tree.
pub fn decode_assignment(x: &[bool], registry: &VarRegistry, query: &Query) -> Option<JoinOrder> {
    let t_count = query.num_relations();
    let j_count = query.num_joins();
    let mut used = vec![false; t_count];
    let mut inners = Vec::with_capacity(j_count);
    for j in 0..j_count {
        let mut inner = None;
        for t in 0..t_count {
            let idx = registry.get(JoVar::Tii { t, j })?;
            if *x.get(idx)? {
                if inner.is_some() {
                    return None; // ambiguous inner operand
                }
                inner = Some(t);
            }
        }
        let t = inner?; // no inner operand at all
        if used[t] {
            return None; // relation joined twice
        }
        used[t] = true;
        inners.push(t);
    }
    // Exactly one relation remains: the outer operand of join 0.
    let mut remaining = (0..t_count).filter(|&t| !used[t]);
    let outer = remaining.next()?;
    if remaining.next().is_some() {
        return None;
    }
    let mut order = Vec::with_capacity(t_count);
    order.push(outer);
    order.extend(inners);
    JoinOrder::new(order, t_count)
}

/// Quality statistics of a sample set, in the terms of Tables 2 and 3.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleQuality {
    /// Fraction of reads decoding to a valid join order.
    pub valid_fraction: f64,
    /// Fraction of reads decoding to a cost-optimal join order.
    pub optimal_fraction: f64,
    /// The cheapest valid decoded order and its `C_out` cost, if any read
    /// was valid.
    pub best: Option<(JoinOrder, f64)>,
}

/// Assesses every sample against the query and a known optimal cost.
///
/// `optimal_cost` should come from [`crate::classical::dp_optimal`];
/// optimality is cost equality within relative tolerance `1e-9` (join
/// orders are typically degenerate, so comparing orders would undercount).
pub fn assess_samples(
    samples: &SampleSet,
    registry: &VarRegistry,
    query: &Query,
    optimal_cost: f64,
) -> SampleQuality {
    let mut valid_reads = 0u64;
    let mut optimal_reads = 0u64;
    let mut best: Option<(JoinOrder, f64)> = None;
    for s in samples.samples() {
        let Some(order) = decode_assignment(&s.assignment, registry, query) else {
            continue;
        };
        let cost = order.cost(query);
        valid_reads += u64::from(s.occurrences);
        if (cost - optimal_cost).abs() <= 1e-9 * optimal_cost.max(1.0) {
            optimal_reads += u64::from(s.occurrences);
        }
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((order, cost)),
        }
    }
    let total = samples.total_reads().max(1) as f64;
    SampleQuality {
        valid_fraction: valid_reads as f64 / total,
        optimal_fraction: optimal_reads as f64 / total,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::jo_milp::{build_milp, JoMilpConfig};
    use crate::query::Predicate;

    fn setup() -> (Query, VarRegistry) {
        let q =
            Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
        let milp = build_milp(&q, &JoMilpConfig::minimal(&q));
        (q, milp.registry)
    }

    fn with_tii(registry: &VarRegistry, pairs: &[(usize, usize)]) -> Vec<bool> {
        let mut x = vec![false; registry.len()];
        for &(t, j) in pairs {
            x[registry.get(JoVar::Tii { t, j }).unwrap()] = true;
        }
        x
    }

    #[test]
    fn decodes_valid_assignment() {
        let (q, reg) = setup();
        // inners: join0 = R1, join1 = R2 → order [R0, R1, R2].
        let x = with_tii(&reg, &[(1, 0), (2, 1)]);
        let order = decode_assignment(&x, &reg, &q).expect("valid");
        assert_eq!(order.order, vec![0, 1, 2]);
    }

    #[test]
    fn outer_relation_found_by_elimination() {
        let (q, reg) = setup();
        let x = with_tii(&reg, &[(0, 0), (1, 1)]);
        let order = decode_assignment(&x, &reg, &q).expect("valid");
        assert_eq!(order.order, vec![2, 0, 1]);
    }

    #[test]
    fn rejects_ambiguous_inner_operand() {
        let (q, reg) = setup();
        let x = with_tii(&reg, &[(0, 0), (1, 0), (2, 1)]);
        assert!(decode_assignment(&x, &reg, &q).is_none());
    }

    #[test]
    fn rejects_missing_inner_operand() {
        let (q, reg) = setup();
        let x = with_tii(&reg, &[(1, 0)]); // join 1 has no inner
        assert!(decode_assignment(&x, &reg, &q).is_none());
    }

    #[test]
    fn rejects_repeated_relation() {
        let (q, reg) = setup();
        let x = with_tii(&reg, &[(1, 0), (1, 1)]);
        assert!(decode_assignment(&x, &reg, &q).is_none());
    }

    #[test]
    fn constraint_violations_elsewhere_do_not_invalidate() {
        // Section 3.5: validity is judged on tii alone; flip a random cto
        // or pao bit and the decode must still succeed.
        let (q, reg) = setup();
        let mut x = with_tii(&reg, &[(1, 0), (2, 1)]);
        if let Some(i) = reg.get(JoVar::Cto { r: 0, j: 1 }) {
            x[i] = true;
        }
        assert!(decode_assignment(&x, &reg, &q).is_some());
    }

    #[test]
    fn assess_counts_weighted_fractions() {
        let (q, reg) = setup();
        let valid_opt = with_tii(&reg, &[(1, 0), (2, 1)]); // cost 101000 (optimal)
        let valid_subopt = with_tii(&reg, &[(1, 1), (2, 0)]); // [0,2,1]: cross product first
        let invalid = with_tii(&reg, &[(0, 0), (1, 0)]);
        let reads =
            vec![valid_opt.clone(), valid_opt.clone(), valid_subopt, invalid.clone(), invalid];
        // Route through the packed representation the samplers now emit, so
        // decode is exercised on the same path as the experiment pipeline.
        let shots = qjo_qubo::ShotBuffer::from_bit_vecs(&reads, reg.len());
        let set = SampleSet::from_shots(&shots, |_| 0.0);
        let quality = assess_samples(&set, &reg, &q, 101_000.0);
        assert!((quality.valid_fraction - 0.6).abs() < 1e-12);
        assert!((quality.optimal_fraction - 0.4).abs() < 1e-12);
        let (best, cost) = quality.best.expect("valid reads exist");
        assert_eq!(cost, 101_000.0);
        assert_eq!(best.order[2], 2);
    }

    #[test]
    fn empty_sample_set_scores_zero() {
        let (q, reg) = setup();
        let quality = assess_samples(&SampleSet::new(), &reg, &q, 1.0);
        assert_eq!(quality.valid_fraction, 0.0);
        assert_eq!(quality.optimal_fraction, 0.0);
        assert!(quality.best.is_none());
    }
}
