//! Human-readable reports on an encoded problem.
//!
//! `EXPLAIN` for the quantum optimiser: summarises what the encoder built —
//! variables by type, constraints by kind, threshold placement, penalty
//! weight, QUBO connectivity — and compares the realised qubit count
//! against the Theorem 5.3 bound. Intended for debugging encodings and for
//! examples/teaching material.

use std::fmt::Write as _;

use crate::bounds::qubit_upper_bound;
use crate::encode::JoQubo;
use crate::formulate::ConstraintKind;

/// Structured summary of an encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingSummary {
    /// Relations in the query.
    pub relations: usize,
    /// Predicates in the query.
    pub predicates: usize,
    /// Variable counts: `(tio, tii, pao, cto, slack)`.
    pub var_counts: (usize, usize, usize, usize, usize),
    /// Total logical qubits.
    pub qubits: usize,
    /// Theorem 5.3 upper bound for the same parameters.
    pub qubit_bound: usize,
    /// Constraint counts by kind, deterministically ordered.
    pub constraints: Vec<(&'static str, usize)>,
    /// The `log10 θ` thresholds used.
    pub log_thresholds: Vec<f64>,
    /// Penalty weight `A`.
    pub penalty_a: f64,
    /// QUBO couplings (non-zero quadratic terms).
    pub interactions: usize,
    /// Maximum degree of the QUBO graph.
    pub max_degree: usize,
}

/// Computes the summary of an encoding.
pub fn summarize(encoded: &JoQubo) -> EncodingSummary {
    let kinds = [
        (ConstraintKind::InnerOnce, "inner-operand uniqueness"),
        (ConstraintKind::OuterOnce, "first-outer uniqueness"),
        (ConstraintKind::Propagate, "operand propagation"),
        (ConstraintKind::OperandDisjoint, "operand disjointness"),
        (ConstraintKind::PredApplicable, "predicate applicability"),
        (ConstraintKind::CardThreshold, "cardinality thresholds"),
    ];
    let counts = encoded.milp.constraint_counts();
    let constraints =
        kinds.iter().map(|&(k, label)| (label, counts.get(&k).copied().unwrap_or(0))).collect();
    EncodingSummary {
        relations: encoded.query.num_relations(),
        predicates: encoded.query.num_predicates(),
        var_counts: encoded.registry.counts(),
        qubits: encoded.num_qubits(),
        qubit_bound: qubit_upper_bound(&encoded.query, encoded.log_thresholds.len(), 1.0).total(),
        constraints,
        log_thresholds: encoded.log_thresholds.clone(),
        penalty_a: encoded.penalty_a,
        interactions: encoded.qubo.num_interactions(),
        max_degree: encoded.qubo.degrees().into_iter().max().unwrap_or(0),
    }
}

/// Renders the summary as a report.
pub fn explain(encoded: &JoQubo) -> String {
    let s = summarize(encoded);
    let mut out = String::new();
    let _ = writeln!(out, "join-ordering encoding");
    let _ = writeln!(out, "  query: {} relations, {} predicates", s.relations, s.predicates);
    let (tio, tii, pao, cto, slack) = s.var_counts;
    let _ = writeln!(
        out,
        "  variables: {tio} tio + {tii} tii + {pao} pao + {cto} cto + {slack} slack = {} qubits",
        s.qubits
    );
    let _ = writeln!(out, "  Theorem 5.3 bound: ≤ {} qubits", s.qubit_bound);
    let _ = writeln!(out, "  constraints:");
    for (label, n) in &s.constraints {
        if *n > 0 {
            let _ = writeln!(out, "    {label:<26} {n}");
        }
    }
    let thetas: Vec<String> = s.log_thresholds.iter().map(|t| format!("10^{t}")).collect();
    let _ = writeln!(out, "  thresholds θ: {}", thetas.join(", "));
    let _ = writeln!(out, "  penalty A = {}", s.penalty_a);
    let _ = writeln!(out, "  QUBO: {} couplings, max degree {}", s.interactions, s.max_degree);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::JoEncoder;
    use crate::query::{Predicate, Query};

    fn paper_example() -> JoQubo {
        let q =
            Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
        JoEncoder::default().encode(&q)
    }

    #[test]
    fn summary_is_internally_consistent() {
        let enc = paper_example();
        let s = summarize(&enc);
        let (tio, tii, pao, cto, slack) = s.var_counts;
        assert_eq!(tio + tii + pao + cto + slack, s.qubits);
        assert!(s.qubits <= s.qubit_bound);
        assert_eq!(s.relations, 3);
        assert_eq!(s.predicates, 1);
        assert!(s.penalty_a > 0.0);
        assert!(s.interactions > 0);
        assert!(s.max_degree >= 2);
        // The pruned 3-relation model keeps exactly T operand-disjointness
        // constraints.
        let disjoint =
            s.constraints.iter().find(|(l, _)| *l == "operand disjointness").expect("kind present");
        assert_eq!(disjoint.1, 3);
    }

    #[test]
    fn report_mentions_every_section() {
        let enc = paper_example();
        let text = explain(&enc);
        for needle in [
            "3 relations",
            "tio",
            "slack",
            "Theorem 5.3",
            "inner-operand uniqueness",
            "thresholds θ",
            "penalty A",
            "QUBO:",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn zero_count_constraint_kinds_are_omitted_from_the_report() {
        // A 2-relation query has a single join: no propagation constraints.
        let q = Query::new(vec![1.0, 2.0], vec![]);
        let enc = JoEncoder::default().encode(&q);
        let text = explain(&enc);
        assert!(!text.contains("operand propagation"));
        assert!(!text.contains("predicate applicability"));
    }
}
