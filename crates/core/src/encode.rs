//! The end-to-end encoder: query → pruned MILP → BILP → QUBO.
//!
//! [`JoEncoder`] is the public entry point downstream backends consume: it
//! owns the knobs the paper trades off (threshold count = approximation
//! precision, ω = discretisation precision, pruning) and returns a
//! [`JoQubo`] bundle carrying the QUBO, the variable registry needed for
//! decoding, and the intermediate models for inspection.

use qjo_qubo::Qubo;

use crate::formulate::{
    auto_thresholds, bilp_to_qubo, build_milp, milp_to_bilp, quantile_thresholds, Bilp,
    JoMilpConfig, Milp, QuboEncodeConfig, VarRegistry,
};
use crate::query::Query;

/// How threshold values are chosen.
#[derive(Debug, Clone)]
pub enum ThresholdSpec {
    /// Place `count` thresholds evenly over the reachable range.
    Auto(usize),
    /// Place `count` thresholds at quantiles of the sampled distribution
    /// of intermediate cardinalities (better ranking fidelity per qubit).
    AutoQuantile {
        /// Number of thresholds.
        count: usize,
        /// Random join orders sampled to estimate the distribution.
        samples: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Explicit ascending `log10 θ_r` values.
    ExplicitLogs(Vec<f64>),
}

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct JoEncoder {
    /// Threshold selection (approximation precision).
    pub thresholds: ThresholdSpec,
    /// Discretisation precision ω for continuous slack.
    pub omega: f64,
    /// Use the pruned model (the paper's QPU-oriented variant).
    pub prune: bool,
    /// Penalty weight override (`None` = paper's `C/ω² + ε`).
    pub penalty_override: Option<f64>,
    /// Penalty safety margin ε.
    pub epsilon: f64,
}

impl Default for JoEncoder {
    fn default() -> Self {
        JoEncoder {
            thresholds: ThresholdSpec::Auto(1),
            omega: 1.0,
            prune: true,
            penalty_override: None,
            epsilon: 1.0,
        }
    }
}

/// The encoded problem bundle.
#[derive(Debug, Clone)]
pub struct JoQubo {
    /// The QUBO to hand to a QPU backend or classical solver.
    pub qubo: Qubo,
    /// Variable registry for decoding samples.
    pub registry: VarRegistry,
    /// The MILP stage (for Table 1 style inspection).
    pub milp: Milp,
    /// The BILP stage.
    pub bilp: Bilp,
    /// The `log10 θ_r` values used.
    pub log_thresholds: Vec<f64>,
    /// Penalty weight `A` applied to constraint violations.
    pub penalty_a: f64,
    /// The source query.
    pub query: Query,
}

impl JoQubo {
    /// Number of logical qubits the problem needs.
    pub fn num_qubits(&self) -> usize {
        self.qubo.num_vars()
    }

    /// Builds the exact BILP-feasible assignment encoding a join order —
    /// the inverse of [`crate::decode::decode_assignment`], including
    /// predicate/threshold indicators and slack bits. Useful for warm
    /// starts (e.g. reverse annealing from a classical solution).
    ///
    /// Returns `None` when a slack residual is not representable at the
    /// encoder's precision (possible for non-integer-log queries).
    pub fn assignment_for_order(&self, order: &crate::jointree::JoinOrder) -> Option<Vec<bool>> {
        use crate::formulate::vars::JoVar;
        let t_count = self.query.num_relations();
        let j_count = self.query.num_joins();
        if order.order.len() != t_count {
            return None;
        }
        let mut x = vec![false; self.num_qubits()];
        let set = |var: JoVar, x: &mut Vec<bool>| -> bool {
            match self.registry.get(var) {
                Some(idx) => {
                    x[idx] = true;
                    true
                }
                None => false,
            }
        };

        // Operand indicators: tio(t, j) for every prefix relation, tii for
        // the joined relation.
        for j in 0..j_count {
            for &rel in &order.order[..=j] {
                set(JoVar::Tio { t: rel, j }, &mut x);
            }
            if !set(JoVar::Tii { t: order.order[j + 1], j }, &mut x) {
                return None;
            }
        }
        // Predicate applicability: both endpoints inside the outer operand.
        for j in 1..j_count {
            let prefix: u64 = order.order[..=j].iter().map(|&r| 1u64 << r).sum();
            for (p, pred) in self.query.predicates().iter().enumerate() {
                if prefix >> pred.rel_a & 1 == 1 && prefix >> pred.rel_b & 1 == 1 {
                    set(JoVar::Pao { p, j }, &mut x);
                }
            }
            // Threshold indicators from the actual log cardinality.
            let c_j = self.query.log_card_of_set(prefix);
            for (r, &log_theta) in self.log_thresholds.iter().enumerate() {
                if c_j > log_theta + 1e-9 {
                    set(JoVar::Cto { r, j }, &mut x);
                }
            }
        }
        // Slack bits: exact residuals of every BILP row.
        for (row_idx, row) in self.bilp.rows.iter().enumerate() {
            let mut residual = row.rhs;
            let mut slack_terms: Vec<(usize, f64)> = Vec::new();
            for &(var, coef) in &row.terms {
                match self.registry.var(var) {
                    JoVar::Slack { .. } => slack_terms.push((var, coef)),
                    _ => {
                        if x[var] {
                            residual -= coef;
                        }
                    }
                }
            }
            if slack_terms.is_empty() {
                continue;
            }
            // Decompose the residual greedily over the (descending-weight)
            // slack bits; all weights are ω·2^i so greedy is exact.
            slack_terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for (var, coef) in slack_terms {
                if residual >= coef - 1e-9 {
                    x[var] = true;
                    residual -= coef;
                }
            }
            if residual.abs() > 1e-6 {
                return None; // not representable at this precision
            }
            let _ = row_idx;
        }
        Some(x)
    }
}

impl JoEncoder {
    /// Encodes a query.
    pub fn encode(&self, query: &Query) -> JoQubo {
        let log_thresholds = match &self.thresholds {
            ThresholdSpec::Auto(count) => auto_thresholds(query, *count),
            ThresholdSpec::AutoQuantile { count, samples, seed } => {
                quantile_thresholds(query, *count, *samples, *seed)
            }
            ThresholdSpec::ExplicitLogs(v) => v.clone(),
        };
        let milp_cfg = JoMilpConfig {
            log_thresholds: log_thresholds.clone(),
            omega: self.omega,
            prune: self.prune,
        };
        let milp = build_milp(query, &milp_cfg);
        let bilp = milp_to_bilp(&milp);
        let encoded = bilp_to_qubo(
            &bilp,
            &QuboEncodeConfig {
                omega: self.omega,
                epsilon: self.epsilon,
                penalty_override: self.penalty_override,
            },
        );
        JoQubo {
            qubo: encoded.qubo,
            registry: bilp.registry.clone(),
            milp,
            bilp,
            log_thresholds,
            penalty_a: encoded.penalty_a,
            query: query.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::dp_optimal;
    use crate::decode::decode_assignment;
    use crate::query::{Predicate, QueryGraph};
    use crate::querygen::QueryGenerator;
    use qjo_qubo::solve::{ExactSolver, SimulatedAnnealing};

    fn paper_example() -> Query {
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
    }

    #[test]
    fn encoding_produces_consistent_sizes() {
        let q = paper_example();
        let enc = JoEncoder::default().encode(&q);
        assert_eq!(enc.num_qubits(), enc.bilp.num_vars());
        assert_eq!(enc.registry.len(), enc.bilp.num_vars());
        assert!(enc.num_qubits() > enc.milp.registry.len(), "slack bits added");
        assert!(enc.penalty_a > 0.0);
    }

    #[test]
    fn exact_qubo_minimum_decodes_to_optimal_join_order() {
        // The global QUBO minimum must be a valid join order that is
        // optimal under the true cost (thresholds are fine enough here
        // that the staircase ranks the orders faithfully).
        let q = paper_example();
        let enc = JoEncoder {
            thresholds: ThresholdSpec::ExplicitLogs(vec![2.0, 3.0]),
            ..Default::default()
        }
        .encode(&q);
        let best = ExactSolver::new().solve(&enc.qubo).expect("fits in exact solver");
        let order = decode_assignment(&best.assignment, &enc.registry, &q)
            .expect("QUBO minimum must decode to a valid order");
        let (_, opt_cost) = dp_optimal(&q);
        assert!(
            (order.cost(&q) - opt_cost).abs() < 1e-9,
            "decoded cost {} vs optimum {opt_cost}",
            order.cost(&q)
        );
    }

    #[test]
    fn qubo_minimum_is_valid_across_random_queries() {
        for graph in [QueryGraph::Chain, QueryGraph::Cycle] {
            for seed in 0..3 {
                let q = QueryGenerator::paper_defaults(graph, 3).generate(seed);
                let enc = JoEncoder::default().encode(&q);
                if enc.num_qubits() > 26 {
                    continue; // exact solver budget
                }
                let best = ExactSolver::new().solve(&enc.qubo).expect("fits");
                let order = decode_assignment(&best.assignment, &enc.registry, &q);
                assert!(order.is_some(), "{graph:?} seed {seed}: invalid QUBO minimum");
            }
        }
    }

    #[test]
    fn simulated_annealing_solves_the_encoding() {
        let q = paper_example();
        let enc = JoEncoder::default().encode(&q);
        let sa = SimulatedAnnealing { restarts: 30, sweeps: 400, ..Default::default() }
            .solve(&enc.qubo)
            .expect("valid QUBO");
        let order = decode_assignment(&sa.assignment, &enc.registry, &q);
        assert!(order.is_some(), "SA ground state should decode");
    }

    #[test]
    fn qubit_counts_grow_with_predicates_and_precision() {
        // The paper's Section 4.1 observation: at 3 relations, both more
        // predicates and more precision raise the qubit count by ~3 each.
        let gen = QueryGenerator::paper_defaults(QueryGraph::Cycle, 3);
        let qubits_with_preds = |p: usize| {
            let q = gen.with_predicate_count(0, p);
            JoEncoder::default().encode(&q).num_qubits()
        };
        let base = qubits_with_preds(0);
        for p in 1..=3 {
            let n = qubits_with_preds(p);
            assert_eq!(n, base + 3 * p, "each predicate adds pao + two slack bits = 3 qubits");
        }

        let q = gen.with_predicate_count(0, 0);
        let qubits_at =
            |omega: f64| JoEncoder { omega, ..Default::default() }.encode(&q).num_qubits();
        assert!(qubits_at(0.1) > qubits_at(1.0));
        assert!(qubits_at(0.001) > qubits_at(0.1));
    }

    #[test]
    fn pruned_encoding_is_smaller_than_original() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Chain, 4).generate(0);
        let pruned = JoEncoder::default().encode(&q);
        let original = JoEncoder { prune: false, ..Default::default() }.encode(&q);
        assert!(pruned.num_qubits() < original.num_qubits());
    }

    #[test]
    fn assignment_for_order_is_feasible_and_round_trips() {
        use crate::jointree::JoinOrder;
        for graph in [QueryGraph::Chain, QueryGraph::Cycle] {
            for seed in 0..4 {
                let q = QueryGenerator::paper_defaults(graph, 4).generate(seed);
                let enc = JoEncoder { thresholds: ThresholdSpec::Auto(2), ..Default::default() }
                    .encode(&q);
                for perm in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]] {
                    let order = JoinOrder::new(perm.to_vec(), 4).unwrap();
                    let x = enc
                        .assignment_for_order(&order)
                        .expect("integer-log queries encode exactly");
                    // BILP-feasible: the QUBO energy equals the (pure)
                    // objective, with zero penalty.
                    assert!(
                        enc.bilp.feasible(&x, 1e-6),
                        "{graph:?} seed {seed} {perm:?} infeasible"
                    );
                    let energy = enc.qubo.energy(&x).unwrap();
                    let objective = enc.bilp.objective_value(&x);
                    assert!((energy - objective).abs() < 1e-6, "{energy} vs {objective}");
                    // And decoding inverts the encoding.
                    let decoded = crate::decode::decode_assignment(&x, &enc.registry, &q)
                        .expect("feasible assignments decode");
                    assert_eq!(decoded.order, perm.to_vec());
                }
            }
        }
    }

    #[test]
    fn explicit_thresholds_are_used_verbatim() {
        let q = paper_example();
        let enc = JoEncoder {
            thresholds: ThresholdSpec::ExplicitLogs(vec![1.5, 2.5]),
            ..Default::default()
        }
        .encode(&q);
        assert_eq!(enc.log_thresholds, vec![1.5, 2.5]);
    }
}
