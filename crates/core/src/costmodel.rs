//! Operator cost models beyond `C_out`.
//!
//! The paper restricts its quantum formulation to `C_out` (each extra cost
//! model needs more MILP variables, hence qubits — Section 3.1), but the
//! classical side of Trummer & Koch supports richer operators. These models
//! serve the classical baselines and let one quantify how much plan quality
//! the `C_out` restriction gives up.
//!
//! All costs are accumulated per join of a left-deep order:
//!
//! * [`CostModel::Out`] — `|intermediate result|` (the paper's `C_out`).
//! * [`CostModel::HashJoin`] — build + probe + result:
//!   `|inner| + |outer| + |result|`.
//! * [`CostModel::SortMergeJoin`] — sorting both operands plus the merge:
//!   `|o|·log₂|o| + |i|·log₂|i| + |result|`.

use crate::jointree::JoinOrder;
use crate::query::Query;

/// A per-join cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// The paper's `C_out`: sum of intermediate result cardinalities.
    Out,
    /// Hash join: build the inner's hash table, probe with the outer.
    HashJoin,
    /// Sort–merge join: sort both operands, merge.
    SortMergeJoin,
}

impl CostModel {
    /// Cost of one join given log10 cardinalities of the outer operand,
    /// inner relation, and join result.
    pub fn join_cost(&self, log_outer: f64, log_inner: f64, log_result: f64) -> f64 {
        let outer = 10f64.powf(log_outer);
        let inner = 10f64.powf(log_inner);
        let result = 10f64.powf(log_result);
        match self {
            CostModel::Out => result,
            CostModel::HashJoin => inner + outer + result,
            CostModel::SortMergeJoin => {
                let nlogn = |n: f64| if n <= 1.0 { 0.0 } else { n * n.log2() };
                nlogn(outer) + nlogn(inner) + result
            }
        }
    }

    /// Total cost of a left-deep order under this model.
    pub fn order_cost(&self, order: &JoinOrder, query: &Query) -> f64 {
        let mut total = 0.0;
        let mut prefix: u64 = 1 << order.order[0];
        for &rel in &order.order[1..] {
            let log_outer = query.log_card_of_set(prefix);
            let log_inner = query.log_card(rel);
            prefix |= 1 << rel;
            let log_result = query.log_card_of_set(prefix);
            total += self.join_cost(log_outer, log_inner, log_result);
        }
        total
    }
}

/// Exact left-deep optimum under an arbitrary cost model, by subset DP
/// (valid: per-join cost depends only on the joined set and the next
/// relation, so Bellman's principle applies).
pub fn dp_optimal_with(query: &Query, model: CostModel) -> (JoinOrder, f64) {
    let t = query.num_relations();
    assert!(t <= 28, "subset DP beyond 28 relations is impractical");
    let size = 1usize << t;
    let mut best_cost = vec![f64::INFINITY; size];
    let mut best_last = vec![usize::MAX; size];
    for r in 0..t {
        best_cost[1usize << r] = 0.0;
        best_last[1usize << r] = r;
    }
    for set in 1..size as u64 {
        if set.count_ones() < 2 {
            continue;
        }
        let log_result = query.log_card_of_set(set);
        let mut rest = set;
        while rest != 0 {
            let r = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let prev = set & !(1u64 << r);
            let log_outer = query.log_card_of_set(prev);
            let step = model.join_cost(log_outer, query.log_card(r), log_result);
            let cand = best_cost[prev as usize] + step;
            if cand < best_cost[set as usize] {
                best_cost[set as usize] = cand;
                best_last[set as usize] = r;
            }
        }
    }
    let full = (1u64 << t) - 1;
    let mut order = Vec::with_capacity(t);
    let mut set = full;
    while set != 0 {
        let last = best_last[set as usize];
        order.push(last);
        set &= !(1u64 << last);
    }
    order.reverse();
    (JoinOrder::new(order, t).expect("DP builds a permutation"), best_cost[full as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::dp_optimal;
    use crate::query::{Predicate, QueryGraph};
    use crate::querygen::QueryGenerator;

    fn example() -> Query {
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
    }

    #[test]
    fn out_model_matches_join_order_cost() {
        let q = example();
        for perm in [[0, 1, 2], [0, 2, 1], [2, 0, 1]] {
            let order = JoinOrder::new(perm.to_vec(), 3).unwrap();
            assert!((CostModel::Out.order_cost(&order, &q) - order.cost(&q)).abs() < 1e-9);
        }
    }

    #[test]
    fn hash_join_adds_build_and_probe_costs() {
        // One join: outer 100, inner 100, sel 0.1 → result 1000.
        let q = Query::new(vec![2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
        let order = JoinOrder::new(vec![0, 1], 2).unwrap();
        assert_eq!(CostModel::Out.order_cost(&order, &q), 1_000.0);
        assert_eq!(CostModel::HashJoin.order_cost(&order, &q), 100.0 + 100.0 + 1_000.0);
        let smj = CostModel::SortMergeJoin.order_cost(&order, &q);
        let expected = 2.0 * 100.0 * 100f64.log2() + 1_000.0;
        assert!((smj - expected).abs() < 1e-9);
    }

    #[test]
    fn dp_with_out_model_agrees_with_plain_dp() {
        for seed in 0..5 {
            let q = QueryGenerator::paper_defaults(QueryGraph::Cycle, 6).generate(seed);
            let (_, a) = dp_optimal(&q);
            let (_, b) = dp_optimal_with(&q, CostModel::Out);
            assert!((a - b).abs() / a < 1e-9, "seed {seed}: {a} vs {b}");
        }
    }

    #[test]
    fn dp_is_optimal_for_every_model_by_brute_force() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Chain, 5).generate(1);
        for model in [CostModel::Out, CostModel::HashJoin, CostModel::SortMergeJoin] {
            let (order, cost) = dp_optimal_with(&q, model);
            assert!((model.order_cost(&order, &q) - cost).abs() / cost < 1e-9);
            // Brute force over all 120 permutations.
            let mut perm: Vec<usize> = (0..5).collect();
            let mut best = f64::INFINITY;
            permute(&mut perm, 0, &mut |p| {
                let c = model.order_cost(&JoinOrder { order: p.to_vec() }, &q);
                if c < best {
                    best = c;
                }
            });
            assert!((cost - best).abs() / best < 1e-9, "{model:?}: {cost} vs {best}");
        }
    }

    fn permute<F: FnMut(&[usize])>(p: &mut Vec<usize>, k: usize, f: &mut F) {
        if k == p.len() {
            f(p);
            return;
        }
        for i in k..p.len() {
            p.swap(k, i);
            permute(p, k + 1, f);
            p.swap(k, i);
        }
    }

    #[test]
    fn models_can_prefer_different_orders() {
        // Cost models weigh operands differently; verify they at least
        // produce valid (possibly different) optima on a skewed instance.
        let q = Query::new(
            vec![1.0, 4.0, 3.0],
            vec![
                Predicate { rel_a: 0, rel_b: 1, log_sel: -2.0 },
                Predicate { rel_a: 1, rel_b: 2, log_sel: -1.0 },
            ],
        );
        for model in [CostModel::Out, CostModel::HashJoin, CostModel::SortMergeJoin] {
            let (order, cost) = dp_optimal_with(&q, model);
            assert_eq!(order.order.len(), 3);
            assert!(cost.is_finite() && cost > 0.0);
        }
    }
}
