//! Typed formulation variables and the registry mapping them to dense
//! indices (and therefore to qubits — each binary variable costs exactly
//! one qubit, Section 3.4 of the paper).

use std::collections::HashMap;

/// A variable of the join-ordering formulation.
///
/// Names follow the paper (and Trummer & Koch): `tio`/`tii` mark a table as
/// part of the outer/inner operand of a join, `pao` marks a predicate as
/// applicable in an outer operand, `cto` marks a cardinality threshold as
/// reached, and `Slack` bits discretise inequality slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JoVar {
    /// Table `t` is in the outer operand of join `j`.
    Tio {
        /// Relation index.
        t: usize,
        /// Join index.
        j: usize,
    },
    /// Table `t` is the inner operand of join `j`.
    Tii {
        /// Relation index.
        t: usize,
        /// Join index.
        j: usize,
    },
    /// Predicate `p` is applicable in the outer operand of join `j`.
    Pao {
        /// Predicate index.
        p: usize,
        /// Join index.
        j: usize,
    },
    /// The outer operand of join `j` exceeds cardinality threshold `r`.
    Cto {
        /// Threshold index.
        r: usize,
        /// Join index.
        j: usize,
    },
    /// Bit `bit` of the binary slack expansion of constraint `constraint`.
    Slack {
        /// Index of the inequality constraint the slack belongs to.
        constraint: usize,
        /// Bit position (value `ω · 2^bit`).
        bit: usize,
    },
}

impl std::fmt::Display for JoVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoVar::Tio { t, j } => write!(f, "tio[{t},{j}]"),
            JoVar::Tii { t, j } => write!(f, "tii[{t},{j}]"),
            JoVar::Pao { p, j } => write!(f, "pao[{p},{j}]"),
            JoVar::Cto { r, j } => write!(f, "cto[{r},{j}]"),
            JoVar::Slack { constraint, bit } => write!(f, "slack[{constraint}.{bit}]"),
        }
    }
}

/// Bidirectional map between [`JoVar`]s and dense variable indices.
#[derive(Debug, Clone, Default)]
pub struct VarRegistry {
    vars: Vec<JoVar>,
    index: HashMap<JoVar, usize>,
}

impl VarRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        VarRegistry::default()
    }

    /// Interns `var`, returning its (new or existing) index.
    pub fn intern(&mut self, var: JoVar) -> usize {
        if let Some(&i) = self.index.get(&var) {
            return i;
        }
        let i = self.vars.len();
        self.vars.push(var);
        self.index.insert(var, i);
        i
    }

    /// Index of `var` if present.
    pub fn get(&self, var: JoVar) -> Option<usize> {
        self.index.get(&var).copied()
    }

    /// The variable at index `i`.
    pub fn var(&self, i: usize) -> JoVar {
        self.vars[i]
    }

    /// Number of registered variables (= qubits).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variable is registered.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// All variables in index order.
    pub fn vars(&self) -> &[JoVar] {
        &self.vars
    }

    /// Counts variables by kind: `(tio, tii, pao, cto, slack)`.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for v in &self.vars {
            match v {
                JoVar::Tio { .. } => c.0 += 1,
                JoVar::Tii { .. } => c.1 += 1,
                JoVar::Pao { .. } => c.2 += 1,
                JoVar::Cto { .. } => c.3 += 1,
                JoVar::Slack { .. } => c.4 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut reg = VarRegistry::new();
        let a = reg.intern(JoVar::Tio { t: 0, j: 1 });
        let b = reg.intern(JoVar::Tii { t: 0, j: 1 });
        let a2 = reg.intern(JoVar::Tio { t: 0, j: 1 });
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn lookup_round_trips() {
        let mut reg = VarRegistry::new();
        let v = JoVar::Pao { p: 2, j: 3 };
        let i = reg.intern(v);
        assert_eq!(reg.get(v), Some(i));
        assert_eq!(reg.var(i), v);
        assert_eq!(reg.get(JoVar::Cto { r: 0, j: 0 }), None);
    }

    #[test]
    fn counts_by_kind() {
        let mut reg = VarRegistry::new();
        reg.intern(JoVar::Tio { t: 0, j: 0 });
        reg.intern(JoVar::Tio { t: 1, j: 0 });
        reg.intern(JoVar::Tii { t: 0, j: 0 });
        reg.intern(JoVar::Slack { constraint: 0, bit: 0 });
        assert_eq!(reg.counts(), (2, 1, 0, 0, 1));
    }

    #[test]
    fn display_names_match_paper_conventions() {
        assert_eq!(JoVar::Tio { t: 1, j: 2 }.to_string(), "tio[1,2]");
        assert_eq!(JoVar::Cto { r: 0, j: 1 }.to_string(), "cto[0,1]");
        assert_eq!(JoVar::Slack { constraint: 3, bit: 1 }.to_string(), "slack[3.1]");
    }
}
