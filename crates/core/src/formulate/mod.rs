//! The paper's reformulation chain: JO → MILP → BILP → QUBO (Section 3).

pub mod bilp;
pub mod bilp_solve;
pub mod jo_milp;
pub mod milp;
pub mod qubo_encode;
pub mod vars;

pub use bilp::{milp_to_bilp, slack_bits, Bilp, BilpRow};
pub use bilp_solve::{BilpSolution, BilpSolver};
pub use jo_milp::{auto_thresholds, build_milp, quantile_thresholds, JoMilpConfig};
pub use milp::{Constraint, ConstraintKind, Milp, Sense};
pub use qubo_encode::{bilp_to_qubo, EncodedQubo, QuboEncodeConfig};
pub use vars::{JoVar, VarRegistry};
