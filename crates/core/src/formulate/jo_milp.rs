//! The join-ordering MILP models: Trummer & Koch's original formulation and
//! the paper's pruned variant (Section 3.2, Table 1).
//!
//! Both models optimise left-deep join trees with cross products under the
//! `C_out` cost function, approximating intermediate cardinalities by
//! threshold variables in the logarithmic domain. The pruned model removes
//! the variables and constraints that are redundant for QPU execution:
//! `pao(p,0)` (the first outer operand is a single relation), `cto(r,0)`
//! (only intermediates are costed), operand-disjointness constraints for
//! all but the final join, and any `cto(r,j)` whose threshold can never be
//! exceeded (`c_j_max ≤ log θ_r`).

use crate::formulate::milp::{Constraint, ConstraintKind, Milp};
use crate::formulate::vars::{JoVar, VarRegistry};
use crate::query::Query;

/// Configuration of the MILP construction.
#[derive(Debug, Clone)]
pub struct JoMilpConfig {
    /// Ascending `log10 θ_r` threshold values.
    pub log_thresholds: Vec<f64>,
    /// Discretisation precision ω for continuous slack variables.
    pub omega: f64,
    /// Build the pruned (paper) model instead of the original one.
    pub prune: bool,
}

impl JoMilpConfig {
    /// The paper's minimal evaluation setting: one auto-placed threshold,
    /// ω = 1 (zero decimal places), pruning on.
    pub fn minimal(query: &Query) -> Self {
        JoMilpConfig { log_thresholds: auto_thresholds(query, 1), omega: 1.0, prune: true }
    }
}

/// Evenly spaces `count` threshold values over the reachable range of
/// intermediate log cardinalities, rounding to integers for integer-log
/// queries (which keeps ω = 1 exact).
pub fn auto_thresholds(query: &Query, count: usize) -> Vec<f64> {
    assert!(count >= 1, "need at least one threshold");
    let j_last = query.num_joins() - 1;
    let c_max = query.max_outer_log_card(j_last);
    let mut out = Vec::with_capacity(count);
    for r in 0..count {
        let mut v = c_max * (r + 1) as f64 / (count + 1) as f64;
        if query.is_integer_log() {
            v = v.round().max(1.0);
        }
        // Keep thresholds strictly increasing even after rounding.
        if let Some(&prev) = out.last() {
            if v <= prev {
                v = prev + 1.0;
            }
        }
        out.push(v);
    }
    out
}

/// Places `count` thresholds at quantiles of the *actual* distribution of
/// intermediate log cardinalities, estimated by sampling random join
/// orders. Spends the same qubit budget as [`auto_thresholds`] but
/// concentrates resolution where join orders actually differ, improving
/// the staircase's ranking fidelity — an encoding-level extension beyond
/// the paper's even spacing.
pub fn quantile_thresholds(query: &Query, count: usize, samples: usize, seed: u64) -> Vec<f64> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(count >= 1, "need at least one threshold");
    assert!(samples >= 1, "need at least one sampled order");
    let t = query.num_relations();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut observed = Vec::with_capacity(samples * t.saturating_sub(2));
    let mut order: Vec<usize> = (0..t).collect();
    for _ in 0..samples {
        order.shuffle(&mut rng);
        let mut prefix: u64 = 1 << order[0];
        // Intermediates: outer operands of joins 1..J (prefix sizes 2..T−1).
        for &rel in &order[1..t - 1] {
            prefix |= 1 << rel;
            observed.push(query.log_card_of_set(prefix));
        }
    }
    if observed.is_empty() {
        return auto_thresholds(query, count);
    }
    observed.sort_by(|a, b| a.partial_cmp(b).expect("finite logs"));
    let mut out: Vec<f64> = Vec::with_capacity(count);
    for r in 0..count {
        let q = (r + 1) as f64 / (count + 1) as f64;
        let idx = ((observed.len() - 1) as f64 * q).round() as usize;
        let mut v = observed[idx];
        if query.is_integer_log() {
            v = v.round().max(1.0);
        }
        if let Some(&prev) = out.last() {
            if v <= prev {
                v = prev + 1.0;
            }
        }
        out.push(v);
    }
    out
}

/// Builds the join-ordering MILP.
pub fn build_milp(query: &Query, config: &JoMilpConfig) -> Milp {
    let _span = qjo_obs::span!("formulate.milp");
    qjo_obs::counter!("formulate.milps").incr();
    let t_count = query.num_relations();
    let j_count = query.num_joins();
    let p_count = query.num_predicates();
    let r_count = config.log_thresholds.len();
    assert!(config.omega > 0.0, "ω must be positive");
    assert!(
        config.log_thresholds.windows(2).all(|w| w[0] < w[1]),
        "thresholds must be strictly ascending"
    );

    let mut reg = VarRegistry::new();
    for j in 0..j_count {
        for t in 0..t_count {
            reg.intern(JoVar::Tio { t, j });
            reg.intern(JoVar::Tii { t, j });
        }
    }
    let pao_j_start = usize::from(config.prune);
    for j in pao_j_start..j_count {
        for p in 0..p_count {
            reg.intern(JoVar::Pao { p, j });
        }
    }
    for j in pao_j_start..j_count {
        let c_j_max = query.max_outer_log_card(j);
        for (r, &log_theta) in config.log_thresholds.iter().enumerate() {
            if config.prune && c_j_max <= log_theta + 1e-12 {
                continue; // Lemma 5.2 pruning: threshold unreachable.
            }
            reg.intern(JoVar::Cto { r, j });
        }
    }

    let tio = |reg: &VarRegistry, t: usize, j: usize| {
        reg.get(JoVar::Tio { t, j }).expect("tio interned for all t, j")
    };
    let tii = |reg: &VarRegistry, t: usize, j: usize| {
        reg.get(JoVar::Tii { t, j }).expect("tii interned for all t, j")
    };

    let mut constraints = Vec::new();

    // Each join has exactly one inner relation.
    for j in 0..j_count {
        let terms = (0..t_count).map(|t| (tii(&reg, t, j), 1.0)).collect();
        constraints.push(Constraint::eq(ConstraintKind::InnerOnce, terms, 1.0));
    }
    // The first join has exactly one outer relation.
    let terms = (0..t_count).map(|t| (tio(&reg, t, 0), 1.0)).collect();
    constraints.push(Constraint::eq(ConstraintKind::OuterOnce, terms, 1.0));
    // Once joined, always in the outer operand (Eq. 3).
    for j in 1..j_count {
        for t in 0..t_count {
            constraints.push(Constraint::eq(
                ConstraintKind::Propagate,
                vec![
                    (tio(&reg, t, j), 1.0),
                    (tii(&reg, t, j - 1), -1.0),
                    (tio(&reg, t, j - 1), -1.0),
                ],
                0.0,
            ));
        }
    }
    // Operand disjointness (Eq. 4): pruned model needs only the final join.
    let disjoint_joins: Vec<usize> =
        if config.prune { vec![j_count - 1] } else { (0..j_count).collect() };
    for &j in &disjoint_joins {
        for t in 0..t_count {
            constraints.push(Constraint::le(
                ConstraintKind::OperandDisjoint,
                vec![(tio(&reg, t, j), 1.0), (tii(&reg, t, j), 1.0)],
                1.0,
                1.0,
                1.0,
            ));
        }
    }
    // Predicate applicability (Eq. 5).
    for j in pao_j_start..j_count {
        for (p, pred) in query.predicates().iter().enumerate() {
            let pao = reg.get(JoVar::Pao { p, j }).expect("pao interned");
            for rel in [pred.rel_a, pred.rel_b] {
                constraints.push(Constraint::le(
                    ConstraintKind::PredApplicable,
                    vec![(pao, 1.0), (tio(&reg, rel, j), -1.0)],
                    0.0,
                    1.0,
                    1.0,
                ));
            }
        }
    }
    // Cardinality threshold activation (Eq. 7): `c_j − cto·∞ ≤ log θ_r`,
    // with ∞ at its Lemma-5.1 lower bound and slack bounded by c_j_max.
    let mut objective = Vec::new();
    for j in pao_j_start..j_count {
        let c_j_max = query.max_outer_log_card(j);
        for (r, &log_theta) in config.log_thresholds.iter().enumerate() {
            let Some(cto) = reg.get(JoVar::Cto { r, j }) else {
                continue; // pruned away
            };
            let infinity = (c_j_max - log_theta).max(config.omega);
            let mut terms: Vec<(usize, f64)> = (0..t_count)
                .filter(|&t| query.log_card(t) != 0.0)
                .map(|t| (tio(&reg, t, j), query.log_card(t)))
                .collect();
            for (p, pred) in query.predicates().iter().enumerate() {
                if pred.log_sel != 0.0 {
                    let pao = reg.get(JoVar::Pao { p, j }).expect("pao interned");
                    terms.push((pao, pred.log_sel));
                }
            }
            terms.push((cto, -infinity));
            constraints.push(Constraint::le(
                ConstraintKind::CardThreshold,
                terms,
                log_theta,
                c_j_max,
                config.omega,
            ));
            objective.push((cto, 10f64.powf(log_theta)));
        }
    }

    let _ = r_count;
    Milp { registry: reg, constraints, objective }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, QueryGraph};
    use crate::querygen::QueryGenerator;

    fn paper_example() -> Query {
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
    }

    fn counts(m: &Milp, kind: ConstraintKind) -> usize {
        m.constraint_counts().get(&kind).copied().unwrap_or(0)
    }

    #[test]
    fn pruned_variable_counts_match_table_1() {
        // T = 3, J = 2, P = 1, R = 2 (thresholds log 2 and log 3).
        let q = paper_example();
        let cfg = JoMilpConfig { log_thresholds: vec![2.0, 3.0], omega: 1.0, prune: true };
        let m = build_milp(&q, &cfg);
        let (tio, tii, pao, cto, _) = m.registry.counts();
        assert_eq!(tio, 6); // T·J
        assert_eq!(tii, 6);
        assert_eq!(pao, 1); // P(J−1)
                            // c_1_max = 4 > both thresholds → both cto survive.
        assert_eq!(cto, 2);
        assert_eq!(counts(&m, ConstraintKind::OperandDisjoint), 3); // T
        assert_eq!(counts(&m, ConstraintKind::PredApplicable), 2); // 2P(J−1)
        assert_eq!(counts(&m, ConstraintKind::CardThreshold), 2);
        assert_eq!(counts(&m, ConstraintKind::InnerOnce), 2); // J
        assert_eq!(counts(&m, ConstraintKind::OuterOnce), 1);
        assert_eq!(counts(&m, ConstraintKind::Propagate), 3); // T(J−1)
    }

    #[test]
    fn original_model_is_strictly_larger() {
        let q = paper_example();
        let thresholds = vec![2.0, 3.0];
        let pruned = build_milp(
            &q,
            &JoMilpConfig { log_thresholds: thresholds.clone(), omega: 1.0, prune: true },
        );
        let original =
            build_milp(&q, &JoMilpConfig { log_thresholds: thresholds, omega: 1.0, prune: false });
        // Table 1's accounting: pao PJ vs P(J−1); cto RJ vs ≤R(J−1);
        // disjointness TJ vs T; predicate constraints 2PJ vs 2P(J−1).
        let (_, _, pao_o, cto_o, _) = original.registry.counts();
        let (_, _, pao_p, cto_p, _) = pruned.registry.counts();
        assert_eq!(pao_o, 2); // P·J
        assert_eq!(pao_p, 1);
        assert_eq!(cto_o, 4); // R·J
        assert_eq!(cto_p, 2);
        assert_eq!(counts(&original, ConstraintKind::OperandDisjoint), 6); // T·J
        assert_eq!(counts(&original, ConstraintKind::PredApplicable), 4); // 2PJ
        assert_eq!(counts(&original, ConstraintKind::CardThreshold), 4); // RJ
    }

    #[test]
    fn cto_pruning_drops_unreachable_thresholds() {
        // Threshold at log 10 can never be exceeded (c_1_max = 4).
        let q = paper_example();
        let cfg = JoMilpConfig { log_thresholds: vec![2.0, 10.0], omega: 1.0, prune: true };
        let m = build_milp(&q, &cfg);
        let (_, _, _, cto, _) = m.registry.counts();
        assert_eq!(cto, 1);
        assert_eq!(counts(&m, ConstraintKind::CardThreshold), 1);
    }

    #[test]
    fn valid_join_order_assignment_is_feasible() {
        // Encode (R0 ⋈ R1) ⋈ R2 by hand and check feasibility + objective.
        let q = paper_example();
        let cfg = JoMilpConfig { log_thresholds: vec![2.0, 3.0], omega: 1.0, prune: true };
        let m = build_milp(&q, &cfg);
        let mut x = vec![false; m.registry.len()];
        let set = |x: &mut Vec<bool>, v: JoVar| x[m.registry.get(v).expect("var")] = true;
        set(&mut x, JoVar::Tio { t: 0, j: 0 }); // outer of join 0 = R0
        set(&mut x, JoVar::Tii { t: 1, j: 0 }); // inner of join 0 = R1
        set(&mut x, JoVar::Tio { t: 0, j: 1 });
        set(&mut x, JoVar::Tio { t: 1, j: 1 });
        set(&mut x, JoVar::Tii { t: 2, j: 1 }); // inner of join 1 = R2
        set(&mut x, JoVar::Pao { p: 0, j: 1 }); // predicate applies
        set(&mut x, JoVar::Cto { r: 0, j: 1 }); // c_1 = 3 > log θ0 = 2
        assert!(m.feasible(&x), "hand-built optimal assignment must be feasible");
        // Example 3.3: only θ0 = 100 is charged.
        assert_eq!(m.objective_value(&x), 100.0);

        // Without cto(0,1) the cardinality constraint is violated.
        x[m.registry.get(JoVar::Cto { r: 0, j: 1 }).unwrap()] = false;
        assert!(!m.feasible(&x));
    }

    #[test]
    fn invalid_assignments_are_infeasible() {
        let q = paper_example();
        let m = build_milp(&q, &JoMilpConfig::minimal(&q));
        // All-zero violates the "exactly one" constraints.
        let x = vec![false; m.registry.len()];
        assert!(!m.feasible(&x));
        // Two inner relations for join 0.
        let mut x = vec![false; m.registry.len()];
        x[m.registry.get(JoVar::Tii { t: 0, j: 0 }).unwrap()] = true;
        x[m.registry.get(JoVar::Tii { t: 1, j: 0 }).unwrap()] = true;
        assert!(!m.feasible(&x));
    }

    #[test]
    fn auto_thresholds_are_ascending_and_integral_for_integer_logs() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Cycle, 5).generate(1);
        for count in 1..=5 {
            let th = auto_thresholds(&q, count);
            assert_eq!(th.len(), count);
            assert!(th.windows(2).all(|w| w[0] < w[1]), "{th:?}");
            assert!(th.iter().all(|&v| (v - v.round()).abs() < 1e-9), "{th:?}");
        }
    }

    #[test]
    fn quantile_thresholds_are_ascending_and_in_range() {
        let q = QueryGenerator::paper_defaults(QueryGraph::Cycle, 6).generate(2);
        let c_max = q.max_outer_log_card(q.num_joins() - 1);
        for count in 1..=5 {
            let th = quantile_thresholds(&q, count, 200, 1);
            assert_eq!(th.len(), count);
            assert!(th.windows(2).all(|w| w[0] < w[1]), "{th:?}");
            assert!(th.iter().all(|&v| v >= 1.0 && v <= c_max + count as f64));
        }
    }

    #[test]
    fn quantile_thresholds_track_the_observed_distribution() {
        // One huge relation among tiny ones: most random prefixes contain
        // it, so intermediate log cardinalities cluster near the top and
        // the middle quantile threshold must sit near the empirical median
        // — not at the midpoint of [0, c_max] where even spacing puts it.
        let q = Query::new(vec![1.0, 1.0, 1.0, 1.0, 8.0], vec![]);
        let quant = quantile_thresholds(&q, 3, 400, 0);

        // Empirical median of intermediates by enumeration: prefix sets of
        // sizes 2..4, weighted by how many random orders realise them —
        // approximate with a direct large sample.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut obs = Vec::new();
        let mut order: Vec<usize> = (0..5).collect();
        for _ in 0..2000 {
            order.shuffle(&mut rng);
            let mut prefix: u64 = 1 << order[0];
            for &rel in &order[1..4] {
                prefix |= 1 << rel;
                obs.push(q.log_card_of_set(prefix));
            }
        }
        obs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = obs[obs.len() / 2];
        assert!(
            (quant[1] - median).abs() <= 1.0,
            "middle threshold {} far from empirical median {median}",
            quant[1]
        );
        // And the even placement's midpoint (c_max/2 = 5.5) is far away,
        // demonstrating the two strategies genuinely differ here.
        assert!((5.5 - median).abs() > 1.5);
    }

    #[test]
    fn quantile_thresholds_rank_orders_at_least_as_well() {
        // Staircase ranking fidelity: fraction of order pairs whose true
        // cost ordering the threshold cost preserves (strictly).
        use crate::jointree::JoinOrder;
        let q = Query::new(
            vec![1.0, 2.0, 1.0, 3.0],
            vec![
                crate::query::Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 },
                crate::query::Predicate { rel_a: 1, rel_b: 3, log_sel: -2.0 },
            ],
        );
        let orders: Vec<JoinOrder> = {
            let mut v = Vec::new();
            let mut perm: Vec<usize> = (0..4).collect();
            permute(&mut perm, 0, &mut |p| {
                v.push(JoinOrder { order: p.to_vec() });
            });
            v
        };
        let fidelity = |thresholds: &[f64]| -> f64 {
            let mut agree = 0usize;
            let mut total = 0usize;
            for a in 0..orders.len() {
                for b in a + 1..orders.len() {
                    let (ca, cb) = (orders[a].cost(&q), orders[b].cost(&q));
                    if (ca - cb).abs() < 1e-9 {
                        continue;
                    }
                    total += 1;
                    let (ta, tb) = (
                        orders[a].threshold_cost(&q, thresholds),
                        orders[b].threshold_cost(&q, thresholds),
                    );
                    if (ca < cb) == (ta < tb) && (ta - tb).abs() > 1e-12 {
                        agree += 1;
                    }
                }
            }
            agree as f64 / total.max(1) as f64
        };
        let even = fidelity(&auto_thresholds(&q, 2));
        let quant = fidelity(&quantile_thresholds(&q, 2, 500, 3));
        assert!(quant >= even - 1e-9, "quantile fidelity {quant:.3} below even {even:.3}");
    }

    fn permute<F: FnMut(&[usize])>(p: &mut Vec<usize>, k: usize, f: &mut F) {
        if k == p.len() {
            f(p);
            return;
        }
        for i in k..p.len() {
            p.swap(k, i);
            permute(p, k + 1, f);
            p.swap(k, i);
        }
    }

    #[test]
    fn model_scales_with_query_size() {
        let small = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(0);
        let large = QueryGenerator::paper_defaults(QueryGraph::Chain, 8).generate(0);
        let ms = build_milp(&small, &JoMilpConfig::minimal(&small));
        let ml = build_milp(&large, &JoMilpConfig::minimal(&large));
        assert!(ml.registry.len() > 3 * ms.registry.len());
        assert!(ml.constraints.len() > 3 * ms.constraints.len());
    }
}
