//! MILP → BILP conversion (Section 3.3).
//!
//! Inequalities become equalities by adding slack; continuous slack is
//! approximated by `n = ⌊log₂(C/ω)⌋ + 1` binary variables at precision ω
//! (Equation 9), where `C` is the slack bound carried by each constraint
//! (Lemma 5.1 supplies `c_j_max` for the cardinality constraints). The
//! result is a pure binary program with equality constraints only, ready
//! for the Lucas-style QUBO transformation.

use crate::formulate::milp::{Milp, Sense};
use crate::formulate::vars::{JoVar, VarRegistry};

/// One equality row `Σ terms = rhs` of the BILP system `S x = b`.
#[derive(Debug, Clone, PartialEq)]
pub struct BilpRow {
    /// `(variable index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
}

impl BilpRow {
    /// Residual `lhs − rhs` at a binary assignment.
    pub fn residual(&self, x: &[bool]) -> f64 {
        let lhs: f64 = self.terms.iter().map(|&(i, c)| if x[i] { c } else { 0.0 }).sum();
        lhs - self.rhs
    }
}

/// A binary integer linear program with equality constraints.
#[derive(Debug, Clone)]
pub struct Bilp {
    /// Variable registry (original variables plus slack bits).
    pub registry: VarRegistry,
    /// Equality rows.
    pub rows: Vec<BilpRow>,
    /// Linear objective to minimise.
    pub objective: Vec<(usize, f64)>,
}

impl Bilp {
    /// Number of binary variables (= logical qubits).
    pub fn num_vars(&self) -> usize {
        self.registry.len()
    }

    /// Objective value at an assignment.
    pub fn objective_value(&self, x: &[bool]) -> f64 {
        self.objective.iter().map(|&(i, c)| if x[i] { c } else { 0.0 }).sum()
    }

    /// True when every row holds within `tol`.
    pub fn feasible(&self, x: &[bool], tol: f64) -> bool {
        self.rows.iter().all(|r| r.residual(x).abs() <= tol)
    }
}

/// Number of binary slack bits for a slack bounded by `bound` at
/// precision `omega` (Equation 9). At least one bit is always emitted so
/// the inequality keeps a degree of freedom.
pub fn slack_bits(bound: f64, omega: f64) -> usize {
    assert!(omega > 0.0, "precision must be positive");
    if bound <= omega {
        return 1;
    }
    ((bound / omega).log2().floor() as usize) + 1
}

/// Converts a (binary-variable) MILP into a BILP.
pub fn milp_to_bilp(milp: &Milp) -> Bilp {
    let _span = qjo_obs::span!("formulate.bilp");
    let mut registry = milp.registry.clone();
    let mut rows = Vec::with_capacity(milp.constraints.len());
    for (cidx, c) in milp.constraints.iter().enumerate() {
        let mut terms = c.terms.clone();
        if c.sense == Sense::Le {
            let bits = slack_bits(c.slack_bound, c.slack_precision);
            for bit in 0..bits {
                let var = registry.intern(JoVar::Slack { constraint: cidx, bit });
                terms.push((var, c.slack_precision * 2f64.powi(bit as i32)));
            }
        }
        rows.push(BilpRow { terms, rhs: c.rhs });
    }
    Bilp { registry, rows, objective: milp.objective.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::jo_milp::{build_milp, JoMilpConfig};
    use crate::formulate::milp::{Constraint, ConstraintKind};
    use crate::query::{Predicate, Query};

    fn paper_example() -> Query {
        Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }])
    }

    #[test]
    fn slack_bit_formula_matches_equation_9() {
        // Integer slack of bound 1 → 1 bit (paper: Eqns (4), (5)).
        assert_eq!(slack_bits(1.0, 1.0), 1);
        // Bound 4 at ω = 1 → ⌊log₂ 4⌋ + 1 = 3.
        assert_eq!(slack_bits(4.0, 1.0), 3);
        // Same bound at ω = 0.1 → ⌊log₂ 40⌋ + 1 = 6.
        assert_eq!(slack_bits(4.0, 0.1), 6);
        // Degenerate bound still emits one bit.
        assert_eq!(slack_bits(0.0, 1.0), 1);
        assert_eq!(slack_bits(0.5, 1.0), 1);
    }

    #[test]
    fn equalities_pass_through_without_slack() {
        let milp = Milp {
            registry: {
                let mut r = VarRegistry::new();
                r.intern(JoVar::Tio { t: 0, j: 0 });
                r.intern(JoVar::Tio { t: 1, j: 0 });
                r
            },
            constraints: vec![Constraint::eq(
                ConstraintKind::OuterOnce,
                vec![(0, 1.0), (1, 1.0)],
                1.0,
            )],
            objective: vec![],
        };
        let bilp = milp_to_bilp(&milp);
        assert_eq!(bilp.num_vars(), 2);
        assert_eq!(bilp.rows[0].terms.len(), 2);
    }

    #[test]
    fn inequalities_gain_weighted_slack_bits() {
        let milp = Milp {
            registry: {
                let mut r = VarRegistry::new();
                r.intern(JoVar::Tio { t: 0, j: 0 });
                r
            },
            constraints: vec![Constraint::le(
                ConstraintKind::CardThreshold,
                vec![(0, 3.0)],
                4.0,
                4.0,
                1.0,
            )],
            objective: vec![],
        };
        let bilp = milp_to_bilp(&milp);
        // 1 original + 3 slack bits with weights 1, 2, 4.
        assert_eq!(bilp.num_vars(), 4);
        let weights: Vec<f64> = bilp.rows[0].terms[1..].iter().map(|&(_, w)| w).collect();
        assert_eq!(weights, vec![1.0, 2.0, 4.0]);
        // x = 0 → slack must make up rhs = 4: bits 4 set.
        assert!(bilp.feasible(&[false, false, false, true], 1e-9));
        // x = 1 → remaining 1: bit 1 set.
        assert!(bilp.feasible(&[true, true, false, false], 1e-9));
        assert!(!bilp.feasible(&[true, true, true, false], 1e-9));
    }

    #[test]
    fn feasible_milp_solutions_extend_to_feasible_bilp_solutions() {
        let q = paper_example();
        let cfg = JoMilpConfig { log_thresholds: vec![2.0, 3.0], omega: 1.0, prune: true };
        let milp = build_milp(&q, &cfg);
        let bilp = milp_to_bilp(&milp);
        assert!(bilp.num_vars() > milp.registry.len(), "slack bits were added");

        // Build the known-feasible assignment from the MILP test and search
        // slack bits by brute force over the (few) added bits.
        let mut x = vec![false; bilp.num_vars()];
        for v in [
            JoVar::Tio { t: 0, j: 0 },
            JoVar::Tii { t: 1, j: 0 },
            JoVar::Tio { t: 0, j: 1 },
            JoVar::Tio { t: 1, j: 1 },
            JoVar::Tii { t: 2, j: 1 },
            JoVar::Pao { p: 0, j: 1 },
            JoVar::Cto { r: 0, j: 1 },
        ] {
            x[bilp.registry.get(v).expect("var")] = true;
        }
        let slack_indices: Vec<usize> = (0..bilp.num_vars())
            .filter(|&i| matches!(bilp.registry.var(i), JoVar::Slack { .. }))
            .collect();
        let found = (0..1u32 << slack_indices.len()).any(|bits| {
            let mut y = x.clone();
            for (k, &i) in slack_indices.iter().enumerate() {
                y[i] = bits >> k & 1 == 1;
            }
            bilp.feasible(&y, 1e-9)
        });
        assert!(found, "no slack assignment satisfies the BILP rows");
    }

    #[test]
    fn qubit_counts_grow_with_precision() {
        let q = paper_example();
        let n_at = |omega: f64| {
            let cfg = JoMilpConfig { log_thresholds: vec![2.0], omega, prune: true };
            milp_to_bilp(&build_milp(&q, &cfg)).num_vars()
        };
        // Each decimal place of precision adds ⌈log₂ 10⌉-ish bits per
        // cardinality constraint — the paper's "+3 qubits per decimal".
        let coarse = n_at(1.0);
        let fine = n_at(0.1);
        let finer = n_at(0.01);
        assert!(fine > coarse, "{fine} vs {coarse}");
        assert!((3..=4).contains(&(fine - coarse)), "step {}", fine - coarse);
        assert!((3..=4).contains(&(finer - fine)), "step {}", finer - fine);
    }
}
