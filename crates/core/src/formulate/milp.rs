//! The (binary-variable) MILP model representation.
//!
//! All decision variables of the join-ordering model are binary; the only
//! continuous quantities are the slacks introduced when inequalities are
//! converted to equalities, so each `≤` constraint carries the slack bound
//! and discretisation precision the BILP conversion will use (per Lemma 5.1
//! the paper bounds the cardinality-constraint slack by `c_j_max`).

use crate::formulate::vars::VarRegistry;

/// Constraint direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Equality (`= rhs`).
    Eq,
    /// Less-or-equal (`≤ rhs`).
    Le,
}

/// What role a constraint plays in the model — used for the Table 1
/// original-vs-pruned accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `Σ_t tii(t,j) = 1`: each join has exactly one inner relation.
    InnerOnce,
    /// `Σ_t tio(t,0) = 1`: the first join has exactly one outer relation.
    OuterOnce,
    /// `tio(t,j) = tii(t,j−1) + tio(t,j−1)`: relations stay joined.
    Propagate,
    /// `tio(t,j) + tii(t,j) ≤ 1`: a relation is not both operands.
    OperandDisjoint,
    /// `pao(p,j) ≤ tio(T_k(p), j)`: predicate applicability.
    PredApplicable,
    /// `c_j − cto(r,j)·∞ ≤ log θ_r`: cardinality threshold activation.
    CardThreshold,
}

/// One linear constraint over binary variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Role in the model.
    pub kind: ConstraintKind,
    /// `(variable index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Direction.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
    /// Upper bound on the slack value (only meaningful for `Le`).
    pub slack_bound: f64,
    /// Discretisation precision ω of the slack (1.0 when integral).
    pub slack_precision: f64,
}

impl Constraint {
    /// An equality constraint.
    pub fn eq(kind: ConstraintKind, terms: Vec<(usize, f64)>, rhs: f64) -> Self {
        Constraint { kind, terms, sense: Sense::Eq, rhs, slack_bound: 0.0, slack_precision: 1.0 }
    }

    /// A `≤` constraint with its slack metadata.
    pub fn le(
        kind: ConstraintKind,
        terms: Vec<(usize, f64)>,
        rhs: f64,
        slack_bound: f64,
        slack_precision: f64,
    ) -> Self {
        assert!(slack_bound >= 0.0, "slack bound must be non-negative");
        assert!(slack_precision > 0.0, "slack precision must be positive");
        Constraint { kind, terms, sense: Sense::Le, rhs, slack_bound, slack_precision }
    }

    /// Evaluates the left-hand side at a binary assignment.
    pub fn lhs(&self, x: &[bool]) -> f64 {
        self.terms.iter().map(|&(i, c)| if x[i] { c } else { 0.0 }).sum()
    }

    /// Whether the constraint holds at `x` (tolerance 1e-9 on equalities).
    pub fn satisfied(&self, x: &[bool]) -> bool {
        let v = self.lhs(x);
        match self.sense {
            Sense::Eq => (v - self.rhs).abs() < 1e-9,
            Sense::Le => v <= self.rhs + 1e-9,
        }
    }
}

/// A complete MILP model over binary variables.
#[derive(Debug, Clone)]
pub struct Milp {
    /// Variable registry (qubit accounting lives here).
    pub registry: VarRegistry,
    /// All constraints.
    pub constraints: Vec<Constraint>,
    /// Linear objective `(variable index, coefficient)`, to minimise.
    pub objective: Vec<(usize, f64)>,
}

impl Milp {
    /// Objective value at an assignment.
    pub fn objective_value(&self, x: &[bool]) -> f64 {
        self.objective.iter().map(|&(i, c)| if x[i] { c } else { 0.0 }).sum()
    }

    /// True when every constraint holds.
    pub fn feasible(&self, x: &[bool]) -> bool {
        self.constraints.iter().all(|c| c.satisfied(x))
    }

    /// Constraint count by kind.
    pub fn constraint_counts(&self) -> std::collections::HashMap<ConstraintKind, usize> {
        let mut m = std::collections::HashMap::new();
        for c in &self.constraints {
            *m.entry(c.kind).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::vars::JoVar;

    #[test]
    fn constraint_evaluation() {
        let c = Constraint::eq(ConstraintKind::InnerOnce, vec![(0, 1.0), (1, 1.0)], 1.0);
        assert!(c.satisfied(&[true, false]));
        assert!(c.satisfied(&[false, true]));
        assert!(!c.satisfied(&[true, true]));
        assert!(!c.satisfied(&[false, false]));

        let le = Constraint::le(
            ConstraintKind::OperandDisjoint,
            vec![(0, 1.0), (1, 1.0)],
            1.0,
            1.0,
            1.0,
        );
        assert!(le.satisfied(&[true, false]));
        assert!(!le.satisfied(&[true, true]));
    }

    #[test]
    fn milp_feasibility_and_objective() {
        let mut reg = VarRegistry::new();
        let a = reg.intern(JoVar::Tio { t: 0, j: 0 });
        let b = reg.intern(JoVar::Tio { t: 1, j: 0 });
        let m = Milp {
            registry: reg,
            constraints: vec![Constraint::eq(
                ConstraintKind::OuterOnce,
                vec![(a, 1.0), (b, 1.0)],
                1.0,
            )],
            objective: vec![(a, 5.0), (b, 3.0)],
        };
        assert!(m.feasible(&[true, false]));
        assert!(!m.feasible(&[true, true]));
        assert_eq!(m.objective_value(&[true, false]), 5.0);
        assert_eq!(m.objective_value(&[false, true]), 3.0);
        assert_eq!(m.constraint_counts()[&ConstraintKind::OuterOnce], 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn le_rejects_negative_slack_bound() {
        Constraint::le(ConstraintKind::CardThreshold, vec![], 0.0, -1.0, 1.0);
    }
}
