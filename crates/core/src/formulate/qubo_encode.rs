//! BILP → QUBO transformation (Section 3.4).
//!
//! Following Lucas, the equality system `S x = b` becomes squared penalty
//! terms and the linear objective rides along:
//!
//! ```text
//! H = A Σ_m (b_m − Σ_i S_mi x_i)²  +  B Σ_i c_i x_i
//! ```
//!
//! with `B = 1` and `A = C/ω² + ε`, `C = Σ_i |c_i|`: the smallest
//! constraint violation a discretised model can exhibit is ω, so a single
//! violation already outweighs every possible objective saving. All
//! coefficients are rounded to multiples of ω first, which is what makes
//! the squared terms of valid solutions *exactly* zero despite the
//! discretisation of continuous slack.

use qjo_qubo::Qubo;

use crate::formulate::bilp::Bilp;

/// Tuning of the penalty-term construction.
#[derive(Debug, Clone, Copy)]
pub struct QuboEncodeConfig {
    /// Discretisation precision ω (must match the BILP conversion).
    pub omega: f64,
    /// Safety margin ε added to the penalty weight.
    pub epsilon: f64,
    /// Explicit penalty weight `A`, overriding the `C/ω² + ε` formula.
    pub penalty_override: Option<f64>,
}

impl QuboEncodeConfig {
    /// The paper's default: `A = C/ω² + ε`, `B = 1`, small ε.
    pub fn paper_default(omega: f64) -> Self {
        QuboEncodeConfig { omega, epsilon: 1.0, penalty_override: None }
    }
}

/// The QUBO plus the bookkeeping needed to interpret its energies.
#[derive(Debug, Clone)]
pub struct EncodedQubo {
    /// The penalty-encoded problem.
    pub qubo: Qubo,
    /// The penalty weight `A` that was used.
    pub penalty_a: f64,
    /// Sum of absolute objective coefficients `C`.
    pub objective_magnitude: f64,
}

/// Rounds `v` to the nearest multiple of `omega`.
fn round_to(v: f64, omega: f64) -> f64 {
    (v / omega).round() * omega
}

/// Encodes a BILP as a QUBO.
pub fn bilp_to_qubo(bilp: &Bilp, config: &QuboEncodeConfig) -> EncodedQubo {
    assert!(config.omega > 0.0, "ω must be positive");
    let _span = qjo_obs::span!("formulate.qubo_encode");
    let n = bilp.num_vars();
    qjo_obs::counter!("formulate.qubo_vars").add(n as u64);
    let c_sum: f64 = bilp.objective.iter().map(|&(_, c)| c.abs()).sum();
    let penalty_a =
        config.penalty_override.unwrap_or(c_sum / (config.omega * config.omega) + config.epsilon);
    assert!(penalty_a > 0.0, "penalty must be positive");

    let mut qubo = Qubo::new(n);
    // Objective (B = 1).
    for &(i, c) in &bilp.objective {
        qubo.add_linear(i, c);
    }
    // Penalty terms A (b − Σ s_i x_i)² with ω-rounded coefficients.
    for row in &bilp.rows {
        let b = round_to(row.rhs, config.omega);
        let terms: Vec<(usize, f64)> = row
            .terms
            .iter()
            .map(|&(i, s)| (i, round_to(s, config.omega)))
            .filter(|&(_, s)| s != 0.0)
            .collect();
        qubo.add_offset(penalty_a * b * b);
        for &(i, s) in &terms {
            // −2 b s x_i  +  s² x_i (diagonal of the square).
            qubo.add_linear(i, penalty_a * (s * s - 2.0 * b * s));
        }
        for (k, &(i, si)) in terms.iter().enumerate() {
            for &(j, sj) in &terms[k + 1..] {
                qubo.add_quadratic(i, j, 2.0 * penalty_a * si * sj);
            }
        }
    }
    qubo.prune_zeros();
    EncodedQubo { qubo, penalty_a, objective_magnitude: c_sum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::bilp::{milp_to_bilp, BilpRow};
    use crate::formulate::bilp_solve::BilpSolver;
    use crate::formulate::jo_milp::{build_milp, JoMilpConfig};
    use crate::formulate::vars::{JoVar, VarRegistry};
    use crate::query::{Predicate, Query};
    use qjo_qubo::solve::ExactSolver;

    fn tiny_bilp(rows: Vec<BilpRow>, n: usize, objective: Vec<(usize, f64)>) -> Bilp {
        let mut registry = VarRegistry::new();
        for i in 0..n {
            registry.intern(JoVar::Slack { constraint: 999, bit: i });
        }
        Bilp { registry, rows, objective }
    }

    #[test]
    fn penalty_energy_is_zero_exactly_on_feasible_points() {
        // x0 + x1 = 1, no objective: feasible points at energy 0, the rest
        // penalised by A.
        let b = tiny_bilp(vec![BilpRow { terms: vec![(0, 1.0), (1, 1.0)], rhs: 1.0 }], 2, vec![]);
        let e = bilp_to_qubo(&b, &QuboEncodeConfig::paper_default(1.0));
        assert_eq!(e.qubo.energy(&[true, false]).unwrap(), 0.0);
        assert_eq!(e.qubo.energy(&[false, true]).unwrap(), 0.0);
        assert_eq!(e.qubo.energy(&[false, false]).unwrap(), e.penalty_a);
        assert_eq!(e.qubo.energy(&[true, true]).unwrap(), e.penalty_a);
    }

    #[test]
    fn qubo_energy_equals_objective_on_feasible_points() {
        let b = tiny_bilp(
            vec![BilpRow { terms: vec![(0, 1.0), (1, 1.0)], rhs: 1.0 }],
            2,
            vec![(0, 5.0), (1, 3.0)],
        );
        let e = bilp_to_qubo(&b, &QuboEncodeConfig::paper_default(1.0));
        assert_eq!(e.qubo.energy(&[true, false]).unwrap(), 5.0);
        assert_eq!(e.qubo.energy(&[false, true]).unwrap(), 3.0);
        // C = 8, ω = 1, ε = 1 → A = 9: one violation always loses.
        assert_eq!(e.penalty_a, 9.0);
        let worst_feasible = 5.0;
        let best_infeasible = e.qubo.energy(&[false, false]).unwrap();
        assert!(best_infeasible > worst_feasible);
    }

    #[test]
    fn penalty_override_is_respected() {
        let b = tiny_bilp(vec![BilpRow { terms: vec![(0, 1.0)], rhs: 1.0 }], 1, vec![]);
        let cfg = QuboEncodeConfig { omega: 1.0, epsilon: 1.0, penalty_override: Some(42.0) };
        let e = bilp_to_qubo(&b, &cfg);
        assert_eq!(e.penalty_a, 42.0);
        assert_eq!(e.qubo.energy(&[false]).unwrap(), 42.0);
    }

    #[test]
    fn omega_scales_penalty_quadratically() {
        let b = tiny_bilp(vec![], 1, vec![(0, 2.0)]);
        let coarse = bilp_to_qubo(&b, &QuboEncodeConfig::paper_default(1.0));
        let fine = bilp_to_qubo(&b, &QuboEncodeConfig::paper_default(0.1));
        assert_eq!(coarse.penalty_a, 3.0); // 2/1 + 1
        assert!((fine.penalty_a - 201.0).abs() < 1e-9); // 2/0.01 + 1
    }

    #[test]
    fn qubo_minimum_matches_bilp_optimum_on_paper_example() {
        let q =
            Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
        let cfg = JoMilpConfig { log_thresholds: vec![2.0, 3.0], omega: 1.0, prune: true };
        let bilp = milp_to_bilp(&build_milp(&q, &cfg));
        let bilp_opt = BilpSolver::default().solve(&bilp).expect("feasible");

        let encoded = bilp_to_qubo(&bilp, &QuboEncodeConfig::paper_default(1.0));
        let qubo_opt = ExactSolver::new().solve(&encoded.qubo).expect("fits");

        assert!(
            (qubo_opt.energy - bilp_opt.objective).abs() < 1e-6,
            "QUBO minimum {} vs BILP optimum {}",
            qubo_opt.energy,
            bilp_opt.objective
        );
        // The QUBO argmin is feasible for the BILP.
        assert!(bilp.feasible(&qubo_opt.assignment, 1e-6));
    }

    #[test]
    fn coefficient_rounding_keeps_valid_energies_exact() {
        // A nearly-integral coefficient (2.0000004) must round so the
        // feasible point's penalty is exactly zero.
        let b =
            tiny_bilp(vec![BilpRow { terms: vec![(0, 2.0000004), (1, 1.0)], rhs: 3.0 }], 2, vec![]);
        let e = bilp_to_qubo(&b, &QuboEncodeConfig::paper_default(1.0));
        assert_eq!(e.qubo.energy(&[true, true]).unwrap(), 0.0);
    }

    #[test]
    fn zero_coefficient_terms_are_dropped() {
        let b = tiny_bilp(vec![BilpRow { terms: vec![(0, 0.2), (1, 1.0)], rhs: 1.0 }], 2, vec![]);
        // ω = 1 rounds 0.2 → 0, so x0 must vanish from the penalty graph.
        let e = bilp_to_qubo(&b, &QuboEncodeConfig::paper_default(1.0));
        assert_eq!(e.qubo.num_interactions(), 0);
        assert_eq!(e.qubo.linear(0), 0.0);
    }
}
