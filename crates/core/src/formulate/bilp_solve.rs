//! A small branch-and-bound BILP solver.
//!
//! Plays Gurobi's role in the paper: an exact classical reference for the
//! BILP formulation, used to validate the QUBO encoding (the QUBO minimum
//! must coincide with the BILP optimum) and as a baseline optimiser. DFS
//! over variables with interval-based constraint propagation and an
//! objective bound (all objective coefficients of the join-ordering model
//! are non-negative, so the fixed prefix cost is a valid lower bound).

use crate::formulate::bilp::Bilp;

/// The BILP optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct BilpSolution {
    /// Optimal assignment.
    pub assignment: Vec<bool>,
    /// Its objective value.
    pub objective: f64,
}

/// Exact branch-and-bound solver.
#[derive(Debug, Clone)]
pub struct BilpSolver {
    /// Hard cap on explored nodes (guards against pathological inputs).
    pub max_nodes: u64,
    /// Feasibility tolerance on equality rows.
    pub tolerance: f64,
}

impl Default for BilpSolver {
    fn default() -> Self {
        BilpSolver { max_nodes: 50_000_000, tolerance: 1e-6 }
    }
}

struct Search<'a> {
    bilp: &'a Bilp,
    /// Per-row running LHS of fixed variables.
    fixed_lhs: Vec<f64>,
    /// Per-row sum of positive / negative coefficients of *unfixed* vars.
    pos_remaining: Vec<f64>,
    neg_remaining: Vec<f64>,
    /// Rows containing each variable (with coefficient).
    var_rows: Vec<Vec<(usize, f64)>>,
    objective: Vec<f64>,
    tolerance: f64,
    nodes: u64,
    max_nodes: u64,
    best: Option<BilpSolution>,
}

impl<'a> Search<'a> {
    fn prune(&self) -> bool {
        // A row is unsatisfiable when even the extreme completions miss rhs.
        for (r, row) in self.bilp.rows.iter().enumerate() {
            let lo = self.fixed_lhs[r] + self.neg_remaining[r];
            let hi = self.fixed_lhs[r] + self.pos_remaining[r];
            if row.rhs < lo - self.tolerance || row.rhs > hi + self.tolerance {
                return true;
            }
        }
        false
    }

    fn dfs(&mut self, var: usize, x: &mut Vec<bool>, prefix_obj: f64) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            return;
        }
        if let Some(best) = &self.best {
            // All objective coefficients are ≥ 0 in the JO model; negative
            // coefficients are accounted for pessimistically.
            let optimistic: f64 = self.objective[var..].iter().filter(|&&c| c < 0.0).sum();
            if prefix_obj + optimistic >= best.objective - 1e-12 {
                return;
            }
        }
        if self.prune() {
            return;
        }
        if var == x.len() {
            // Complete assignment; prune() passing means all rows hold
            // exactly (no unfixed slack remains, lo == hi == fixed_lhs).
            let sol = BilpSolution { assignment: x.clone(), objective: prefix_obj };
            match &self.best {
                Some(b) if b.objective <= sol.objective => {}
                _ => self.best = Some(sol),
            }
            return;
        }

        // Try both values; prefer the branch that does not pay objective.
        let coef = self.objective[var];
        let order = if coef >= 0.0 { [false, true] } else { [true, false] };
        for value in order {
            x[var] = value;
            for &(r, c) in &self.var_rows[var] {
                if c >= 0.0 {
                    self.pos_remaining[r] -= c;
                } else {
                    self.neg_remaining[r] -= c;
                }
                if value {
                    self.fixed_lhs[r] += c;
                }
            }
            let obj = prefix_obj + if value { coef } else { 0.0 };
            self.dfs(var + 1, x, obj);
            for &(r, c) in &self.var_rows[var] {
                if c >= 0.0 {
                    self.pos_remaining[r] += c;
                } else {
                    self.neg_remaining[r] += c;
                }
                if value {
                    self.fixed_lhs[r] -= c;
                }
            }
        }
        x[var] = false;
    }
}

impl BilpSolver {
    /// Solves the BILP to optimality; `None` when infeasible (or the node
    /// cap was exhausted without finding any feasible point).
    pub fn solve(&self, bilp: &Bilp) -> Option<BilpSolution> {
        let _span = qjo_obs::span!("formulate.bilp_solve");
        qjo_obs::counter!("formulate.bilp_solves").incr();
        let n = bilp.num_vars();
        let mut var_rows = vec![Vec::new(); n];
        let mut pos = vec![0.0; bilp.rows.len()];
        let mut neg = vec![0.0; bilp.rows.len()];
        for (r, row) in bilp.rows.iter().enumerate() {
            for &(i, c) in &row.terms {
                var_rows[i].push((r, c));
                if c >= 0.0 {
                    pos[r] += c;
                } else {
                    neg[r] += c;
                }
            }
        }
        let mut objective = vec![0.0; n];
        for &(i, c) in &bilp.objective {
            objective[i] += c;
        }
        let mut search = Search {
            bilp,
            fixed_lhs: vec![0.0; bilp.rows.len()],
            pos_remaining: pos,
            neg_remaining: neg,
            var_rows,
            objective,
            tolerance: self.tolerance,
            nodes: 0,
            max_nodes: self.max_nodes,
            best: None,
        };
        let mut x = vec![false; n];
        search.dfs(0, &mut x, 0.0);
        search.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::bilp::{milp_to_bilp, BilpRow};
    use crate::formulate::jo_milp::{build_milp, JoMilpConfig};
    use crate::formulate::vars::{JoVar, VarRegistry};
    use crate::query::{Predicate, Query};

    fn tiny_bilp(rows: Vec<BilpRow>, n: usize, objective: Vec<(usize, f64)>) -> Bilp {
        let mut registry = VarRegistry::new();
        for i in 0..n {
            registry.intern(JoVar::Slack { constraint: 999, bit: i });
        }
        Bilp { registry, rows, objective }
    }

    #[test]
    fn picks_cheapest_feasible_assignment() {
        // x0 + x1 = 1, minimise 5 x0 + 3 x1 → x1.
        let b = tiny_bilp(
            vec![BilpRow { terms: vec![(0, 1.0), (1, 1.0)], rhs: 1.0 }],
            2,
            vec![(0, 5.0), (1, 3.0)],
        );
        let s = BilpSolver::default().solve(&b).expect("feasible");
        assert_eq!(s.assignment, vec![false, true]);
        assert_eq!(s.objective, 3.0);
    }

    #[test]
    fn detects_infeasibility() {
        // x0 = 1 and x0 = 0 simultaneously.
        let b = tiny_bilp(
            vec![
                BilpRow { terms: vec![(0, 1.0)], rhs: 1.0 },
                BilpRow { terms: vec![(0, 1.0)], rhs: 0.0 },
            ],
            1,
            vec![],
        );
        assert!(BilpSolver::default().solve(&b).is_none());
    }

    #[test]
    fn handles_negative_objective_coefficients() {
        // Free variable with negative cost must be set.
        let b = tiny_bilp(vec![], 2, vec![(0, -2.0), (1, 1.0)]);
        let s = BilpSolver::default().solve(&b).expect("feasible");
        assert_eq!(s.assignment, vec![true, false]);
        assert_eq!(s.objective, -2.0);
    }

    #[test]
    fn solves_paper_example_to_known_optimum() {
        // Example 3.3: optimal orders put {R0, R1} first; with thresholds
        // θ = {100, 1000} the approximated cost is exactly 100.
        let q =
            Query::new(vec![2.0, 2.0, 2.0], vec![Predicate { rel_a: 0, rel_b: 1, log_sel: -1.0 }]);
        let cfg = JoMilpConfig { log_thresholds: vec![2.0, 3.0], omega: 1.0, prune: true };
        let bilp = milp_to_bilp(&build_milp(&q, &cfg));
        let s = BilpSolver::default().solve(&bilp).expect("feasible model");
        assert_eq!(s.objective, 100.0);

        // The assignment must encode R2 as the final inner relation.
        let tii_2_1 = bilp.registry.get(JoVar::Tii { t: 2, j: 1 }).unwrap();
        assert!(s.assignment[tii_2_1], "optimal plan joins R2 last");
        // Re-evaluate feasibility and objective independently.
        assert!(bilp.feasible(&s.assignment, 1e-6));
        assert_eq!(bilp.objective_value(&s.assignment), 100.0);
    }

    #[test]
    fn agrees_with_brute_force_on_small_models() {
        let q = Query::new(vec![1.0, 2.0, 3.0], vec![]);
        let cfg = JoMilpConfig { log_thresholds: vec![3.0], omega: 1.0, prune: true };
        let bilp = milp_to_bilp(&build_milp(&q, &cfg));
        let n = bilp.num_vars();
        assert!(n <= 22, "brute force budget ({n} vars)");
        let mut brute: Option<f64> = None;
        for bits in 0..1u64 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if bilp.feasible(&x, 1e-6) {
                let v = bilp.objective_value(&x);
                brute = Some(brute.map_or(v, |b: f64| b.min(v)));
            }
        }
        let s = BilpSolver::default().solve(&bilp).expect("feasible");
        assert_eq!(Some(s.objective), brute);
    }
}
