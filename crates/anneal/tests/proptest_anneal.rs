//! Property-style tests for the annealing substrate.
//!
//! Each property runs over a deterministic family of random instances
//! drawn from a seeded [`StdRng`] — the hermetic stand-in for the proptest
//! strategies the suite originally used. Seeds are fixed so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_anneal::chain::{unembed_majority, uniform_torque_compensation};
use qjo_anneal::gauge::{gauge_set, Gauge};
use qjo_anneal::hardware::{chimera, pegasus_like};
use qjo_anneal::ice::{normalize, IceNoise};
use qjo_anneal::sqa::{sample, trotter_coupling, SqaConfig};
use qjo_anneal::{Embedder, Embedding};
use qjo_exec::Parallelism;
use qjo_qubo::IsingModel;
use qjo_transpile::Topology;

/// Draws a sparse random graph with `2..=max_vars` nodes and ≤ 12 edges.
fn arb_sparse_graph(rng: &mut StdRng, max_vars: usize) -> (usize, Vec<(usize, usize)>) {
    let n = rng.random_range(2..=max_vars);
    let all_pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|a| ((a + 1)..n).map(move |b| (a, b))).collect();
    let len = all_pairs.len();
    let picks = rng.random_range(1..=len.min(12));
    let mut edges: Vec<(usize, usize)> =
        (0..picks).map(|_| all_pairs[rng.random_range(0..len)]).collect();
    edges.sort_unstable();
    edges.dedup();
    (n, edges)
}

/// Draws a dense random Ising model on `n` spins.
fn arb_ising(rng: &mut StdRng, n: usize) -> IsingModel {
    let mut m = IsingModel::new(n);
    for i in 0..n {
        m.add_field(i, rng.random_range(-2.0..2.0));
        for j in i + 1..n {
            m.add_coupling(i, j, rng.random_range(-2.0..2.0));
        }
    }
    m
}

fn for_cases(cases: u64, mut body: impl FnMut(&mut StdRng, u64)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xA11EA1 + case);
        body(&mut rng, case);
    }
}

/// Whatever the embedder returns is a valid minor embedding.
#[test]
fn embeddings_are_always_valid() {
    for_cases(16, |rng, case| {
        let (n, edges) = arb_sparse_graph(rng, 6);
        let seed = rng.random_range(0u64..50);
        let target = chimera(3);
        let embedder = Embedder { seed, ..Default::default() };
        if let Some(e) = embedder.embed(n, &edges, &target) {
            assert!(e.validate(&edges, &target).is_ok(), "case {case}");
            assert_eq!(e.chains.len(), n, "case {case}");
        }
    });
}

/// Pegasus-like targets accept everything Chimera accepts.
#[test]
fn pegasus_is_at_least_as_capable() {
    for_cases(16, |rng, case| {
        let (n, edges) = arb_sparse_graph(rng, 6);
        let on_chimera = Embedder::default().embed(n, &edges, &chimera(3));
        if on_chimera.is_some() {
            let on_pegasus = Embedder::default().embed(n, &edges, &pegasus_like(3));
            assert!(
                on_pegasus.is_some(),
                "case {case}: pegasus rejected a chimera-embeddable graph"
            );
        }
    });
}

/// SQA returns actual spin configurations, so their energies are finite
/// and bounded below by the brute-force ground state.
#[test]
fn sqa_energies_are_sound() {
    for_cases(16, |rng, case| {
        let m = arb_ising(rng, 6);
        let time_us = rng.random_range(5.0..60.0);
        let cfg = SqaConfig { seed: 1, ..Default::default() };
        let reads = sample(&m, &cfg, time_us, 3);
        assert_eq!(reads.len(), 3, "case {case}");
        // Brute-force ground energy over 2^6 states.
        let mut ground = f64::INFINITY;
        for bits in 0..64u32 {
            let s: Vec<i8> = (0..6).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            ground = ground.min(m.energy(&s));
        }
        for r in &reads {
            let e = m.energy(r);
            assert!(e.is_finite(), "case {case}");
            assert!(e >= ground - 1e-9, "case {case}");
        }
    });
}

/// Trotter coupling is non-negative and monotone decreasing in Γ.
#[test]
fn trotter_coupling_behaviour() {
    for_cases(64, |rng, case| {
        let gamma = rng.random_range(0.01..5.0);
        let slices = rng.random_range(2usize..16);
        let temp = rng.random_range(0.01..1.0);
        let j1 = trotter_coupling(gamma, slices, temp);
        let j2 = trotter_coupling(gamma * 2.0, slices, temp);
        assert!(j1 >= 0.0, "case {case}");
        assert!(j2 <= j1 + 1e-12, "case {case}: J⊥ must fall as Γ grows");
    });
}

/// Majority-vote unembedding returns ±1 spins and counts breaks.
#[test]
fn unembed_majority_invariants() {
    for_cases(64, |rng, case| {
        let physical: Vec<i8> = (0..8).map(|_| if rng.random::<bool>() { 1 } else { -1 }).collect();
        let embedding = Embedding { chains: vec![vec![0, 1, 2], vec![3], vec![4, 5, 6, 7]] };
        let read = unembed_majority(&embedding, &physical);
        assert_eq!(read.spins.len(), 3, "case {case}");
        assert!(read.spins.iter().all(|&s| s == 1 || s == -1), "case {case}");
        assert!(read.broken_chains <= 3, "case {case}");
    });
}

/// Normalisation brings every coefficient into [−1, 1] and preserves
/// the argmin of the energy landscape.
#[test]
fn normalize_preserves_argmin() {
    for_cases(32, |rng, case| {
        let m = arb_ising(rng, 5);
        let mut scaled = m.clone();
        let factor = normalize(&mut scaled);
        assert!(factor > 0.0 && factor <= 1.0, "case {case}");
        assert!(scaled.max_abs_coefficient() <= 1.0 + 1e-12, "case {case}");
        let mut best_orig = (f64::INFINITY, 0u32);
        let mut best_scaled = (f64::INFINITY, 0u32);
        for bits in 0..32u32 {
            let s: Vec<i8> = (0..5).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            let eo = m.energy(&s);
            let es = scaled.energy(&s);
            if eo < best_orig.0 {
                best_orig = (eo, bits);
            }
            if es < best_scaled.0 {
                best_scaled = (es, bits);
            }
        }
        assert_eq!(best_orig.1, best_scaled.1, "case {case}: argmin moved under scaling");
    });
}

/// ICE noise keeps the coupling graph: no new interactions invented.
#[test]
fn ice_preserves_structure() {
    for_cases(32, |rng, case| {
        let m = arb_ising(rng, 5);
        let seed = rng.random_range(0u64..100);
        let mut normalized = m.clone();
        normalize(&mut normalized);
        let mut noise_rng = StdRng::seed_from_u64(seed);
        let noisy = IceNoise::advantage().apply(&normalized, &mut noise_rng);
        for (i, j, v) in noisy.couplings() {
            if v != 0.0 {
                assert!(
                    normalized.coupling(i, j) != 0.0,
                    "case {case}: noise invented coupling ({i},{j})"
                );
            }
        }
    });
}

/// Spin-reversal gauges preserve the spectrum: for every configuration,
/// the original energy equals the transformed problem's energy at the
/// gauged configuration, and untransform inverts the mapping.
#[test]
fn gauges_preserve_the_spectrum() {
    for_cases(32, |rng, case| {
        let m = arb_ising(rng, 5);
        let seed = rng.random_range(0u64..100);
        let mut gauge_rng = StdRng::seed_from_u64(seed);
        let g = Gauge::random(5, &mut gauge_rng);
        let t = g.transform(&m);
        for bits in 0..32u32 {
            let s: Vec<i8> = (0..5).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            let gauged: Vec<i8> = s.iter().zip(0..5).map(|(&v, i)| v * g.sign(i)).collect();
            assert!((m.energy(&s) - t.energy(&gauged)).abs() < 1e-9, "case {case}");
            assert_eq!(g.untransform_spins(&gauged), s, "case {case}");
        }
        // Gauge sets always lead with the identity.
        let gs = gauge_set(5, 3, seed);
        assert_eq!(&gs[0], &Gauge::identity(5), "case {case}");
    });
}

/// Chain strength is at least the problem scale for any model.
#[test]
fn chain_strength_dominates_scale() {
    for_cases(32, |rng, case| {
        let m = arb_ising(rng, 5);
        let s = uniform_torque_compensation(&m, 1.414);
        assert!(s >= m.max_abs_coefficient() - 1e-12, "case {case}");
    });
}

/// SQA reads are bit-identical at any thread count on random models —
/// the workspace determinism contract at the sampler level.
#[test]
fn sqa_reads_are_thread_count_invariant() {
    for_cases(8, |rng, case| {
        let m = arb_ising(rng, 6);
        let at = |threads| {
            let cfg =
                SqaConfig { seed: 5, parallelism: Parallelism::new(threads), ..Default::default() };
            sample(&m, &cfg, 20.0, 6)
        };
        let sequential = at(1);
        for threads in [2, 8] {
            assert_eq!(sequential, at(threads), "case {case}: {threads} threads");
        }
    });
}

#[test]
fn embedder_handles_disconnected_targets_gracefully() {
    // Two-component target: only problems fitting one component (or with
    // no cross edges) can embed; the embedder must not panic either way.
    let target = Topology::new(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
    let edges = vec![(0, 1), (1, 2)];
    if let Some(e) = Embedder::default().embed(3, &edges, &target) {
        assert!(e.validate(&edges, &target).is_ok());
    }
}
