//! Property-based tests for the annealing substrate.

use proptest::prelude::*;

use qjo_anneal::chain::{unembed_majority, uniform_torque_compensation};
use qjo_anneal::hardware::{chimera, pegasus_like};
use qjo_anneal::ice::{normalize, IceNoise};
use qjo_anneal::sqa::{sample, trotter_coupling, SqaConfig};
use qjo_anneal::gauge::{gauge_set, Gauge};
use qjo_anneal::{Embedder, Embedding};
use qjo_qubo::IsingModel;
use qjo_transpile::Topology;

fn arb_sparse_graph(max_vars: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..=max_vars).prop_flat_map(|n| {
        let all_pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .collect();
        let len = all_pairs.len();
        (Just(n), prop::collection::vec(0..len, 1..=len.min(12)))
            .prop_map(move |(n, idx)| {
                let mut edges: Vec<(usize, usize)> =
                    idx.into_iter().map(|i| all_pairs[i]).collect();
                edges.sort_unstable();
                edges.dedup();
                (n, edges)
            })
    })
}

fn arb_ising(n: usize) -> impl Strategy<Value = IsingModel> {
    (
        prop::collection::vec(-2.0..2.0f64, n),
        prop::collection::vec(-2.0..2.0f64, n * (n - 1) / 2),
    )
        .prop_map(move |(h, j)| {
            let mut m = IsingModel::new(n);
            for (i, v) in h.into_iter().enumerate() {
                m.add_field(i, v);
            }
            let mut it = j.into_iter();
            for a in 0..n {
                for b in a + 1..n {
                    m.add_coupling(a, b, it.next().expect("sized"));
                }
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the embedder returns is a valid minor embedding.
    #[test]
    fn embeddings_are_always_valid((n, edges) in arb_sparse_graph(6), seed in 0u64..50) {
        let target = chimera(3);
        let embedder = Embedder { seed, ..Default::default() };
        if let Some(e) = embedder.embed(n, &edges, &target) {
            prop_assert!(e.validate(&edges, &target).is_ok());
            prop_assert_eq!(e.chains.len(), n);
        }
    }

    /// Pegasus-like targets accept everything Chimera accepts.
    #[test]
    fn pegasus_is_at_least_as_capable((n, edges) in arb_sparse_graph(6)) {
        let on_chimera = Embedder::default().embed(n, &edges, &chimera(3));
        if on_chimera.is_some() {
            let on_pegasus = Embedder::default().embed(n, &edges, &pegasus_like(3));
            prop_assert!(on_pegasus.is_some(), "pegasus rejected a chimera-embeddable graph");
        }
    }

    /// SQA never reports a spin configuration below the true ground state
    /// (it returns actual configurations, so this is tautology-adjacent —
    /// the real check is that energies are finite and reproducible).
    #[test]
    fn sqa_energies_are_sound(m in arb_ising(6), time_us in 5.0..60.0f64) {
        let cfg = SqaConfig { seed: 1, ..Default::default() };
        let reads = sample(&m, &cfg, time_us, 3);
        prop_assert_eq!(reads.len(), 3);
        // Brute-force ground energy over 2^6 states.
        let mut ground = f64::INFINITY;
        for bits in 0..64u32 {
            let s: Vec<i8> = (0..6).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            ground = ground.min(m.energy(&s));
        }
        for r in &reads {
            let e = m.energy(r);
            prop_assert!(e.is_finite());
            prop_assert!(e >= ground - 1e-9);
        }
    }

    /// Trotter coupling is non-negative and monotone decreasing in Γ.
    #[test]
    fn trotter_coupling_behaviour(
        gamma in 0.01..5.0f64,
        slices in 2usize..16,
        temp in 0.01..1.0f64,
    ) {
        let j1 = trotter_coupling(gamma, slices, temp);
        let j2 = trotter_coupling(gamma * 2.0, slices, temp);
        prop_assert!(j1 >= 0.0);
        prop_assert!(j2 <= j1 + 1e-12, "J⊥ must fall as Γ grows");
    }

    /// Majority-vote unembedding returns ±1 spins and counts breaks.
    #[test]
    fn unembed_majority_invariants(spins in prop::collection::vec(prop::bool::ANY, 8)) {
        let physical: Vec<i8> = spins.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let embedding = Embedding { chains: vec![vec![0, 1, 2], vec![3], vec![4, 5, 6, 7]] };
        let read = unembed_majority(&embedding, &physical);
        prop_assert_eq!(read.spins.len(), 3);
        prop_assert!(read.spins.iter().all(|&s| s == 1 || s == -1));
        prop_assert!(read.broken_chains <= 3);
    }

    /// Normalisation brings every coefficient into [−1, 1] and preserves
    /// the argmin of the energy landscape.
    #[test]
    fn normalize_preserves_argmin(m in arb_ising(5)) {
        let mut scaled = m.clone();
        let factor = normalize(&mut scaled);
        prop_assert!(factor > 0.0 && factor <= 1.0);
        prop_assert!(scaled.max_abs_coefficient() <= 1.0 + 1e-12);
        let mut best_orig = (f64::INFINITY, 0u32);
        let mut best_scaled = (f64::INFINITY, 0u32);
        for bits in 0..32u32 {
            let s: Vec<i8> = (0..5).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            let eo = m.energy(&s);
            let es = scaled.energy(&s);
            if eo < best_orig.0 {
                best_orig = (eo, bits);
            }
            if es < best_scaled.0 {
                best_scaled = (es, bits);
            }
        }
        prop_assert_eq!(best_orig.1, best_scaled.1, "argmin moved under scaling");
    }

    /// ICE noise keeps the coupling graph: no new interactions invented.
    #[test]
    fn ice_preserves_structure(m in arb_ising(5), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut normalized = m.clone();
        normalize(&mut normalized);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let noisy = IceNoise::advantage().apply(&normalized, &mut rng);
        for (i, j, v) in noisy.couplings() {
            if v != 0.0 {
                prop_assert!(
                    normalized.coupling(i, j) != 0.0,
                    "noise invented coupling ({i},{j})"
                );
            }
        }
    }

    /// Spin-reversal gauges preserve the spectrum: for every configuration,
    /// the original energy equals the transformed problem's energy at the
    /// gauged configuration, and untransform inverts the mapping.
    #[test]
    fn gauges_preserve_the_spectrum(m in arb_ising(5), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = Gauge::random(5, &mut rng);
        let t = g.transform(&m);
        for bits in 0..32u32 {
            let s: Vec<i8> = (0..5).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            let gauged: Vec<i8> =
                s.iter().zip(0..5).map(|(&v, i)| v * g.sign(i)).collect();
            prop_assert!((m.energy(&s) - t.energy(&gauged)).abs() < 1e-9);
            prop_assert_eq!(g.untransform_spins(&gauged), s.clone());
        }
        // Gauge sets always lead with the identity.
        let gs = gauge_set(5, 3, seed);
        prop_assert_eq!(&gs[0], &Gauge::identity(5));
    }

    /// Chain strength is at least the problem scale for any model.
    #[test]
    fn chain_strength_dominates_scale(m in arb_ising(5)) {
        let s = uniform_torque_compensation(&m, 1.414);
        prop_assert!(s >= m.max_abs_coefficient() - 1e-12);
    }
}

#[test]
fn embedder_handles_disconnected_targets_gracefully() {
    // Two-component target: only problems fitting one component (or with
    // no cross edges) can embed; the embedder must not panic either way.
    let target = Topology::new(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
    let edges = vec![(0, 1), (1, 2)];
    if let Some(e) = Embedder::default().embed(3, &edges, &target) {
        assert!(e.validate(&edges, &target).is_ok());
    }
}
