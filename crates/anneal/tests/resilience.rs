//! Chaos tests for the annealing pipeline's retry/fallback ladders.
//!
//! These live in their own test binary because a fault plan is
//! process-global: every test here installs one through
//! [`qjo_resil::fault::scoped`] (or runs under
//! [`qjo_resil::fault::without_faults`]), whose guard mutex serialises
//! them, so the seed-pinned unit tests elsewhere never see injections.

use qjo_anneal::hardware::{chimera, pegasus_like};
use qjo_anneal::{AnnealError, AnnealerSampler};
use qjo_qubo::Qubo;
use qjo_resil::fault::{scoped, should_inject, without_faults};
use qjo_resil::{FaultPlan, QjoError};

/// A K6 with mixed couplings: small enough to embed everywhere, dense
/// enough to need real chains.
fn k6() -> Qubo {
    let mut q = Qubo::new(6);
    for a in 0..6 {
        for b in a + 1..6 {
            q.add_quadratic(a, b, if (a + b) % 2 == 0 { 1.0 } else { -1.0 });
        }
    }
    q
}

fn deltas_since(before: &qjo_obs::Snapshot) -> std::collections::BTreeMap<String, u64> {
    qjo_obs::global().snapshot().counter_deltas_since(before)
}

#[test]
fn injected_embed_failure_recovers_with_a_reseeded_retry() {
    // Probe for a plan seed whose anneal.embed stream (salt = embedder
    // seed, 0) reads (fail, pass): attempt 0 dies, the retry embeds.
    let seed = (0..256)
        .find(|&seed| {
            let _guard = scoped(FaultPlan::new(seed).with_rate("anneal.embed", 0.5));
            should_inject("anneal.embed", 0, 0) && !should_inject("anneal.embed", 0, 1)
        })
        .expect("some seed in 0..256 yields (fail, pass)");
    let _guard = scoped(FaultPlan::new(seed).with_rate("anneal.embed", 0.5));
    let before = qjo_obs::global().snapshot();
    let sampler = AnnealerSampler { num_reads: 10, ..AnnealerSampler::new(chimera(4)) };
    let out = sampler.sample_qubo(&k6()).expect("retry recovers the embed");
    assert!(out.physical_qubits >= 6);
    let d = deltas_since(&before);
    assert_eq!(d.get("resil.anneal.embed.retries"), Some(&1));
    assert_eq!(d.get("resil.anneal.embed.recovered"), Some(&1));
    assert!(d.contains_key("fault.injected.anneal.embed"));
}

#[test]
fn exhausted_embed_budget_degrades_to_the_clique_template() {
    // Every embed attempt dies; on a Pegasus-shaped target the ladder's
    // last rung — the clique template — still carries the job.
    let _guard = scoped(FaultPlan::new(1).with_rate("anneal.embed", 1.0));
    let before = qjo_obs::global().snapshot();
    let sampler = AnnealerSampler { num_reads: 10, ..AnnealerSampler::new(pegasus_like(2)) };
    let out = sampler.sample_qubo(&k6()).expect("template fallback fits K6 on P-like m=2");
    assert!(out.physical_qubits >= 6);
    let d = deltas_since(&before);
    assert_eq!(d.get("fault.injected.anneal.embed"), Some(&3));
    assert_eq!(d.get("resil.anneal.embed.exhausted"), Some(&1));
    assert_eq!(d.get("resil.anneal.embed.fallback"), Some(&1));
}

#[test]
fn exhausted_embed_budget_without_a_template_reports_the_error() {
    // A line graph offers no clique template (and could not embed a K6
    // anyway), so the ladder runs out of rungs.
    let _guard = scoped(FaultPlan::new(1).with_rate("anneal.embed", 1.0));
    let sampler = AnnealerSampler::new(qjo_transpile::Topology::line(8));
    let err = sampler.sample_qubo(&k6()).unwrap_err();
    assert_eq!(err, AnnealError::EmbeddingFailed { num_vars: 6, num_qubits: 8 });
    // The workspace taxonomy wraps it with the rendered message intact.
    assert_eq!(err.to_string(), "could not embed 6 logical variables onto 8 physical qubits");
    assert_eq!(QjoError::from(err.clone()), QjoError::Anneal(err.to_string()));
}

#[test]
fn rejected_jobs_are_resubmitted_reseeded() {
    let q = k6();
    let run = || {
        let sampler = AnnealerSampler { num_reads: 20, ..AnnealerSampler::new(chimera(4)) };
        sampler.sample_qubo(&q).expect("embedding is fault-free here")
    };
    let baseline = without_faults(run);
    let _guard = scoped(FaultPlan::new(2).with_rate("anneal.job", 1.0));
    let before = qjo_obs::global().snapshot();
    let rejected = run();
    let d = deltas_since(&before);
    // Three submissions bounce; the final attempt always runs.
    assert_eq!(d.get("resil.anneal.job.retries"), Some(&3));
    assert_ne!(
        baseline.samples.samples(),
        rejected.samples.samples(),
        "resubmission reseeds the read streams"
    );
    assert_eq!(run().samples.samples(), rejected.samples.samples(), "but deterministically");
}

#[test]
fn chain_storms_escalate_chain_strength() {
    let q = k6();
    let base = without_faults(|| {
        let sampler = AnnealerSampler { num_reads: 10, ..AnnealerSampler::new(chimera(4)) };
        sampler.sample_qubo(&q).unwrap().chain_strength
    });
    let _guard = scoped(FaultPlan::new(3).with_rate("anneal.chain_storm", 1.0));
    let before = qjo_obs::global().snapshot();
    let sampler = AnnealerSampler { num_reads: 10, ..AnnealerSampler::new(chimera(4)) };
    let out = sampler.sample_qubo(&q).unwrap();
    let d = deltas_since(&before);
    assert_eq!(d.get("resil.anneal.chain_storm.escalations"), Some(&3));
    let expected = base * 1.5f64.powi(3);
    assert!((out.chain_strength - expected).abs() < 1e-12, "{} vs {expected}", out.chain_strength);
}

#[test]
fn real_storms_trigger_escalation_when_opted_in() {
    without_faults(|| {
        // Absurdly weak chains on a K6 break constantly; the opt-in
        // threshold turns that into an escalation ladder.
        let before = qjo_obs::global().snapshot();
        let sampler = AnnealerSampler {
            chain_strength: Some(0.05),
            chain_storm_threshold: Some(0.25),
            num_reads: 40,
            ..AnnealerSampler::new(chimera(4))
        };
        let out = sampler.sample_qubo(&k6()).unwrap();
        let d = deltas_since(&before);
        assert!(
            d.get("resil.anneal.chain_storm.escalations").copied().unwrap_or(0) >= 1,
            "0.05 chains on K6 must storm: {d:?}"
        );
        assert!(out.chain_strength > 0.05, "escalation raises the programmed strength");
    });
}

#[test]
fn chaos_results_are_thread_count_invariant() {
    let q = k6();
    let plan = FaultPlan::new(4)
        .with_rate("anneal.embed", 0.3)
        .with_rate("anneal.job", 0.5)
        .with_rate("anneal.chain_storm", 0.3);
    let at = |threads: usize| {
        let sampler = AnnealerSampler {
            num_reads: 16,
            parallelism: qjo_exec::Parallelism::new(threads),
            ..AnnealerSampler::new(chimera(4))
        };
        sampler.sample_qubo(&q).unwrap()
    };
    let _guard = scoped(plan);
    let sequential = at(1);
    for threads in [2, 8] {
        let parallel = at(threads);
        assert_eq!(sequential.samples, parallel.samples, "threads={threads}");
        assert_eq!(sequential.chain_break_fraction, parallel.chain_break_fraction);
        assert_eq!(sequential.chain_strength, parallel.chain_strength);
    }
}
