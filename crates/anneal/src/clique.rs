//! Deterministic clique embeddings for the Pegasus-like lattice.
//!
//! Dense QUBOs (like join-ordering penalty models) are near-cliques, and
//! heuristic embedding is slowest exactly there. For lattices built from
//! crossing vertical/horizontal qubit lines, `K_n` has a classic *template*
//! embedding: chain `i` is an L shape — the vertical line of wire `i mod 4`
//! in tile-column `⌊i/4⌋` joined to the horizontal line of the same wire in
//! tile-row `⌊i/4⌋`. Every pair of chains crosses in exactly one tile,
//! where an internal coupler links them. This is the D-Wave
//! `find_clique_embedding` idea adapted to [`crate::hardware::pegasus_like`].

use crate::embed::Embedding;

/// Qubit index inside the `pegasus_like(m)` lattice (same layout as the
/// generator in [`crate::hardware`]).
fn tile_index(m: usize, y: usize, x: usize, u: usize, k: usize) -> usize {
    ((y * m + x) * 2 + u) * 4 + k
}

/// Largest clique the template supports on `pegasus_like(m)`.
pub fn max_template_clique(m: usize) -> usize {
    4 * m
}

/// Builds the template embedding of `K_n` into `pegasus_like(m)`.
///
/// Returns `None` when `n > 4m`. Chains have length `2·⌈n/4⌉` (the L shape
/// trimmed to the tiles the used chains actually cross).
pub fn pegasus_clique_embedding(n: usize, m: usize) -> Option<Embedding> {
    if n == 0 {
        return Some(Embedding { chains: Vec::new() });
    }
    if n > max_template_clique(m) {
        return None;
    }
    let tiles = n.div_ceil(4).max(1);
    debug_assert!(tiles <= m);
    let chains = (0..n)
        .map(|i| {
            let lane = i / 4; // tile column (vertical leg) and row (horizontal leg)
            let wire = i % 4;
            let mut chain = Vec::with_capacity(2 * tiles);
            for y in 0..tiles {
                chain.push(tile_index(m, y, lane, 0, wire));
            }
            for x in 0..tiles {
                chain.push(tile_index(m, lane, x, 1, wire));
            }
            chain
        })
        .collect();
    Some(Embedding { chains })
}

/// Embeds an arbitrary source graph of `num_vars` variables through the
/// clique template (ignoring sparsity — every variable gets a full clique
/// chain). A quick, deterministic fallback when the heuristic embedder
/// fails on dense problems.
pub fn template_embed(num_vars: usize, target_m: usize) -> Option<Embedding> {
    pegasus_clique_embedding(num_vars, target_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::Embedder;
    use crate::hardware::pegasus_like;

    fn complete_edges(n: usize) -> Vec<(usize, usize)> {
        let mut e = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                e.push((a, b));
            }
        }
        e
    }

    #[test]
    fn template_is_a_valid_clique_minor() {
        for (n, m) in [(4usize, 3usize), (8, 3), (12, 4), (20, 6), (32, 8)] {
            let target = pegasus_like(m);
            let e = pegasus_clique_embedding(n, m).expect("within capacity");
            assert_eq!(e.chains.len(), n);
            e.validate(&complete_edges(n), &target)
                .unwrap_or_else(|err| panic!("K{n} on m={m}: {err}"));
        }
    }

    #[test]
    fn chain_lengths_match_the_formula() {
        let e = pegasus_clique_embedding(10, 4).expect("fits");
        let tiles = 3; // ceil(10/4)
        assert!(e.chains.iter().all(|c| c.len() == 2 * tiles));
        assert_eq!(e.num_physical_qubits(), 10 * 2 * tiles);
    }

    #[test]
    fn capacity_limit_is_enforced() {
        assert!(pegasus_clique_embedding(4 * 5, 5).is_some());
        assert!(pegasus_clique_embedding(4 * 5 + 1, 5).is_none());
        assert_eq!(max_template_clique(8), 32);
    }

    #[test]
    fn empty_clique_is_trivial() {
        let e = pegasus_clique_embedding(0, 3).expect("trivial");
        assert!(e.chains.is_empty());
    }

    #[test]
    fn template_beats_heuristic_time_on_large_cliques() {
        // The template is O(n·tiles); the heuristic needs seconds-scale
        // search on K20. Only check both produce *valid* embeddings and
        // report sizes (the heuristic may use fewer qubits on small cases).
        let n = 20;
        let m = 6;
        let target = pegasus_like(m);
        let edges = complete_edges(n);
        let template = pegasus_clique_embedding(n, m).expect("fits");
        assert!(template.validate(&edges, &target).is_ok());
        // Heuristic comparison (best effort; skip silently if it fails —
        // the try budget bounds the cost deterministically).
        if let Some(heuristic) =
            (Embedder { max_tries: 2, ..Default::default() }).embed(n, &edges, &target)
        {
            // Template chain count is deterministic; heuristic may win or
            // lose on size, but both must be valid.
            assert!(heuristic.validate(&edges, &target).is_ok());
        }
    }

    #[test]
    fn template_serves_dense_jo_qubos() {
        // A 3-relation JO QUBO treated as dense: 25-ish variables fit the
        // K32 template on m = 8 and the embedding covers all its edges
        // (a clique embedding covers any subgraph's edges).
        use qjo_core::{JoEncoder, QueryGenerator, QueryGraph};
        let query = QueryGenerator::paper_defaults(QueryGraph::Chain, 3).generate(0);
        let enc = JoEncoder::default().encode(&query);
        let n = enc.num_qubits();
        let m = 8;
        assert!(n <= max_template_clique(m), "template capacity");
        let e = template_embed(n, m).expect("fits");
        let edges: Vec<(usize, usize)> =
            enc.qubo.quadratic_iter().map(|(i, j, _)| (i, j)).collect();
        assert!(e.validate(&edges, &pegasus_like(m)).is_ok());
    }
}
