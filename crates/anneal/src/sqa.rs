//! Path-integral Monte-Carlo simulated quantum annealing (SQA).
//!
//! The transverse-field Ising Hamiltonian
//! `H(s) = −Γ(s) Σ σ^x_i + B(s) H_problem` is simulated through the
//! Suzuki–Trotter mapping onto `P` coupled classical replicas ("imaginary
//! time slices"): the quantum kinetic term becomes a ferromagnetic coupling
//!
//! ```text
//! J_⊥(Γ) = −(P·T / 2) · ln tanh(Γ / (P·T))
//! ```
//!
//! between corresponding spins of adjacent slices (periodic). Annealing
//! lowers Γ from `gamma0` to ~0 over the sweep schedule; quantum
//! fluctuations (weak inter-slice coupling early on) let the state tunnel
//! between classical configurations, which is the mechanism quantum
//! annealers exploit. The annealing *time* maps linearly onto Monte-Carlo
//! sweeps.

use qjo_exec::{par_map_seeded, Parallelism};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

use qjo_qubo::IsingModel;

/// SQA parameters.
#[derive(Debug, Clone, Copy)]
pub struct SqaConfig {
    /// Number of Trotter slices `P`.
    pub trotter_slices: usize,
    /// Simulation temperature (in problem-energy units). Annealers operate
    /// cold relative to the programmed problem scale.
    pub temperature: f64,
    /// Initial transverse field Γ(0) (in problem-energy units).
    pub gamma0: f64,
    /// Monte-Carlo sweeps executed per microsecond of annealing time.
    pub sweeps_per_us: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the read loop of [`sample`]; affects wall-clock
    /// only, never results.
    pub parallelism: Parallelism,
}

impl Default for SqaConfig {
    fn default() -> Self {
        SqaConfig {
            trotter_slices: 4,
            temperature: 0.08,
            gamma0: 3.0,
            sweeps_per_us: 2.0,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

/// The inter-slice coupling strength at transverse field `gamma`.
pub fn trotter_coupling(gamma: f64, slices: usize, temperature: f64) -> f64 {
    let pt = slices as f64 * temperature;
    let g = (gamma / pt).max(1e-12);
    -(pt / 2.0) * g.tanh().ln()
}

/// Runs one SQA anneal and returns the best slice's spin configuration.
pub fn anneal_once(
    ising: &IsingModel,
    config: &SqaConfig,
    annealing_time_us: f64,
    rng: &mut StdRng,
) -> Vec<i8> {
    let n = ising.num_spins();
    let p = config.trotter_slices.max(2);
    let sweeps = ((annealing_time_us * config.sweeps_per_us).ceil() as usize).max(2);
    qjo_obs::counter!("sqa.anneals").incr();
    qjo_obs::counter!("sqa.sweeps").add(sweeps as u64);

    // Adjacency in CSR-ish form for fast local fields.
    let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, j, jij) in ising.couplings() {
        if jij != 0.0 {
            neighbors[i].push((j, jij));
            neighbors[j].push((i, jij));
        }
    }
    let fields: Vec<f64> = ising.fields().map(|(_, h)| h).collect();

    // spins[k][i]: slice k, spin i.
    let mut spins: Vec<Vec<i8>> = (0..p)
        .map(|_| (0..n).map(|_| if rng.random_bool(0.5) { 1i8 } else { -1 }).collect())
        .collect();
    let mut order: Vec<(usize, usize)> = (0..p).flat_map(|k| (0..n).map(move |i| (k, i))).collect();

    let inv_p = 1.0 / p as f64;
    let temp = config.temperature.max(1e-9);

    // Replica energies are expensive (P energy evaluations per kept
    // sweep), so only exemplar units record them — unit 0 of each
    // enclosing par_map, i.e. one read per sample() call.
    let replica_min = qjo_obs::convergence::exemplar_series("sqa", "replica_energy_min");
    let replica_mean = qjo_obs::convergence::exemplar_series("sqa", "replica_energy_mean");

    for sweep in 0..sweeps {
        let s_frac = sweep as f64 / (sweeps - 1).max(1) as f64;
        let gamma = config.gamma0 * (1.0 - s_frac);
        let j_perp = trotter_coupling(gamma, p, temp);
        order.shuffle(rng);
        for &(k, i) in &order {
            let s = f64::from(spins[k][i]);
            // Problem part of the local field (scaled by 1/P per slice).
            let mut local = fields[i];
            for &(j, jij) in &neighbors[i] {
                local += jij * f64::from(spins[k][j]);
            }
            let up = spins[(k + 1) % p][i];
            let down = spins[(k + p - 1) % p][i];
            // ΔE of flipping spin (k, i): the problem term s·local flips
            // sign (−2·s·local per slice weight), and the ferromagnetic
            // inter-slice term −J_⊥·s·(up+down) flips likewise (+2·s·J_⊥·…).
            let delta = -2.0 * s * (inv_p * local) + 2.0 * s * j_perp * f64::from(up + down);
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                spins[k][i] = -spins[k][i];
            }
        }
        if replica_min.wants(sweep as u64) {
            let energies: Vec<f64> = spins.iter().map(|s| ising.energy(s)).collect();
            replica_min
                .record(sweep as u64, energies.iter().copied().fold(f64::INFINITY, f64::min));
            replica_mean.record(sweep as u64, energies.iter().sum::<f64>() / p as f64);
        }
    }

    // Γ ≈ 0 at the end: slices have (mostly) collapsed; report the best.
    spins
        .into_iter()
        .min_by(|a, b| {
            ising.energy(a).partial_cmp(&ising.energy(b)).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least two slices")
}

/// Runs `num_reads` independent anneals.
///
/// Read `i` derives its own RNG stream from `(config.seed, i)` via
/// [`qjo_exec::stream_seed`], so the returned reads are bit-identical at
/// any `config.parallelism` setting.
pub fn sample(
    ising: &IsingModel,
    config: &SqaConfig,
    annealing_time_us: f64,
    num_reads: usize,
) -> Vec<Vec<i8>> {
    let reads: Vec<usize> = (0..num_reads).collect();
    par_map_seeded(reads, config.seed, config.parallelism, |_, rng| {
        anneal_once(ising, config, annealing_time_us, rng)
    })
}

/// Reverse annealing (Venturelli & Kondratyev — the paper's ref \[81\]):
/// starts from a known classical state, ramps the transverse field up to
/// `reversal_gamma` (partially "melting" the state), pauses, and anneals
/// back down. Refines a good classical solution by quantum-style local
/// exploration instead of searching from scratch.
pub fn reverse_anneal_once(
    ising: &IsingModel,
    config: &SqaConfig,
    initial: &[i8],
    reversal_gamma: f64,
    annealing_time_us: f64,
    rng: &mut StdRng,
) -> Vec<i8> {
    let n = ising.num_spins();
    assert_eq!(initial.len(), n, "initial state must cover every spin");
    assert!(reversal_gamma > 0.0, "reversal point must re-introduce fluctuations");
    let p = config.trotter_slices.max(2);
    let sweeps = ((annealing_time_us * config.sweeps_per_us).ceil() as usize).max(4);

    let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, j, jij) in ising.couplings() {
        if jij != 0.0 {
            neighbors[i].push((j, jij));
            neighbors[j].push((i, jij));
        }
    }
    let fields: Vec<f64> = ising.fields().map(|(_, h)| h).collect();

    // All slices start in the given classical state.
    let mut spins: Vec<Vec<i8>> = (0..p).map(|_| initial.to_vec()).collect();
    let mut order: Vec<(usize, usize)> = (0..p).flat_map(|k| (0..n).map(move |i| (k, i))).collect();
    let inv_p = 1.0 / p as f64;
    let temp = config.temperature.max(1e-9);
    // Track the best configuration visited (the refinement semantics: the
    // walk may wander past the reversal point; what matters is the best
    // point it touched in the initial state's neighbourhood).
    let mut best = initial.to_vec();
    let mut best_energy = ising.energy(initial);

    for sweep in 0..sweeps {
        // Triangle schedule: Γ rises to `reversal_gamma` at the midpoint,
        // then falls back to ~0.
        let s_frac = sweep as f64 / (sweeps - 1).max(1) as f64;
        let gamma = if s_frac < 0.5 {
            reversal_gamma * (s_frac * 2.0)
        } else {
            reversal_gamma * (2.0 - s_frac * 2.0)
        }
        .max(1e-9);
        let j_perp = trotter_coupling(gamma, p, temp);
        order.shuffle(rng);
        for &(k, i) in &order {
            let s = f64::from(spins[k][i]);
            let mut local = fields[i];
            for &(j, jij) in &neighbors[i] {
                local += jij * f64::from(spins[k][j]);
            }
            let up = spins[(k + 1) % p][i];
            let down = spins[(k + p - 1) % p][i];
            let delta = -2.0 * s * (inv_p * local) + 2.0 * s * j_perp * f64::from(up + down);
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                spins[k][i] = -spins[k][i];
            }
        }
        for slice in &spins {
            let e = ising.energy(slice);
            if e < best_energy {
                best_energy = e;
                best.copy_from_slice(slice);
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ferromagnetic_ring(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 0..n {
            m.add_coupling(i, (i + 1) % n, -1.0);
        }
        m
    }

    #[test]
    fn trotter_coupling_diverges_as_gamma_vanishes() {
        let strong = trotter_coupling(1e-9, 8, 0.1);
        let weak = trotter_coupling(3.0, 8, 0.1);
        assert!(strong > weak, "{strong} vs {weak}");
        assert!(strong > 5.0, "slices must lock when Γ → 0: {strong}");
        assert!(weak >= 0.0);
    }

    #[test]
    fn finds_ground_state_of_ferromagnet() {
        let m = ferromagnetic_ring(12);
        let reads = sample(&m, &SqaConfig::default(), 100.0, 10);
        let best = reads.iter().map(|s| m.energy(s)).fold(f64::INFINITY, f64::min);
        assert_eq!(best, -12.0, "ferromagnetic ring ground energy");
    }

    #[test]
    fn finds_ground_state_with_fields() {
        // Fields pin each spin individually: trivially solvable, catches
        // sign errors in the local-field computation.
        let mut m = IsingModel::new(6);
        for i in 0..6 {
            m.add_field(i, if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let reads = sample(&m, &SqaConfig::default(), 50.0, 5);
        let best = reads.iter().map(|s| m.energy(s)).fold(f64::INFINITY, f64::min);
        assert_eq!(best, -6.0);
    }

    #[test]
    fn frustrated_triangle_reaches_degenerate_ground_state() {
        // Antiferromagnetic triangle: ground energy -1 (one unhappy bond).
        let mut m = IsingModel::new(3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            m.add_coupling(a, b, 1.0);
        }
        let reads = sample(&m, &SqaConfig::default(), 50.0, 10);
        let best = reads.iter().map(|s| m.energy(s)).fold(f64::INFINITY, f64::min);
        assert_eq!(best, -1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = ferromagnetic_ring(8);
        let a = sample(&m, &SqaConfig { seed: 5, ..Default::default() }, 20.0, 3);
        let b = sample(&m, &SqaConfig { seed: 5, ..Default::default() }, 20.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_reads() {
        let m = ferromagnetic_ring(10);
        let at = |threads| {
            let cfg =
                SqaConfig { seed: 3, parallelism: Parallelism::new(threads), ..Default::default() };
            sample(&m, &cfg, 20.0, 9)
        };
        let sequential = at(1);
        assert_eq!(sequential, at(2));
        assert_eq!(sequential, at(8));
    }

    #[test]
    fn annealing_time_controls_sweeps_but_saturates() {
        // Success probability on an easy instance should be high for both
        // short and long anneals (the paper's observation that annealing
        // time barely matters in the 20–100 µs regime).
        let m = ferromagnetic_ring(10);
        let hit_rate = |t_us: f64| {
            let reads = sample(&m, &SqaConfig { seed: 2, ..Default::default() }, t_us, 20);
            reads.iter().filter(|s| m.energy(s) == -10.0).count() as f64 / 20.0
        };
        let short = hit_rate(20.0);
        let long = hit_rate(100.0);
        assert!(short > 0.3, "20µs hit rate {short}");
        assert!(long > 0.3, "100µs hit rate {long}");
        assert!((long - short).abs() < 0.5, "time impact should be modest");
    }

    #[test]
    fn reverse_annealing_refines_a_near_optimal_state() {
        // Start one flip away from the ferromagnetic ground state: reverse
        // annealing must repair it.
        let m = ferromagnetic_ring(10);
        let mut initial = vec![1i8; 10];
        initial[3] = -1;
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SqaConfig::default();
        let refined = reverse_anneal_once(&m, &cfg, &initial, 1.0, 60.0, &mut rng);
        assert_eq!(m.energy(&refined), -10.0, "one flip should be repaired");
        assert!(m.energy(&refined) <= m.energy(&initial));
    }

    #[test]
    fn reverse_annealing_with_tiny_gamma_stays_local() {
        // A negligible reversal point re-introduces almost no fluctuation:
        // the state should stay at (or improve on) the initial energy, not
        // scramble to random.
        let m = ferromagnetic_ring(8);
        let initial = vec![1i8; 8]; // already the ground state
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = SqaConfig { temperature: 0.02, ..Default::default() };
        let out = reverse_anneal_once(&m, &cfg, &initial, 0.05, 40.0, &mut rng);
        assert_eq!(m.energy(&out), -8.0, "ground state must survive a gentle reversal");
    }

    #[test]
    #[should_panic(expected = "initial state must cover")]
    fn reverse_annealing_rejects_wrong_length() {
        let m = ferromagnetic_ring(4);
        let mut rng = StdRng::seed_from_u64(0);
        reverse_anneal_once(&m, &SqaConfig::default(), &[1, 1], 1.0, 20.0, &mut rng);
    }

    #[test]
    fn reads_are_independent_samples() {
        let m = ferromagnetic_ring(6);
        let reads = sample(&m, &SqaConfig::default(), 50.0, 8);
        assert_eq!(reads.len(), 8);
        // Both ferromagnetic ground states (+1…+1 and −1…−1) appear over
        // enough reads.
        let ups = reads.iter().filter(|s| s[0] == 1 && m.energy(s) == -6.0).count();
        let downs = reads.iter().filter(|s| s[0] == -1 && m.energy(s) == -6.0).count();
        assert!(ups + downs >= 6, "most reads should reach the ground state");
        assert!(ups > 0 && downs > 0, "degenerate states should both occur");
    }
}
