//! Path-integral Monte-Carlo simulated quantum annealing (SQA).
//!
//! The transverse-field Ising Hamiltonian
//! `H(s) = −Γ(s) Σ σ^x_i + B(s) H_problem` is simulated through the
//! Suzuki–Trotter mapping onto `P` coupled classical replicas ("imaginary
//! time slices"): the quantum kinetic term becomes a ferromagnetic coupling
//!
//! ```text
//! J_⊥(Γ) = −(P·T / 2) · ln tanh(Γ / (P·T))
//! ```
//!
//! between corresponding spins of adjacent slices (periodic). Annealing
//! lowers Γ from `gamma0` to ~0 over the sweep schedule; quantum
//! fluctuations (weak inter-slice coupling early on) let the state tunnel
//! between classical configurations, which is the mechanism quantum
//! annealers exploit. The annealing *time* maps linearly onto Monte-Carlo
//! sweeps.
//!
//! # The packed kernel
//!
//! Both the forward anneal and reverse annealing run on one shared
//! `Lattice` kernel with two structural optimisations over a naive
//! slice-by-slice Metropolis loop:
//!
//! * **Multi-spin coding.** The `P ≤ 64` Trotter slices of each problem
//!   spin live in a single `u64` word (bit `k` set ⇔ slice `k` is `+1`).
//!   One rotate + XOR per site yields the inter-slice agreement pattern of
//!   *all* slices at once, and the ferromagnetic ΔE contribution reduces to
//!   a 3-entry table lookup indexed by how many of the two imaginary-time
//!   neighbours agree. Slices are visited in checkerboard (parity) batches
//!   so the agreement masks stay valid across a whole batch.
//! * **Incremental ΔE.** The coupling part of every spin's local field,
//!   `Σ_j J_ij s_j^(k)`, is cached per `(site, slice)` and updated in
//!   O(degree) only when a neighbouring flip is *accepted*. A proposal
//!   costs O(1) instead of the O(degree) field recomputation the previous
//!   implementation paid per proposal, and per-slice problem energies are
//!   maintained incrementally alongside.
//!
//! The model itself is walked through [`CompiledIsing`] CSR adjacency, so
//! no per-anneal `Vec<Vec<…>>` neighbour tables are rebuilt.

use qjo_exec::{par_map_seeded, Parallelism};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

use qjo_qubo::{CompiledIsing, IsingModel};

/// Floor on the number of Monte-Carlo sweeps in any anneal.
///
/// Forward and reverse anneals historically disagreed (2 vs 4); the shared
/// kernel pins both to this single documented value. Four sweeps is the
/// minimum for the triangle (reverse) schedule to visit the ramp-up, the
/// reversal point, and the ramp-down with at least one sweep each.
pub const MIN_SWEEPS: usize = 4;

/// SQA parameters.
#[derive(Debug, Clone, Copy)]
pub struct SqaConfig {
    /// Number of Trotter slices `P` (clamped to `2..=64`; the packed
    /// kernel stores one slice per bit of a `u64` word).
    pub trotter_slices: usize,
    /// Simulation temperature (in problem-energy units). Annealers operate
    /// cold relative to the programmed problem scale.
    pub temperature: f64,
    /// Initial transverse field Γ(0) (in problem-energy units).
    pub gamma0: f64,
    /// Monte-Carlo sweeps executed per microsecond of annealing time.
    pub sweeps_per_us: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the read loop of [`sample`]; affects wall-clock
    /// only, never results.
    pub parallelism: Parallelism,
}

impl Default for SqaConfig {
    fn default() -> Self {
        SqaConfig {
            trotter_slices: 4,
            temperature: 0.08,
            gamma0: 3.0,
            sweeps_per_us: 2.0,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

/// The inter-slice coupling strength at transverse field `gamma`.
pub fn trotter_coupling(gamma: f64, slices: usize, temperature: f64) -> f64 {
    let pt = slices as f64 * temperature;
    let g = (gamma / pt).max(1e-12);
    -(pt / 2.0) * g.tanh().ln()
}

/// Number of Metropolis sweeps for a given annealing time, floored at
/// [`MIN_SWEEPS`]. Both [`anneal_once`] and [`reverse_anneal_once`] route
/// through this.
pub fn sweep_count(annealing_time_us: f64, sweeps_per_us: f64) -> usize {
    ((annealing_time_us * sweeps_per_us).ceil() as usize).max(MIN_SWEEPS)
}

/// Transverse-field schedule over the normalised sweep fraction `s ∈ [0,1]`.
#[derive(Debug, Clone, Copy)]
enum GammaSchedule {
    /// Forward anneal: linear ramp from `gamma0` down to 0.
    Ramp { gamma0: f64 },
    /// Reverse anneal: Γ rises to `peak` at the midpoint, then falls back
    /// to ~0 (clamped away from exactly zero).
    Triangle { peak: f64 },
}

impl GammaSchedule {
    fn gamma(self, s_frac: f64) -> f64 {
        match self {
            GammaSchedule::Ramp { gamma0 } => gamma0 * (1.0 - s_frac),
            GammaSchedule::Triangle { peak } => {
                if s_frac < 0.5 { peak * (s_frac * 2.0) } else { peak * (2.0 - s_frac * 2.0) }
                    .max(1e-9)
            }
        }
    }
}

/// Metropolis rejection cutoff on `x = ΔE/T`: beyond `ln(2⁵³)` the
/// acceptance probability `exp(−x)` falls below 2⁻⁵³, the resolution of
/// the uniform draw, so the only representable uniform that could accept
/// is exactly 0.0 (a once-per-2⁵³-draws event). Such proposals are
/// rejected outright without spending a draw or an `exp` — which removes
/// the two most expensive operations from the late-anneal regime, where
/// most proposals fight the full `+4·J_⊥` ferromagnetic penalty.
const NEGLIGIBLE_ACCEPTANCE: f64 = 36.736_800_569_677_1;

/// Orders a and b such that NaN energies always lose: finite (and ±∞)
/// energies rank strictly before any NaN, and ties fall back to a total
/// order. `min_by(better_energy)` therefore never returns a NaN slice
/// while a non-NaN one exists — the previous `partial_cmp().unwrap_or
/// (Equal)` selection let a NaN replica win arbitrarily.
fn better_energy(a: f64, b: f64) -> std::cmp::Ordering {
    a.is_nan().cmp(&b.is_nan()).then_with(|| a.total_cmp(&b))
}

/// The shared SQA spin lattice: `P` Trotter slices of `n` problem spins,
/// packed one word per site.
struct Lattice<'a> {
    model: &'a CompiledIsing,
    /// Trotter slices (2..=64).
    p: usize,
    /// Low `p` bits set.
    slice_mask: u64,
    /// `words[i]` bit `k` is spin `i` of slice `k` (`1 ⇔ +1`).
    words: Vec<u64>,
    /// Cached coupling field `Σ_j J_ij s_j^(k)` at `[i * p + k]` (site-major
    /// so one site's slice row is contiguous). Fields `h_i` are excluded —
    /// they are constants read from the model.
    local: Vec<f64>,
    /// Incrementally maintained problem energy of each slice.
    slice_energy: Vec<f64>,
    /// Scratch site visiting order, reshuffled every sweep.
    site_order: Vec<usize>,
    /// Checkerboard slice batches: same-parity slices are never
    /// imaginary-time neighbours, so one batch's agreement masks stay
    /// valid throughout the batch. Odd `P` puts the wrap-around slice
    /// `P−1` (adjacent to slice 0, same parity) in a batch of its own.
    batches: Vec<Vec<usize>>,
}

impl<'a> Lattice<'a> {
    /// Builds a lattice with every slice set to the given classical state.
    fn from_state(model: &'a CompiledIsing, p: usize, initial: &[i8]) -> Self {
        let n = model.num_spins();
        debug_assert_eq!(initial.len(), n);
        let slice_mask = if p == 64 { u64::MAX } else { (1u64 << p) - 1 };
        let words =
            initial.iter().map(|&s| if s > 0 { slice_mask } else { 0 }).collect::<Vec<u64>>();
        Self::finish(model, p, slice_mask, words)
    }

    /// Builds a lattice with independently random spins, consuming one
    /// `random_bool` draw per `(site, slice)` in site-major order.
    fn random(model: &'a CompiledIsing, p: usize, rng: &mut StdRng) -> Self {
        let n = model.num_spins();
        let slice_mask = if p == 64 { u64::MAX } else { (1u64 << p) - 1 };
        let words = (0..n)
            .map(|_| {
                let mut w = 0u64;
                for k in 0..p {
                    if rng.random_bool(0.5) {
                        w |= 1u64 << k;
                    }
                }
                w
            })
            .collect();
        Self::finish(model, p, slice_mask, words)
    }

    fn finish(model: &'a CompiledIsing, p: usize, slice_mask: u64, words: Vec<u64>) -> Self {
        assert!((2..=64).contains(&p), "trotter slices must be in 2..=64, got {p}");
        let n = model.num_spins();
        let mut batches: Vec<Vec<usize>> = vec![
            (0..p).step_by(2).filter(|&k| p.is_multiple_of(2) || k != p - 1).collect(),
            (1..p).step_by(2).collect(),
        ];
        if p % 2 == 1 {
            batches.push(vec![p - 1]);
        }
        let mut lattice = Lattice {
            model,
            p,
            slice_mask,
            words,
            local: vec![0.0; n * p],
            slice_energy: vec![0.0; p],
            site_order: (0..n).collect(),
            batches,
        };
        for i in 0..n {
            for k in 0..p {
                lattice.local[i * p + k] = lattice.recompute_local(i, k);
            }
        }
        for k in 0..p {
            lattice.slice_energy[k] = model.energy(&lattice.extract_slice(k));
        }
        lattice
    }

    #[inline]
    fn spin(&self, i: usize, k: usize) -> i8 {
        if self.words[i] >> k & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Coupling field of `(i, k)` summed from scratch (test / init path).
    fn recompute_local(&self, i: usize, k: usize) -> f64 {
        let mut acc = 0.0;
        for (j, w) in self.model.neighbors(i) {
            acc += w * f64::from(self.spin(j, k));
        }
        acc
    }

    fn extract_slice(&self, k: usize) -> Vec<i8> {
        (0..self.words.len()).map(|i| self.spin(i, k)).collect()
    }

    /// One full Metropolis sweep over every `(site, slice)` at inter-slice
    /// coupling `j_perp`. Sites are visited in a freshly shuffled order;
    /// within a site, slices go batch by batch (see `batches`).
    fn sweep(&mut self, j_perp: f64, temp: f64, rng: &mut StdRng) {
        let model = self.model;
        let p = self.p;
        let mask = self.slice_mask;
        let inv_p = 1.0 / p as f64;
        let inv_temp = 1.0 / temp;
        // ΔE of the inter-slice term indexed by how many of the two
        // imaginary-time neighbours currently agree with the spin:
        // s·(s_up + s_down) = 2a − 2, so ΔE_⊥ = 2·J_⊥·(2a − 2).
        let dperp = [-4.0 * j_perp, 0.0, 4.0 * j_perp];

        let mut order = std::mem::take(&mut self.site_order);
        let batches = std::mem::take(&mut self.batches);
        order.shuffle(rng);

        for &i in &order {
            let hi = model.field(i);
            let row = i * p;
            for batch in &batches {
                let w = self.words[i];
                // Periodic imaginary-time neighbours of every slice at once.
                let up = ((w >> 1) | (w << (p - 1))) & mask;
                let down = ((w << 1) | (w >> (p - 1))) & mask;
                let agree_up = !(w ^ up) & mask;
                let agree_down = !(w ^ down) & mask;
                let mut flips = 0u64;
                for &k in batch {
                    let a = ((agree_up >> k) & 1) + ((agree_down >> k) & 1);
                    let s = if w >> k & 1 == 1 { 1.0 } else { -1.0 };
                    let local = hi + self.local[row + k];
                    // Problem term: s·local flips sign (−2·s·local, scaled
                    // by the 1/P slice weight); inter-slice term from the
                    // agreement table.
                    let delta = -2.0 * s * (inv_p * local) + dperp[a as usize];
                    let x = delta * inv_temp;
                    if delta <= 0.0
                        || (x < NEGLIGIBLE_ACCEPTANCE && rng.random::<f64>() < (-x).exp())
                    {
                        flips |= 1u64 << k;
                        let s_new = -s;
                        for (j, jij) in model.neighbors(i) {
                            self.local[j * p + k] += 2.0 * jij * s_new;
                        }
                        self.slice_energy[k] += -2.0 * s * local;
                    }
                }
                // Same-parity slices are not neighbours, so deferring the
                // word update to the end of the batch never feeds a stale
                // agreement mask to a later proposal.
                self.words[i] ^= flips;
            }
        }

        self.site_order = order;
        self.batches = batches;
    }

    /// True (recomputed) problem energies of every slice.
    fn true_energies(&self) -> Vec<f64> {
        (0..self.p).map(|k| self.model.energy(&self.extract_slice(k))).collect()
    }

    /// Returns the slice with the lowest problem energy. NaN energies
    /// never win while a non-NaN slice exists.
    fn best_slice(&self) -> Vec<i8> {
        let energies = self.true_energies();
        debug_assert!(
            energies.iter().all(|e| !e.is_nan()),
            "NaN replica energy: non-finite model coefficients reached the annealer"
        );
        let k = energies
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| better_energy(**a, **b))
            .map(|(k, _)| k)
            .expect("at least two slices");
        self.extract_slice(k)
    }

    /// Worst-case drift of the incremental caches against from-scratch
    /// recomputation; exercised by the property tests.
    #[cfg(test)]
    fn consistency_error(&self) -> f64 {
        let mut err = 0.0f64;
        for i in 0..self.words.len() {
            for k in 0..self.p {
                err = err.max((self.local[i * self.p + k] - self.recompute_local(i, k)).abs());
            }
        }
        for (k, &e) in self.slice_energy.iter().enumerate() {
            let truth = self.model.energy(&self.extract_slice(k));
            err = err.max((e - truth).abs() / (1.0 + truth.abs()));
        }
        err
    }
}

/// Runs `sweeps` Metropolis sweeps under the given Γ schedule, invoking
/// `after_sweep` with the lattice after each one. The single inner loop
/// both [`anneal_once`] and [`reverse_anneal_once`] share.
fn run_schedule(
    lattice: &mut Lattice<'_>,
    schedule: GammaSchedule,
    sweeps: usize,
    temp: f64,
    rng: &mut StdRng,
    mut after_sweep: impl FnMut(&Lattice<'_>, usize),
) {
    for sweep in 0..sweeps {
        let s_frac = sweep as f64 / (sweeps - 1).max(1) as f64;
        let gamma = schedule.gamma(s_frac);
        let j_perp = trotter_coupling(gamma, lattice.p, temp);
        lattice.sweep(j_perp, temp, rng);
        after_sweep(lattice, sweep);
    }
}

/// Runs one SQA anneal on a pre-compiled model and returns the best
/// slice's spin configuration.
///
/// Prefer this over [`anneal_once`] when annealing the same model many
/// times: the CSR compilation happens once instead of per read.
pub fn anneal_compiled(
    model: &CompiledIsing,
    config: &SqaConfig,
    annealing_time_us: f64,
    rng: &mut StdRng,
) -> Vec<i8> {
    let p = config.trotter_slices.clamp(2, 64);
    let sweeps = sweep_count(annealing_time_us, config.sweeps_per_us);
    qjo_obs::counter!("sqa.anneals").incr();
    qjo_obs::counter!("sqa.sweeps").add(sweeps as u64);

    let temp = config.temperature.max(1e-9);
    let mut lattice = Lattice::random(model, p, rng);

    // Replica energies are expensive (P energy evaluations per kept
    // sweep), so only exemplar units record them — unit 0 of each
    // enclosing par_map, i.e. one read per sample() call.
    let replica_min = qjo_obs::convergence::exemplar_series("sqa", "replica_energy_min");
    let replica_mean = qjo_obs::convergence::exemplar_series("sqa", "replica_energy_mean");

    run_schedule(
        &mut lattice,
        GammaSchedule::Ramp { gamma0: config.gamma0 },
        sweeps,
        temp,
        rng,
        |lattice, sweep| {
            if replica_min.wants(sweep as u64) {
                let energies = lattice.true_energies();
                replica_min
                    .record(sweep as u64, energies.iter().copied().fold(f64::INFINITY, f64::min));
                replica_mean.record(sweep as u64, energies.iter().sum::<f64>() / p as f64);
            }
        },
    );

    // Γ ≈ 0 at the end: slices have (mostly) collapsed; report the best.
    lattice.best_slice()
}

/// Runs one SQA anneal and returns the best slice's spin configuration.
pub fn anneal_once(
    ising: &IsingModel,
    config: &SqaConfig,
    annealing_time_us: f64,
    rng: &mut StdRng,
) -> Vec<i8> {
    anneal_compiled(&ising.compile(), config, annealing_time_us, rng)
}

/// Runs `num_reads` independent anneals.
///
/// Read `i` derives its own RNG stream from `(config.seed, i)` via
/// [`qjo_exec::stream_seed`], so the returned reads are bit-identical at
/// any `config.parallelism` setting. The model is compiled to CSR once and
/// shared by every read.
pub fn sample(
    ising: &IsingModel,
    config: &SqaConfig,
    annealing_time_us: f64,
    num_reads: usize,
) -> Vec<Vec<i8>> {
    let compiled = ising.compile();
    let reads: Vec<usize> = (0..num_reads).collect();
    par_map_seeded(reads, config.seed, config.parallelism, |_, rng| {
        anneal_compiled(&compiled, config, annealing_time_us, rng)
    })
}

/// Reverse annealing (Venturelli & Kondratyev — the paper's ref \[81\]):
/// starts from a known classical state, ramps the transverse field up to
/// `reversal_gamma` (partially "melting" the state), pauses, and anneals
/// back down. Refines a good classical solution by quantum-style local
/// exploration instead of searching from scratch.
pub fn reverse_anneal_once(
    ising: &IsingModel,
    config: &SqaConfig,
    initial: &[i8],
    reversal_gamma: f64,
    annealing_time_us: f64,
    rng: &mut StdRng,
) -> Vec<i8> {
    let n = ising.num_spins();
    assert_eq!(initial.len(), n, "initial state must cover every spin");
    assert!(reversal_gamma > 0.0, "reversal point must re-introduce fluctuations");
    let p = config.trotter_slices.clamp(2, 64);
    let sweeps = sweep_count(annealing_time_us, config.sweeps_per_us);
    let temp = config.temperature.max(1e-9);

    let model = ising.compile();
    // All slices start in the given classical state.
    let mut lattice = Lattice::from_state(&model, p, initial);

    // Track the best configuration visited (the refinement semantics: the
    // walk may wander past the reversal point; what matters is the best
    // point it touched in the initial state's neighbourhood). The cheap
    // incremental slice energies act as a filter; a candidate only pays
    // for an exact recomputation when it might beat the best so far.
    let mut best = initial.to_vec();
    let mut best_energy = model.energy(initial);

    run_schedule(
        &mut lattice,
        GammaSchedule::Triangle { peak: reversal_gamma },
        sweeps,
        temp,
        rng,
        |lattice, _| {
            let guard = 1e-6 * (1.0 + best_energy.abs());
            for k in 0..p {
                if lattice.slice_energy[k] < best_energy + guard {
                    let slice = lattice.extract_slice(k);
                    let e = model.energy(&slice);
                    if e < best_energy {
                        best_energy = e;
                        best.copy_from_slice(&slice);
                    }
                }
            }
        },
    );

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ferromagnetic_ring(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 0..n {
            m.add_coupling(i, (i + 1) % n, -1.0);
        }
        m
    }

    /// A random Ising instance with mixed-sign couplings and fields.
    fn random_instance(n: usize, rng: &mut StdRng) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 0..n {
            if rng.random_bool(0.7) {
                m.add_field(i, rng.random_range(-1.5..1.5));
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                if rng.random_bool(0.3) {
                    m.add_coupling(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        m
    }

    #[test]
    fn trotter_coupling_diverges_as_gamma_vanishes() {
        let strong = trotter_coupling(1e-9, 8, 0.1);
        let weak = trotter_coupling(3.0, 8, 0.1);
        assert!(strong > weak, "{strong} vs {weak}");
        assert!(strong > 5.0, "slices must lock when Γ → 0: {strong}");
        assert!(weak >= 0.0);
    }

    #[test]
    fn finds_ground_state_of_ferromagnet() {
        let m = ferromagnetic_ring(12);
        let reads = sample(&m, &SqaConfig::default(), 100.0, 10);
        let best = reads.iter().map(|s| m.energy(s)).fold(f64::INFINITY, f64::min);
        assert_eq!(best, -12.0, "ferromagnetic ring ground energy");
    }

    #[test]
    fn finds_ground_state_with_fields() {
        // Fields pin each spin individually: trivially solvable, catches
        // sign errors in the local-field computation.
        let mut m = IsingModel::new(6);
        for i in 0..6 {
            m.add_field(i, if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let reads = sample(&m, &SqaConfig::default(), 50.0, 5);
        let best = reads.iter().map(|s| m.energy(s)).fold(f64::INFINITY, f64::min);
        assert_eq!(best, -6.0);
    }

    #[test]
    fn frustrated_triangle_reaches_degenerate_ground_state() {
        // Antiferromagnetic triangle: ground energy -1 (one unhappy bond).
        let mut m = IsingModel::new(3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            m.add_coupling(a, b, 1.0);
        }
        let reads = sample(&m, &SqaConfig::default(), 50.0, 10);
        let best = reads.iter().map(|s| m.energy(s)).fold(f64::INFINITY, f64::min);
        assert_eq!(best, -1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = ferromagnetic_ring(8);
        let a = sample(&m, &SqaConfig { seed: 5, ..Default::default() }, 20.0, 3);
        let b = sample(&m, &SqaConfig { seed: 5, ..Default::default() }, 20.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_reads() {
        let m = ferromagnetic_ring(10);
        let at = |threads| {
            let cfg =
                SqaConfig { seed: 3, parallelism: Parallelism::new(threads), ..Default::default() };
            sample(&m, &cfg, 20.0, 9)
        };
        let sequential = at(1);
        assert_eq!(sequential, at(2));
        assert_eq!(sequential, at(8));
    }

    #[test]
    fn annealing_time_controls_sweeps_but_saturates() {
        // Success probability on an easy instance should be high for both
        // short and long anneals (the paper's observation that annealing
        // time barely matters in the 20–100 µs regime).
        let m = ferromagnetic_ring(10);
        let hit_rate = |t_us: f64| {
            let reads = sample(&m, &SqaConfig { seed: 2, ..Default::default() }, t_us, 20);
            reads.iter().filter(|s| m.energy(s) == -10.0).count() as f64 / 20.0
        };
        let short = hit_rate(20.0);
        let long = hit_rate(100.0);
        assert!(short > 0.3, "20µs hit rate {short}");
        assert!(long > 0.3, "100µs hit rate {long}");
        assert!((long - short).abs() < 0.5, "time impact should be modest");
    }

    #[test]
    fn reverse_annealing_refines_a_near_optimal_state() {
        // Start one flip away from the ferromagnetic ground state: reverse
        // annealing must repair it.
        let m = ferromagnetic_ring(10);
        let mut initial = vec![1i8; 10];
        initial[3] = -1;
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SqaConfig::default();
        let refined = reverse_anneal_once(&m, &cfg, &initial, 1.0, 60.0, &mut rng);
        assert_eq!(m.energy(&refined), -10.0, "one flip should be repaired");
        assert!(m.energy(&refined) <= m.energy(&initial));
    }

    #[test]
    fn reverse_annealing_with_tiny_gamma_stays_local() {
        // A negligible reversal point re-introduces almost no fluctuation:
        // the state should stay at (or improve on) the initial energy, not
        // scramble to random.
        let m = ferromagnetic_ring(8);
        let initial = vec![1i8; 8]; // already the ground state
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = SqaConfig { temperature: 0.02, ..Default::default() };
        let out = reverse_anneal_once(&m, &cfg, &initial, 0.05, 40.0, &mut rng);
        assert_eq!(m.energy(&out), -8.0, "ground state must survive a gentle reversal");
    }

    #[test]
    #[should_panic(expected = "initial state must cover")]
    fn reverse_annealing_rejects_wrong_length() {
        let m = ferromagnetic_ring(4);
        let mut rng = StdRng::seed_from_u64(0);
        reverse_anneal_once(&m, &SqaConfig::default(), &[1, 1], 1.0, 20.0, &mut rng);
    }

    #[test]
    fn reads_are_independent_samples() {
        let m = ferromagnetic_ring(6);
        let reads = sample(&m, &SqaConfig::default(), 50.0, 8);
        assert_eq!(reads.len(), 8);
        // Both ferromagnetic ground states (+1…+1 and −1…−1) appear over
        // enough reads.
        let ups = reads.iter().filter(|s| s[0] == 1 && m.energy(s) == -6.0).count();
        let downs = reads.iter().filter(|s| s[0] == -1 && m.energy(s) == -6.0).count();
        assert!(ups + downs >= 6, "most reads should reach the ground state");
        assert!(ups > 0 && downs > 0, "degenerate states should both occur");
    }

    // ---- sweep floor -----------------------------------------------------

    #[test]
    fn sweep_floor_is_unified_at_min_sweeps() {
        // Regression pin: forward and reverse anneals once disagreed on
        // their sweep floors (2 vs 4). Both now route through sweep_count.
        assert_eq!(MIN_SWEEPS, 4);
        assert_eq!(sweep_count(0.0, 2.0), MIN_SWEEPS);
        assert_eq!(sweep_count(0.5, 2.0), MIN_SWEEPS);
        assert_eq!(sweep_count(100.0, 2.0), 200);
        // Zero-time anneals still work and burn exactly the floor.
        let m = ferromagnetic_ring(4);
        let before = qjo_obs::counter!("sqa.sweeps").get();
        let mut rng = StdRng::seed_from_u64(1);
        anneal_once(&m, &SqaConfig::default(), 0.0, &mut rng);
        assert_eq!(qjo_obs::counter!("sqa.sweeps").get() - before, MIN_SWEEPS as u64);
    }

    // ---- NaN-safe best-slice selection -----------------------------------

    #[test]
    fn nan_energies_never_win_selection() {
        use std::cmp::Ordering;
        assert_eq!(better_energy(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(better_energy(1.0, f64::NAN), Ordering::Less);
        assert_eq!(better_energy(f64::NEG_INFINITY, f64::NAN), Ordering::Less);
        // The sign-flipped NaN pattern that f64::total_cmp alone would
        // rank *below* −∞.
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | 1 << 63);
        assert!(neg_nan.is_nan());
        assert_eq!(better_energy(neg_nan, f64::NEG_INFINITY), Ordering::Greater);
        let mut energies = [f64::NAN, -3.0, neg_nan, 1.0];
        energies.sort_by(|a, b| better_energy(*a, *b));
        assert_eq!(energies[0], -3.0);
        assert_eq!(energies[1], 1.0);
        assert!(energies[2].is_nan() && energies[3].is_nan());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "NaN replica energy")]
    fn injected_nan_model_trips_the_debug_assert() {
        // ∞ field + ∞ coupling produce ∞ − ∞ = NaN slice energies for some
        // spin configurations; the debug assert must catch them instead of
        // letting an arbitrary slice win.
        let mut m = IsingModel::new(2);
        m.add_field(0, f64::INFINITY);
        m.add_coupling(0, 1, f64::INFINITY);
        let mut rng = StdRng::seed_from_u64(0);
        // Many attempts: at least one final lattice contains both a NaN
        // and a non-NaN slice or an all-NaN set; either way the assert
        // fires as soon as any NaN energy is present.
        for seed in 0..20 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            anneal_once(&m, &SqaConfig::default(), 5.0, &mut rng2);
        }
        anneal_once(&m, &SqaConfig::default(), 5.0, &mut rng);
    }

    // ---- packed-kernel property tests ------------------------------------

    /// Scalar mirror of the packed kernel: same proposal order, same RNG
    /// consumption, same float expressions — but spins stored as plain
    /// `i8`s and the inter-slice term read scalar-wise. Validates the u64
    /// bit manipulation (rotates, masks, deferred flips) bit-for-bit.
    struct ScalarLattice<'a> {
        model: &'a CompiledIsing,
        p: usize,
        /// `spins[i * p + k]`, site-major like the packed local cache.
        spins: Vec<i8>,
        local: Vec<f64>,
        slice_energy: Vec<f64>,
        site_order: Vec<usize>,
        batches: Vec<Vec<usize>>,
    }

    impl<'a> ScalarLattice<'a> {
        fn mirror(lattice: &Lattice<'a>) -> Self {
            let n = lattice.words.len();
            let p = lattice.p;
            let mut spins = vec![0i8; n * p];
            for i in 0..n {
                for k in 0..p {
                    spins[i * p + k] = lattice.spin(i, k);
                }
            }
            ScalarLattice {
                model: lattice.model,
                p,
                spins,
                local: lattice.local.clone(),
                slice_energy: lattice.slice_energy.clone(),
                site_order: lattice.site_order.clone(),
                batches: lattice.batches.clone(),
            }
        }

        fn sweep(&mut self, j_perp: f64, temp: f64, rng: &mut StdRng) {
            let model = self.model;
            let p = self.p;
            let inv_p = 1.0 / p as f64;
            let inv_temp = 1.0 / temp;
            let dperp = [-4.0 * j_perp, 0.0, 4.0 * j_perp];
            let mut order = std::mem::take(&mut self.site_order);
            let batches = std::mem::take(&mut self.batches);
            order.shuffle(rng);
            for &i in &order {
                let hi = model.field(i);
                let row = i * p;
                for batch in &batches {
                    for &k in batch {
                        let cur = self.spins[row + k];
                        let up = self.spins[row + (k + 1) % p];
                        let down = self.spins[row + (k + p - 1) % p];
                        let a = usize::from(up == cur) + usize::from(down == cur);
                        let s = f64::from(cur);
                        let local = hi + self.local[row + k];
                        let delta = -2.0 * s * (inv_p * local) + dperp[a];
                        let x = delta * inv_temp;
                        if delta <= 0.0
                            || (x < NEGLIGIBLE_ACCEPTANCE && rng.random::<f64>() < (-x).exp())
                        {
                            self.spins[row + k] = -cur;
                            let s_new = -s;
                            for (j, jij) in model.neighbors(i) {
                                self.local[j * p + k] += 2.0 * jij * s_new;
                            }
                            self.slice_energy[k] += -2.0 * s * local;
                        }
                    }
                }
            }
            self.site_order = order;
            self.batches = batches;
        }
    }

    #[test]
    fn packed_sweeps_match_scalar_reference_bit_for_bit() {
        for &p in &[2usize, 3, 4, 5, 8, 63, 64] {
            let mut rng = StdRng::seed_from_u64(1000 + p as u64);
            let model = random_instance(14, &mut rng).compile();
            let mut packed = Lattice::random(&model, p, &mut rng);
            let mut scalar = ScalarLattice::mirror(&packed);
            let mut rng_packed = StdRng::seed_from_u64(7 * p as u64);
            let mut rng_scalar = rng_packed.clone();
            for sweep in 0..30 {
                let gamma = 3.0 * (1.0 - sweep as f64 / 29.0);
                let j_perp = trotter_coupling(gamma, p, 0.08);
                packed.sweep(j_perp, 0.08, &mut rng_packed);
                scalar.sweep(j_perp, 0.08, &mut rng_scalar);
                for i in 0..model.num_spins() {
                    for k in 0..p {
                        assert_eq!(
                            packed.spin(i, k),
                            scalar.spins[i * p + k],
                            "p={p} sweep={sweep} site={i} slice={k}"
                        );
                    }
                }
                assert_eq!(packed.local, scalar.local, "p={p} sweep={sweep}");
                assert_eq!(packed.slice_energy, scalar.slice_energy, "p={p} sweep={sweep}");
            }
        }
    }

    #[test]
    fn incremental_caches_agree_with_full_recomputation() {
        // After every sweep (i.e. after a few hundred accepted flips), the
        // incrementally maintained local fields and slice energies must
        // still agree with from-scratch recomputation.
        for case in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(500 + case);
            let model = random_instance(12 + case as usize, &mut rng).compile();
            let p = 2 + (case as usize % 7);
            let mut lattice = Lattice::random(&model, p, &mut rng);
            assert!(lattice.consistency_error() < 1e-9, "fresh lattice must be consistent");
            for sweep in 0..25 {
                let gamma = 2.5 * (1.0 - sweep as f64 / 24.0);
                let j_perp = trotter_coupling(gamma, p, 0.1);
                lattice.sweep(j_perp, 0.1, &mut rng);
                let err = lattice.consistency_error();
                assert!(err < 1e-9, "case={case} sweep={sweep}: drift {err}");
            }
        }
    }

    #[test]
    fn compiled_and_uncompiled_entry_points_agree() {
        let m = ferromagnetic_ring(9);
        let compiled = m.compile();
        let cfg = SqaConfig::default();
        let mut a = StdRng::seed_from_u64(11);
        let mut b = a.clone();
        assert_eq!(
            anneal_once(&m, &cfg, 25.0, &mut a),
            anneal_compiled(&compiled, &cfg, 25.0, &mut b)
        );
    }
}
