//! The end-to-end annealer pipeline: embed → program → anneal → unembed.
//!
//! [`AnnealerSampler`] plays the role of D-Wave's cloud sampler in the
//! paper's experiments: a QUBO is converted to Ising form, minor-embedded
//! onto the hardware graph, programmed with chain couplings, distorted by
//! ICE noise, annealed by the path-integral SQA engine, and read back with
//! majority-vote chain repair.
//!
//! Reads are independent work units: read `i` derives its own RNG stream
//! (ICE noise draws and SQA dynamics) from `(sqa.seed, i)` via
//! [`qjo_exec::stream_seed`], so a job's sample set is bit-identical at
//! any [`Parallelism`] setting.

use qjo_exec::{par_map_seeded, Parallelism};

use qjo_qubo::{ising, IsingModel, Qubo, SampleSet, ShotBuffer};
use qjo_transpile::Topology;

use crate::chain::{chain_break_fraction, unembed_majority, uniform_torque_compensation};
use crate::embed::{Embedder, Embedding};
use crate::ice::{normalize, IceNoise};
use crate::sqa::{anneal_compiled, SqaConfig};

/// Errors of the annealing pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnealError {
    /// The embedder could not fit the problem onto the hardware graph —
    /// the paper's hard feasibility limit (Fig. 3).
    EmbeddingFailed {
        /// Number of logical variables that did not fit.
        num_vars: usize,
        /// Size of the hardware graph.
        num_qubits: usize,
    },
}

impl std::fmt::Display for AnnealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnealError::EmbeddingFailed { num_vars, num_qubits } => write!(
                f,
                "could not embed {num_vars} logical variables onto {num_qubits} physical qubits"
            ),
        }
    }
}

impl std::error::Error for AnnealError {}

impl From<AnnealError> for qjo_resil::QjoError {
    fn from(e: AnnealError) -> Self {
        qjo_resil::QjoError::Anneal(e.to_string())
    }
}

/// Embedding attempts before falling back to a clique template: the
/// configured embedder first, then reseeded retries.
const EMBED_ATTEMPTS: usize = 3;
/// Total sampling attempts a job may consume across rejected submissions
/// and chain-storm escalations.
const SAMPLE_ATTEMPTS: u64 = 4;
/// Chain-strength multiplier applied per chain-storm escalation.
const CHAIN_STORM_ESCALATION: f64 = 1.5;
/// Domain-separation constant for reseeding rejected job resubmissions.
const JOB_RESUBMIT_SALT: u64 = 0x6a6f_625f_7265_7375;

/// Everything one sampling job returns.
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// Aggregated logical-space samples; energies are evaluated against the
    /// *original* QUBO (not the noisy embedded problem).
    pub samples: SampleSet,
    /// The embedding used.
    pub embedding: Embedding,
    /// Fraction of chains broken across all reads.
    pub chain_break_fraction: f64,
    /// Physical qubits consumed (Fig. 3's metric).
    pub physical_qubits: usize,
    /// Chain strength that was programmed.
    pub chain_strength: f64,
}

/// A simulated quantum annealer with a fixed hardware graph.
#[derive(Debug, Clone)]
pub struct AnnealerSampler {
    /// Hardware connectivity.
    pub topology: Topology,
    /// Embedding heuristic configuration.
    pub embedder: Embedder,
    /// Explicit chain strength; `None` selects uniform torque compensation.
    pub chain_strength: Option<f64>,
    /// Prefactor for the torque-compensation heuristic.
    pub chain_strength_prefactor: f64,
    /// Analogue noise model.
    pub ice: IceNoise,
    /// Annealing dynamics parameters.
    pub sqa: SqaConfig,
    /// Reads (anneal repetitions) per job.
    pub num_reads: usize,
    /// Spin-reversal transforms to rotate through (1 = gauge averaging
    /// off; D-Wave practice is a handful of gauges per job).
    pub num_gauges: usize,
    /// Annealing time per read, microseconds.
    pub annealing_time_us: f64,
    /// Worker threads for the read loop; affects wall-clock only, never
    /// results.
    pub parallelism: Parallelism,
    /// Chain-break fraction above which a read batch counts as a
    /// *chain-break storm* and is resampled with the chain strength
    /// escalated ×1.5 (bounded attempts). `None` (the default) keeps
    /// storms injection-only, so existing seeds reproduce exactly.
    pub chain_storm_threshold: Option<f64>,
}

impl AnnealerSampler {
    /// A sampler with Advantage-like defaults on the given hardware graph.
    pub fn new(topology: Topology) -> Self {
        AnnealerSampler {
            topology,
            embedder: Embedder::default(),
            chain_strength: None,
            chain_strength_prefactor: 1.414,
            ice: IceNoise::advantage(),
            sqa: SqaConfig::default(),
            num_reads: 100,
            num_gauges: 4,
            annealing_time_us: 20.0,
            parallelism: Parallelism::auto(),
            chain_storm_threshold: None,
        }
    }

    /// Runs the full pipeline on a QUBO, embedding it first.
    pub fn sample_qubo(&self, qubo: &Qubo) -> Result<AnnealOutcome, AnnealError> {
        let embedding = self.embed(qubo)?;
        Ok(self.sample_qubo_with_embedding(qubo, embedding))
    }

    /// Finds a minor embedding for a QUBO's interaction graph.
    ///
    /// Degradation ladder: the configured embedder runs first; a failure
    /// (real, or injected at the `anneal.embed` fault site) is retried
    /// with a reseeded embedder, and when the whole attempt budget runs
    /// dry a Pegasus clique template is tried as the fallback of last
    /// resort. Only then is [`AnnealError::EmbeddingFailed`] reported.
    pub fn embed(&self, qubo: &Qubo) -> Result<Embedding, AnnealError> {
        let _span = qjo_obs::span!("anneal.embed");
        let logical = qubo.to_ising();
        let source_edges: Vec<(usize, usize)> =
            logical.couplings().filter(|&(_, _, j)| j != 0.0).map(|(i, j, _)| (i, j)).collect();
        let num_vars = qubo.num_vars();
        let embedded = qjo_resil::with_retries("anneal.embed", EMBED_ATTEMPTS, |attempt| {
            if qjo_resil::should_inject("anneal.embed", self.embedder.seed, attempt as u64) {
                return Err(());
            }
            // Attempt 0 is the configured embedder (so fault-free runs
            // reproduce exactly); retries reseed it — the internal
            // restarts are exhausted, a fresh stream is the lever left.
            let seed = match attempt {
                0 => self.embedder.seed,
                _ => qjo_resil::stream_seed(self.embedder.seed, attempt as u64),
            };
            let embedder = Embedder { seed, ..self.embedder.clone() };
            embedder.embed(num_vars, &source_edges, &self.topology).ok_or(())
        });
        match embedded {
            Ok(embedding) => Ok(embedding),
            Err(()) => {
                self.clique_fallback(num_vars, &source_edges).ok_or(AnnealError::EmbeddingFailed {
                    num_vars,
                    num_qubits: self.topology.num_qubits(),
                })
            }
        }
    }

    /// Clique-template fallback: when the heuristic embedder gives up on
    /// a Pegasus-shaped target, the precomputed template (valid for any
    /// source graph it covers, since a clique majorises everything) may
    /// still fit. Validation gates it on arbitrary topologies.
    fn clique_fallback(
        &self,
        num_vars: usize,
        source_edges: &[(usize, usize)],
    ) -> Option<Embedding> {
        let num_qubits = self.topology.num_qubits();
        // pegasus_like(m) has 8m² qubits; recover m and check the shape.
        let m = ((num_qubits as f64) / 8.0).sqrt().round() as usize;
        if m == 0 || 8 * m * m != num_qubits {
            return None;
        }
        let embedding = crate::clique::template_embed(num_vars, m)?;
        embedding.validate(source_edges, &self.topology).ok()?;
        qjo_obs::counter!("resil.anneal.embed.fallback").incr();
        Some(embedding)
    }

    /// Runs the annealing pipeline with a previously computed embedding
    /// (e.g. to sweep annealing times without re-embedding).
    ///
    /// Two operational failure modes are handled here, both bounded by
    /// an attempt budget (never wall-clock): a *rejected job* (the
    /// `anneal.job` fault site — the scheduler turns the submission away
    /// before any read runs) is resubmitted under a reseeded stream, and
    /// a *chain-break storm* (the `anneal.chain_storm` site, or a real
    /// batch exceeding [`AnnealerSampler::chain_storm_threshold`]) is
    /// resampled with the chain strength escalated ×1.5.
    pub fn sample_qubo_with_embedding(&self, qubo: &Qubo, embedding: Embedding) -> AnnealOutcome {
        let _span = qjo_obs::span!("anneal.sample");
        let logical = qubo.to_ising();
        let base_strength = self.chain_strength.unwrap_or_else(|| {
            uniform_torque_compensation(&logical, self.chain_strength_prefactor)
        });
        let mut chain_strength = base_strength;
        let mut seed = self.sqa.seed;
        let mut attempt: u64 = 0;
        loop {
            if attempt + 1 < SAMPLE_ATTEMPTS
                && qjo_resil::should_inject("anneal.job", self.sqa.seed, attempt)
            {
                qjo_obs::counter!("resil.anneal.job.retries").incr();
                seed = qjo_resil::stream_seed(self.sqa.seed ^ JOB_RESUBMIT_SALT, attempt);
                attempt += 1;
                continue;
            }
            let outcome =
                self.sample_attempt(qubo, &logical, embedding.clone(), chain_strength, seed);
            let stormy = qjo_resil::should_inject("anneal.chain_storm", self.sqa.seed, attempt)
                || self.chain_storm_threshold.is_some_and(|t| outcome.chain_break_fraction > t);
            if stormy && attempt + 1 < SAMPLE_ATTEMPTS {
                qjo_obs::counter!("resil.anneal.chain_storm.escalations").incr();
                chain_strength *= CHAIN_STORM_ESCALATION;
                attempt += 1;
                continue;
            }
            return outcome;
        }
    }

    /// One programmed-anneal-unembed pass at a given chain strength and
    /// read-stream seed (the fault-free path runs exactly one).
    fn sample_attempt(
        &self,
        qubo: &Qubo,
        logical: &IsingModel,
        embedding: Embedding,
        chain_strength: f64,
        seed: u64,
    ) -> AnnealOutcome {
        qjo_obs::counter!("anneal.reads").add(self.num_reads as u64);
        // Compact the problem onto the qubits the embedding actually uses:
        // SQA sweeps every spin of its model, and a 5000-qubit hardware
        // graph with a 300-qubit embedding would waste 94% of each sweep.
        let used: Vec<usize> = {
            let mut v: Vec<usize> = embedding.chains.iter().flatten().copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut dense_of = vec![usize::MAX; self.topology.num_qubits()];
        for (dense, &q) in used.iter().enumerate() {
            dense_of[q] = dense;
        }
        let dense_embedding = Embedding {
            chains: embedding
                .chains
                .iter()
                .map(|chain| chain.iter().map(|&q| dense_of[q]).collect())
                .collect(),
        };
        let mut programmed =
            self.program(logical, &embedding, chain_strength, &dense_of, used.len());
        normalize(&mut programmed);

        let gauges = crate::gauge::gauge_set(
            programmed.num_spins(),
            self.num_gauges.max(1),
            seed ^ 0x9e37_79b9,
        );
        // Compile the programmed problem once; each read clones the flat
        // CSR arrays and applies its gauge + ICE perturbation in place
        // instead of rebuilding two coupling maps per read.
        let compiled = programmed.compile();
        let read_indices: Vec<usize> = (0..self.num_reads).collect();
        let per_read = par_map_seeded(read_indices, seed, self.parallelism, |read_idx, rng| {
            // Spin-reversal transform: rotate through the gauge set so
            // analogue asymmetries average out across reads.
            let gauge = &gauges[read_idx % gauges.len()];
            let mut noisy = compiled.clone();
            gauge.apply_compiled(&mut noisy);
            self.ice.apply_compiled(&mut noisy, rng);
            let dense_spins = anneal_compiled(&noisy, &self.sqa, self.annealing_time_us, rng);
            let dense_spins = gauge.untransform_spins(&dense_spins);
            let read = unembed_majority(&dense_embedding, &dense_spins);
            (ising::spins_to_bits(&read.spins), read)
        });
        // Pack the logical reads into one bit matrix during the (ordered)
        // reduction; duplicate reads then aggregate by hashing packed words
        // and the QUBO energy is evaluated once per distinct assignment.
        let mut reads = ShotBuffer::with_capacity(qubo.num_vars(), self.num_reads);
        let mut unembedded = Vec::with_capacity(self.num_reads);
        for (bits, read) in per_read {
            reads.push_bits(&bits);
            unembedded.push(read);
        }

        // Per-read chain-break fractions, recorded after the deterministic
        // par_map reduction so the series is read-ordered at any thread
        // count. Stride 1: the step is a read index, not an iteration count.
        let chain_breaks = qjo_obs::convergence::series_with_stride("anneal", "chain_break", 1);
        if chain_breaks.is_active() {
            let num_chains = embedding.chains.len().max(1);
            for (read_idx, read) in unembedded.iter().enumerate() {
                chain_breaks.record(read_idx as u64, read.broken_chains as f64 / num_chains as f64);
            }
        }

        let cbf = chain_break_fraction(&unembedded, embedding.chains.len());
        // Written after the deterministic par_map reduction, so the gauge
        // holds the same value at any thread count.
        qjo_obs::gauge!("anneal.chain_break_fraction").set(cbf);
        let physical_qubits = embedding.num_physical_qubits();
        let samples =
            SampleSet::from_shots(&reads, |x| qubo.energy(x).expect("reads have model length"));
        AnnealOutcome {
            samples,
            embedding,
            chain_break_fraction: cbf,
            physical_qubits,
            chain_strength,
        }
    }

    /// Builds the physical Ising problem over the *dense* (used-qubit)
    /// index space: fields split across chain members, couplings split
    /// across available inter-chain couplers, ferromagnetic intra-chain
    /// couplings of `-chain_strength`.
    fn program(
        &self,
        logical: &IsingModel,
        embedding: &Embedding,
        chain_strength: f64,
        dense_of: &[usize],
        num_used: usize,
    ) -> IsingModel {
        let mut phys = IsingModel::new(num_used);
        for (i, h) in logical.fields() {
            if h == 0.0 {
                continue;
            }
            let chain = &embedding.chains[i];
            let share = h / chain.len() as f64;
            for &q in chain {
                phys.add_field(dense_of[q], share);
            }
        }
        for (i, j, jij) in logical.couplings() {
            if jij == 0.0 {
                continue;
            }
            let couplers: Vec<(usize, usize)> = embedding.chains[i]
                .iter()
                .flat_map(|&qa| {
                    embedding.chains[j]
                        .iter()
                        .filter(move |&&qb| self.topology.has_edge(qa, qb))
                        .map(move |&qb| (qa, qb))
                })
                .collect();
            assert!(!couplers.is_empty(), "validated embedding covers every edge");
            let share = jij / couplers.len() as f64;
            for (qa, qb) in couplers {
                phys.add_coupling(dense_of[qa], dense_of[qb], share);
            }
        }
        for chain in &embedding.chains {
            for (idx, &qa) in chain.iter().enumerate() {
                for &qb in &chain[idx + 1..] {
                    if self.topology.has_edge(qa, qb) {
                        phys.add_coupling(dense_of[qa], dense_of[qb], -chain_strength);
                    }
                }
            }
        }
        phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::chimera;
    use qjo_qubo::solve::ExactSolver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn antiferro_pair() -> Qubo {
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 2.0);
        q
    }

    fn random_qubo(seed: u64, n: usize) -> Qubo {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-1.0..1.0));
            for j in i + 1..n {
                if rng.random_bool(0.6) {
                    q.add_quadratic(i, j, rng.random_range(-1.0..1.0));
                }
            }
        }
        q
    }

    #[test]
    fn solves_tiny_problem_to_optimality() {
        let sampler = AnnealerSampler::new(chimera(2));
        let out = sampler.sample_qubo(&antiferro_pair()).expect("fits easily");
        let best = out.samples.best().expect("reads exist");
        assert_eq!(best.energy, -1.0);
        assert_ne!(best.assignment[0], best.assignment[1]);
        assert_eq!(out.samples.total_reads(), 100);
    }

    #[test]
    fn matches_exact_solver_on_random_problems() {
        for seed in 0..3 {
            let q = random_qubo(seed, 8);
            let exact = ExactSolver::new().min_energy(&q).unwrap();
            let sampler = AnnealerSampler { num_reads: 60, ..AnnealerSampler::new(chimera(4)) };
            let out = sampler.sample_qubo(&q).expect("K8-ish fits C4");
            let best = out.samples.best().unwrap().energy;
            assert!(
                best <= exact + 1e-9 + 0.15 * exact.abs().max(1.0),
                "seed {seed}: annealer {best} far from exact {exact}"
            );
        }
    }

    #[test]
    fn embedding_failure_is_reported() {
        // A 3-clique cannot embed in a 2-qubit "hardware" graph.
        let sampler = AnnealerSampler::new(Topology::line(2));
        let mut q = Qubo::new(3);
        for a in 0..3 {
            for b in a + 1..3 {
                q.add_quadratic(a, b, 1.0);
            }
        }
        let err = sampler.sample_qubo(&q).unwrap_err();
        assert_eq!(err, AnnealError::EmbeddingFailed { num_vars: 3, num_qubits: 2 });
    }

    #[test]
    fn outcome_reports_embedding_statistics() {
        let q = random_qubo(1, 6);
        let sampler = AnnealerSampler { num_reads: 20, ..AnnealerSampler::new(chimera(3)) };
        let out = sampler.sample_qubo(&q).unwrap();
        assert!(out.physical_qubits >= 6);
        assert_eq!(out.physical_qubits, out.embedding.num_physical_qubits());
        assert!((0.0..=1.0).contains(&out.chain_break_fraction));
        assert!(out.chain_strength > 0.0);
    }

    #[test]
    fn explicit_chain_strength_is_respected() {
        let q = antiferro_pair();
        let sampler = AnnealerSampler {
            chain_strength: Some(3.5),
            num_reads: 10,
            ..AnnealerSampler::new(chimera(2))
        };
        let out = sampler.sample_qubo(&q).unwrap();
        assert_eq!(out.chain_strength, 3.5);
    }

    #[test]
    fn weak_chains_break_more_often() {
        // Force long chains by embedding a K6 on Chimera, then compare
        // break rates at absurdly weak vs. solid chain strength.
        let mut q = Qubo::new(6);
        for a in 0..6 {
            for b in a + 1..6 {
                q.add_quadratic(a, b, if (a + b) % 2 == 0 { 1.0 } else { -1.0 });
            }
        }
        let base = AnnealerSampler::new(chimera(4));
        let weak = AnnealerSampler { chain_strength: Some(0.05), num_reads: 40, ..base.clone() };
        let solid = AnnealerSampler { chain_strength: Some(4.0), num_reads: 40, ..base };
        let weak_out = weak.sample_qubo(&q).unwrap();
        let solid_out = solid.sample_qubo(&q).unwrap();
        assert!(
            weak_out.chain_break_fraction > solid_out.chain_break_fraction,
            "weak {} vs solid {}",
            weak_out.chain_break_fraction,
            solid_out.chain_break_fraction
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = random_qubo(4, 5);
        let sampler = AnnealerSampler { num_reads: 15, ..AnnealerSampler::new(chimera(3)) };
        let a = sampler.sample_qubo(&q).unwrap();
        let b = sampler.sample_qubo(&q).unwrap();
        assert_eq!(a.samples.samples(), b.samples.samples());
        assert_eq!(a.chain_break_fraction, b.chain_break_fraction);
    }

    #[test]
    fn convergence_recorder_captures_per_read_chain_breaks() {
        let q = random_qubo(2, 5);
        let sampler = AnnealerSampler { num_reads: 7, ..AnnealerSampler::new(chimera(3)) };
        qjo_obs::convergence::start(4);
        let out = sampler.sample_qubo(&q).unwrap();
        let drained = qjo_obs::convergence::drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "anneal").expect("anneal group recorded").1;
        // Stride 1 keeps all 7 reads even though the default stride is 4,
        // and the recorded fractions average to the reported outcome.
        // Concurrent tests may also sample while the recorder is live, so
        // look for any series instance matching this call's statistics.
        let mut by_instance: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for line in csv.lines().filter(|l| l.contains(",chain_break,")) {
            let cols: Vec<&str> = line.split(',').collect();
            by_instance.entry(cols[3]).or_default().push(cols[5].parse().unwrap());
        }
        assert!(
            by_instance.values().any(|reads| reads.len() == 7
                && (reads.iter().sum::<f64>() / 7.0 - out.chain_break_fraction).abs() < 1e-12),
            "{csv}"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let q = random_qubo(6, 6);
        let at = |threads| {
            AnnealerSampler {
                num_reads: 12,
                parallelism: qjo_exec::Parallelism::new(threads),
                ..AnnealerSampler::new(chimera(3))
            }
            .sample_qubo(&q)
            .unwrap()
        };
        let sequential = at(1);
        for threads in [2, 8] {
            let parallel = at(threads);
            assert_eq!(sequential.samples, parallel.samples, "threads={threads}");
            assert_eq!(
                sequential.chain_break_fraction, parallel.chain_break_fraction,
                "threads={threads}"
            );
        }
    }
}
