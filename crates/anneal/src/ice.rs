//! Integrated control errors (ICE): analogue imperfections of annealers.
//!
//! Programmed fields and couplings are realised by analogue electronics
//! with limited precision. D-Wave documents this as ICE: each `h_i` / `J_ij`
//! is perturbed by Gaussian noise, and the programmable range is quantised
//! by the DAC resolution. Both effects distort the energy landscape the
//! hardware actually minimises, which is one driver of the solution-quality
//! collapse the paper observes for growing problem sizes.

use rand::rngs::StdRng;
use rand::RngExt;

use qjo_qubo::{CompiledIsing, IsingModel, IsingTerm};

/// ICE noise parameters (in units of the normalised coefficient range
/// `[−1, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct IceNoise {
    /// Standard deviation of the Gaussian perturbation on fields.
    pub sigma_h: f64,
    /// Standard deviation of the Gaussian perturbation on couplings.
    pub sigma_j: f64,
    /// Number of representable levels per coefficient (DAC resolution);
    /// 0 disables quantisation.
    pub quantisation_levels: u32,
}

impl IceNoise {
    /// Values representative of the D-Wave Advantage documentation.
    pub fn advantage() -> Self {
        IceNoise { sigma_h: 0.02, sigma_j: 0.015, quantisation_levels: 256 }
    }

    /// No analogue error (ideal annealer).
    pub fn none() -> Self {
        IceNoise { sigma_h: 0.0, sigma_j: 0.0, quantisation_levels: 0 }
    }

    /// Applies the noise model to a *normalised* Ising problem (call
    /// [`normalize`] first), returning the distorted problem the hardware
    /// effectively anneals.
    pub fn apply(&self, ising: &IsingModel, rng: &mut StdRng) -> IsingModel {
        let mut out = IsingModel::new(ising.num_spins());
        for (i, h) in ising.fields() {
            if h != 0.0 || self.sigma_h > 0.0 {
                let v = self.quantise(h + self.sigma_h * gaussian(rng));
                if v != 0.0 {
                    out.add_field(i, v);
                }
            }
        }
        for (i, j, jij) in ising.couplings() {
            let v = self.quantise(jij + self.sigma_j * gaussian(rng));
            if v != 0.0 {
                out.add_coupling(i, j, v);
            }
        }
        out
    }

    /// In-place variant of [`IceNoise::apply`] on a compiled model — the
    /// read-loop hot path. Coefficients are visited in the same order the
    /// map-based rebuild iterates (fields by index, then couplings
    /// lexicographic with `i < j`), so the Gaussian stream is consumed
    /// per coefficient exactly as [`IceNoise::apply`] would; a coupling
    /// that quantises to zero stays in the adjacency with weight 0.0,
    /// which contributes nothing to any local field or energy.
    pub fn apply_compiled(&self, ising: &mut CompiledIsing, rng: &mut StdRng) {
        ising.perturb(|term, v| match term {
            IsingTerm::Field(_) => {
                if v != 0.0 || self.sigma_h > 0.0 {
                    self.quantise(v + self.sigma_h * gaussian(rng))
                } else {
                    v
                }
            }
            IsingTerm::Coupling(..) => self.quantise(v + self.sigma_j * gaussian(rng)),
        });
    }

    fn quantise(&self, v: f64) -> f64 {
        let clamped = v.clamp(-1.0, 1.0);
        if self.quantisation_levels < 2 {
            return clamped;
        }
        let half = (self.quantisation_levels / 2) as f64;
        (clamped * half).round() / half
    }
}

/// Rescales an Ising model so all coefficients fit the programmable range
/// `[−1, 1]`, returning the scale factor applied (energies of the
/// normalised problem are `scale ×` the original, offset aside).
pub fn normalize(ising: &mut IsingModel) -> f64 {
    let max = ising.max_abs_coefficient();
    if max <= 1.0 || max == 0.0 {
        return 1.0;
    }
    let scale = 1.0 / max;
    ising.scale(scale);
    scale
}

/// Standard normal variate via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_has_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn compiled_gauge_and_ice_match_the_map_based_rebuild() {
        // The read loop's in-place pipeline (clone → apply_gauge →
        // apply_compiled) must consume the identical Gaussian stream and
        // produce the identical coefficients as transforming and
        // perturbing the uncompiled model and then compiling it.
        let mut m = IsingModel::new(6);
        for i in 0..6 {
            m.add_field(i, 0.1 * i as f64 - 0.2);
        }
        for (a, b, v) in [(0, 1, 0.8), (1, 2, -0.6), (2, 5, 0.4), (0, 4, -1.0), (3, 4, 0.9)] {
            m.add_coupling(a, b, v);
        }
        let gauge = crate::gauge::gauge_set(6, 3, 11).pop().expect("non-identity gauge");
        let ice = IceNoise::advantage();

        let mut rng_map = StdRng::seed_from_u64(99);
        let reference = ice.apply(&gauge.transform(&m), &mut rng_map).compile();

        let mut rng_flat = StdRng::seed_from_u64(99);
        let mut flat = m.compile();
        gauge.apply_compiled(&mut flat);
        ice.apply_compiled(&mut flat, &mut rng_flat);

        for i in 0..6 {
            assert_eq!(flat.field(i), reference.field(i), "field {i}");
            // The flat path may keep quantised-to-zero couplings as
            // 0.0-weight entries; compare effective coefficients instead
            // of adjacency shape.
            for (j, w) in flat.neighbors(i) {
                let r = reference.neighbors(i).find(|&(c, _)| c == j).map_or(0.0, |(_, w)| w);
                assert_eq!(w, r, "coupling ({i},{j})");
            }
        }
    }

    #[test]
    fn normalize_caps_range_and_reports_scale() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 4.0);
        m.add_coupling(0, 1, -8.0);
        let scale = normalize(&mut m);
        assert!((scale - 0.125).abs() < 1e-12);
        assert!((m.coupling(0, 1) + 1.0).abs() < 1e-12);
        assert!((m.field(0) - 0.5).abs() < 1e-12);
        // Already-normalised problems are untouched.
        let mut small = IsingModel::new(1);
        small.add_field(0, 0.5);
        assert_eq!(normalize(&mut small), 1.0);
    }

    #[test]
    fn noiseless_ice_is_identity_up_to_clamping() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 0.5);
        m.add_coupling(0, 1, -0.75);
        let mut rng = StdRng::seed_from_u64(0);
        let out = IceNoise::none().apply(&m, &mut rng);
        assert_eq!(out.field(0), 0.5);
        assert_eq!(out.coupling(0, 1), -0.75);
    }

    #[test]
    fn noise_perturbs_but_preserves_structure() {
        let mut m = IsingModel::new(3);
        m.add_coupling(0, 1, 0.8);
        m.add_coupling(1, 2, -0.6);
        let mut rng = StdRng::seed_from_u64(3);
        let out = IceNoise::advantage().apply(&m, &mut rng);
        // Couplings move, but not far.
        let d01 = (out.coupling(0, 1) - 0.8).abs();
        let d12 = (out.coupling(1, 2) + 0.6).abs();
        assert!(d01 > 0.0 && d01 < 0.1, "Δ01 = {d01}");
        assert!(d12 > 0.0 && d12 < 0.1, "Δ12 = {d12}");
        // No new couplings invented.
        assert_eq!(out.coupling(0, 2), 0.0);
    }

    #[test]
    fn quantisation_snaps_to_grid() {
        let ice = IceNoise { sigma_h: 0.0, sigma_j: 0.0, quantisation_levels: 4 };
        let mut m = IsingModel::new(2);
        m.add_coupling(0, 1, 0.3); // grid of 1/2 → snaps to 0.5
        let mut rng = StdRng::seed_from_u64(0);
        let out = ice.apply(&m, &mut rng);
        assert!((out.coupling(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn values_beyond_range_are_clamped() {
        let ice = IceNoise::none();
        let mut m = IsingModel::new(2);
        m.add_coupling(0, 1, 3.0); // caller forgot to normalise
        let mut rng = StdRng::seed_from_u64(0);
        let out = ice.apply(&m, &mut rng);
        assert_eq!(out.coupling(0, 1), 1.0);
    }
}
